"""The import-layering rules hold, and the checker can actually see."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_layering", _ROOT / "scripts" / "check_layering.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_is_layer_clean(checker) -> None:
    assert checker.check_layering(_ROOT / "src" / "repro") == []


def test_checker_detects_violations(checker, tmp_path: Path) -> None:
    (tmp_path / "hostif").mkdir()
    (tmp_path / "hostif" / "bad.py").write_text(
        "from repro.core.actions import Action\n"
        "import repro.core.kelp\n"
        "from repro.hw.machine import Machine  # allowed\n",
        encoding="utf-8",
    )
    (tmp_path / "hw").mkdir()
    (tmp_path / "hw" / "worse.py").write_text(
        "from repro import control\n", encoding="utf-8"
    )
    violations = checker.check_layering(tmp_path)
    assert len(violations) == 3
    assert sum("'hostif' must not import 'repro.core'" in v for v in violations) == 2
    assert sum("'hw' must not import 'repro.control'" in v for v in violations) == 1


def test_checker_detects_serve_inversion(checker, tmp_path: Path) -> None:
    # The serving control plane sits directly below experiments: nothing
    # beneath it — fleet, control, obs, sim — may import it back.
    (tmp_path / "fleet").mkdir()
    (tmp_path / "fleet" / "bad.py").write_text(
        "from repro.serve.service import FleetService\n", encoding="utf-8"
    )
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "bad.py").write_text(
        "import repro.serve\n", encoding="utf-8"
    )
    violations = checker.check_layering(tmp_path)
    assert sum(
        "'fleet' must not import 'repro.serve'" in v for v in violations
    ) == 1
    assert sum(
        "'sim' must not import 'repro.serve'" in v for v in violations
    ) == 1


def test_checker_detects_shim_imports(checker, tmp_path: Path) -> None:
    # The seed-era cluster/distributed shims are for out-of-tree callers;
    # the modern stack (serve included) must import the real homes.
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "bad.py").write_text(
        "from repro.cluster.node import Node\n", encoding="utf-8"
    )
    (tmp_path / "fleet").mkdir()
    (tmp_path / "fleet" / "bad.py").write_text(
        "import repro.distributed.sync\n", encoding="utf-8"
    )
    violations = checker.check_layering(tmp_path)
    assert sum(
        "'serve' must not import 'repro.cluster'" in v for v in violations
    ) == 1
    assert sum(
        "'fleet' must not import 'repro.distributed'" in v for v in violations
    ) == 1


def test_serve_may_import_its_substrate(checker, tmp_path: Path) -> None:
    # Positive control: serve importing fleet/control/traces/obs is fine.
    (tmp_path / "serve").mkdir()
    (tmp_path / "serve" / "ok.py").write_text(
        "from repro.fleet.orchestrator import FleetOrchestrator\n"
        "from repro.control.sensors import SensorConfig\n"
        "from repro.traces.schema import trace_digest\n"
        "import repro.obs\n",
        encoding="utf-8",
    )
    assert checker.check_layering(tmp_path) == []


def test_checker_detects_incidents_inversion(checker, tmp_path: Path) -> None:
    # The incident layer sits on top: nothing below may import it.
    (tmp_path / "fleet").mkdir()
    (tmp_path / "fleet" / "bad.py").write_text(
        "from repro.incidents.engine import IncidentEngine\n",
        encoding="utf-8",
    )
    (tmp_path / "obs").mkdir()
    (tmp_path / "obs" / "bad.py").write_text(
        "import repro.incidents.faults\n", encoding="utf-8"
    )
    violations = checker.check_layering(tmp_path)
    assert sum(
        "'fleet' must not import 'repro.incidents'" in v for v in violations
    ) == 1
    assert sum(
        "'obs' must not import 'repro.incidents'" in v for v in violations
    ) == 1
