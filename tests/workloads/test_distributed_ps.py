"""Tests for the parameter-server cost model."""

from __future__ import annotations

import pytest

from repro.workloads.ml.distributed import ParameterServerShard, PsUpdateModel
from repro.workloads.ml.distributed import WorkerModel
from repro.errors import ConfigurationError


class TestPsUpdateModel:
    def test_bytes_per_step(self) -> None:
        model = PsUpdateModel(shard_params_gb=0.25, optimizer_traffic_factor=4.0)
        assert model.bytes_per_step_gb == pytest.approx(1.0)

    def test_update_time(self) -> None:
        model = PsUpdateModel(
            shard_params_gb=0.25, optimizer_traffic_factor=4.0,
            standalone_bw_gbps=20.0,
        )
        assert model.standalone_update_time == pytest.approx(0.05)

    def test_heavier_optimizer_slower(self) -> None:
        sgd = PsUpdateModel(shard_params_gb=0.2, optimizer_traffic_factor=3.0)
        adam = PsUpdateModel(shard_params_gb=0.2, optimizer_traffic_factor=7.0)
        assert adam.standalone_update_time > sgd.standalone_update_time

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            PsUpdateModel(shard_params_gb=0.0)
        with pytest.raises(ConfigurationError):
            PsUpdateModel(shard_params_gb=0.1, standalone_bw_gbps=0.0)


class TestShardAndWorker:
    def test_shard_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ParameterServerShard(shard_id=-1, update=PsUpdateModel(0.1))

    def test_worker_validation(self) -> None:
        WorkerModel(gradient_gb=0.1, variable_gb=0.1)
        with pytest.raises(ConfigurationError):
            WorkerModel(gradient_gb=-0.1, variable_gb=0.1)
        with pytest.raises(ConfigurationError):
            WorkerModel(gradient_gb=0.1, variable_gb=0.1, network_overhead=-1)
