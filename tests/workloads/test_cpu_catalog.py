"""Tests for the CPU workload catalog."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.cpu.aggressors import AGGRESSOR_LEVELS
from repro.workloads.cpu.catalog import cpu_workload, cpu_workload_names


class TestCatalog:
    def test_all_names_resolve(self) -> None:
        for name in cpu_workload_names():
            intensity = "H" if name in ("dram", "remote-dram") else 2
            profile = cpu_workload(name, intensity)
            assert profile.phase.bw_gbps >= 0

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            cpu_workload("nope")

    def test_unknown_level_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            cpu_workload("dram", "X")

    def test_stitch_scales_with_instances(self) -> None:
        one = cpu_workload("stitch", 1)
        four = cpu_workload("stitch", 4)
        assert four.phase.bw_gbps == pytest.approx(4 * one.phase.bw_gbps)
        assert four.phase.threads == 4 * one.phase.threads

    def test_cpuml_scales_with_threads(self) -> None:
        two = cpu_workload("cpuml", 2)
        eight = cpu_workload("cpuml", 8)
        assert eight.phase.bw_gbps == pytest.approx(4 * two.phase.bw_gbps)

    def test_aggressor_levels_ordered(self) -> None:
        demands = [
            cpu_workload("dram", level).phase.bw_gbps for level in ("L", "M", "H")
        ]
        assert demands == sorted(demands)
        assert set(AGGRESSOR_LEVELS) == {"L", "M", "H"}

    def test_llc_aggressor_traits(self) -> None:
        profile = cpu_workload("llc")
        assert profile.phase.working_set_mb >= 28.0
        assert profile.phase.smt_aggression > 0.5
        assert profile.phase.bw_gbps < 10.0

    def test_dram_aggressor_is_bandwidth_bound(self) -> None:
        profile = cpu_workload("dram", "H")
        assert profile.phase.bw_bound_weight == 1.0
        assert profile.phase.mem_fraction > 0.9

    def test_remote_dram_same_traffic_shape(self) -> None:
        dram = cpu_workload("dram", "H")
        remote = cpu_workload("remote-dram", "H")
        assert remote.phase.bw_gbps == dram.phase.bw_gbps
