"""Tests for batch CPU tasks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.cpu.stream import stream_profile


def make_task(machine: Machine, threads: int = 4, cores: int = 8) -> BatchTask:
    placement = Placement(
        cores=frozenset(range(4, 4 + cores)), mem_weights={0: 0.5, 1: 0.5}
    )
    return BatchTask("b", machine, placement, stream_profile(threads))


class TestBatchTask:
    def test_standalone_throughput_matches_nominal(self, machine: Machine) -> None:
        task = make_task(machine, threads=2)
        task.start()
        machine.sim.run_until(10.0)
        # 2 threads at 1 unit/s each: light load, full speed.
        assert task.throughput(10.0) == pytest.approx(2.0, rel=0.05)

    def test_more_threads_than_cores_caps_throughput(self, machine: Machine) -> None:
        task = make_task(machine, threads=4, cores=2)
        task.start()
        machine.sim.run_until(10.0)
        assert task.throughput(10.0) <= 2.6  # ~2 cores' worth + slack

    def test_contention_reduces_throughput(self, machine: Machine) -> None:
        a = make_task(machine, threads=8)
        a.start()
        machine.sim.run_until(5.0)
        alone = a.throughput(5.0)
        b = BatchTask(
            "c",
            machine,
            Placement(cores=frozenset(range(12, 16)), mem_weights={0: 0.5, 1: 0.5}),
            cpu_workload("dram", "H").with_threads(4),
        )
        b.start()
        machine.sim.run_until(10.0)
        contended = (a.meter.units - alone * 5.0) / 5.0
        assert contended < alone

    def test_speed_attribute_updates(self, machine: Machine) -> None:
        task = make_task(machine)
        task.start()
        assert 0.0 < task.speed <= 1.0


class TestBatchProfile:
    def test_with_threads(self) -> None:
        profile = stream_profile(8).with_threads(2)
        assert profile.phase.threads == 2
        # with_threads keeps per-task demand (the aggregate is re-declared).
        assert profile.phase.bw_gbps == stream_profile(8).phase.bw_gbps

    def test_scaled_to_threads(self) -> None:
        profile = stream_profile(8).scaled_to_threads(2)
        assert profile.phase.threads == 2
        assert profile.phase.bw_gbps == pytest.approx(
            stream_profile(8).phase.bw_gbps / 4
        )

    def test_scaled_to_zero_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            stream_profile(8).scaled_to_threads(0)

    def test_unit_rate_must_be_positive(self) -> None:
        from repro.workloads.base import HostPhaseProfile
        from repro.workloads.cpu.base import BatchProfile

        with pytest.raises(ConfigurationError):
            BatchProfile(name="x", phase=HostPhaseProfile(), unit_rate_per_thread=0)
