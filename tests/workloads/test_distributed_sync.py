"""Tests for the lock-step barrier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.ml.distributed import LockStepBarrier
from repro.errors import ConfigurationError


class TestLockStepBarrier:
    def test_single_shard_no_wait(self) -> None:
        barrier = LockStepBarrier(shards=1, nominal_latency=0.05)
        assert barrier.remote_max() == 0.0
        assert barrier.barrier_wait(0.05) == 0.0

    def test_zero_cv_is_deterministic(self) -> None:
        barrier = LockStepBarrier(shards=4, nominal_latency=0.05, latency_cv=0.0)
        assert barrier.remote_max() == pytest.approx(0.05)

    def test_fast_local_waits_for_remote(self) -> None:
        barrier = LockStepBarrier(shards=4, nominal_latency=0.05, latency_cv=0.0)
        assert barrier.barrier_wait(0.01) == pytest.approx(0.04)

    def test_slow_local_never_waits(self) -> None:
        barrier = LockStepBarrier(shards=4, nominal_latency=0.05, latency_cv=0.0)
        assert barrier.barrier_wait(0.5) == 0.0

    def test_tail_amplification_grows_with_fanout(self) -> None:
        rng_small = np.random.default_rng(0)
        rng_large = np.random.default_rng(0)
        small = LockStepBarrier(4, 0.05, latency_cv=0.2, rng=rng_small)
        large = LockStepBarrier(32, 0.05, latency_cv=0.2, rng=rng_large)
        mean_small = np.mean([small.remote_max() for _ in range(500)])
        mean_large = np.mean([large.remote_max() for _ in range(500)])
        assert mean_large > mean_small > 0.05

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            LockStepBarrier(0, 0.05)
        with pytest.raises(ConfigurationError):
            LockStepBarrier(4, 0.0)
        with pytest.raises(ConfigurationError):
            LockStepBarrier(4, 0.05, latency_cv=-1)
        barrier = LockStepBarrier(4, 0.05)
        with pytest.raises(ConfigurationError):
            barrier.barrier_wait(-0.1)
