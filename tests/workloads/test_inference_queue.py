"""Queue/admission behaviour of the inference server under overload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import tpu_host_spec
from repro.sim import Simulator
from repro.workloads.loadgen import OpenLoopGenerator
from repro.workloads.ml.catalog import ml_workload


def overloaded_server(sim: Simulator):
    factory = ml_workload("rnn1")
    machine = Machine(tpu_host_spec(), sim)
    placement = Placement(
        cores=frozenset(range(factory.default_cores())),
        mem_weights={0: 0.5, 1: 0.5},
    )
    instance = factory.build(machine, placement, load_fraction=0.0)
    instance.task.start()
    return instance.task


class TestOverload:
    def test_queue_drains_after_burst(self, sim: Simulator) -> None:
        server = overloaded_server(sim)
        for _ in range(20):
            server.submit()
        assert server.queued == 20 - server.spec.max_inflight
        sim.run_until(2.0)
        assert server.queued == 0
        assert server.recorder.completed == 20

    def test_completion_rate_capped_at_capacity(self, sim: Simulator) -> None:
        server = overloaded_server(sim)
        generator = OpenLoopGenerator(
            sim, rate_qps=500.0, submit=server.submit,
            rng=np.random.default_rng(0),
        )
        generator.start()
        sim.run_until(10.0)
        from repro.accel.presets import tpu_v1_device

        capacity = server.spec.standalone_capacity(tpu_v1_device(), 3)
        completed_rate = server.recorder.completed / 10.0
        assert completed_rate <= capacity * 1.05
        assert server.queued > 0  # overload: backlog grows

    def test_fifo_order(self, sim: Simulator) -> None:
        server = overloaded_server(sim)
        starts: list[float] = []
        server.completion_listeners.append(lambda s, e: starts.append(s))
        for _ in range(12):
            server.submit()
        sim.run_until(2.0)
        assert starts == sorted(starts)

    def test_latency_includes_queueing(self, sim: Simulator) -> None:
        server = overloaded_server(sim)
        for _ in range(16):
            server.submit()
        sim.run_until(3.0)
        # The last-admitted request waited behind two pipeline generations.
        assert server.recorder.tail(99) > 2 * server.recorder.tail(5)
