"""Tests for the training-task engine."""

from __future__ import annotations

import pytest

from repro.workloads.ml.distributed import LockStepBarrier
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import cloud_tpu_host_spec, gpu_host_spec
from repro.sim import Simulator
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.base import TrainingTask
from repro.workloads.ml.cnn1 import cnn1_spec
from repro.workloads.ml.cnn3 import cnn3_spec


def make_cnn1(sim: Simulator) -> tuple[Machine, TrainingTask]:
    machine = Machine(cloud_tpu_host_spec(), sim)
    spec = cnn1_spec()
    placement = Placement(
        cores=frozenset(range(spec.default_cores)),
        mem_weights={0: 0.5, 1: 0.5},
    )
    return machine, TrainingTask("cnn1", machine, placement, spec)


class TestOverlapTraining:
    def test_standalone_step_rate(self, sim: Simulator) -> None:
        machine, task = make_cnn1(sim)
        task.start()
        sim.run_until(20.0)
        expected = 1.0 / task.spec.standalone_step_time()
        assert task.performance(20.0) == pytest.approx(expected, rel=0.02)

    def test_infeed_stretches_under_contention(self, sim: Simulator) -> None:
        machine, task = make_cnn1(sim)
        task.start()
        aggressor = BatchTask(
            "dram",
            machine,
            Placement(cores=frozenset(range(4, 12)), mem_weights={0: 0.5, 1: 0.5}),
            cpu_workload("dram", "H"),
        )
        aggressor.start()
        sim.run_until(20.0)
        expected = 1.0 / task.spec.standalone_step_time()
        assert task.performance(20.0) < 0.7 * expected

    def test_steps_counted(self, sim: Simulator) -> None:
        machine, task = make_cnn1(sim)
        task.start()
        sim.run_until(2.0)
        assert task.steps_completed >= 15

    def test_stop_cancels_pending_work(self, sim: Simulator) -> None:
        machine, task = make_cnn1(sim)
        task.start()
        sim.run_until(0.05)
        task.stop()
        steps_at_stop = task.steps_completed
        sim.run_until(5.0)
        assert task.steps_completed == steps_at_stop


class TestSerialTraining:
    def test_cnn3_step_includes_host_and_accel(self, sim: Simulator) -> None:
        machine = Machine(gpu_host_spec(), sim)
        spec = cnn3_spec()
        placement = Placement(
            cores=frozenset(range(spec.default_cores)), mem_weights={0: 0.5, 1: 0.5}
        )
        barrier = LockStepBarrier(
            shards=spec.barrier_shards, nominal_latency=spec.host_time,
            latency_cv=0.0,
        )
        task = TrainingTask("cnn3", machine, placement, spec, barrier=barrier)
        task.start()
        sim.run_until(20.0)
        # With cv=0 the barrier adds nothing beyond the serial step.
        expected = 1.0 / spec.standalone_step_time()
        assert task.performance(20.0) == pytest.approx(expected, rel=0.03)

    def test_barrier_noise_slows_steps(self, sim: Simulator) -> None:
        machine = Machine(gpu_host_spec(), sim)
        spec = cnn3_spec()
        placement = Placement(
            cores=frozenset(range(spec.default_cores)), mem_weights={0: 0.5, 1: 0.5}
        )
        import numpy as np

        barrier = LockStepBarrier(
            shards=8, nominal_latency=spec.host_time, latency_cv=0.3,
            rng=np.random.default_rng(0),
        )
        task = TrainingTask("cnn3", machine, placement, spec, barrier=barrier)
        task.start()
        sim.run_until(20.0)
        assert task.performance(20.0) < 1.0 / spec.standalone_step_time()
