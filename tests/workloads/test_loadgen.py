"""Tests for the load generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.workloads.loadgen import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    SerialGenerator,
    TraceReplayGenerator,
)


class _StubServer:
    """Duck-typed stand-in for InferenceServerTask (submit + listeners)."""

    def __init__(self) -> None:
        self.completion_listeners = []
        self.submitted = 0

    def submit(self) -> None:
        self.submitted += 1

    def complete_one(self, start: float = 0.0, end: float = 1.0) -> None:
        for listener in list(self.completion_listeners):
            listener(start, end)


class TestOpenLoop:
    def test_deterministic_rate(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=8.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(2.0)
        assert count[0] == 16

    def test_poisson_rate_approximate(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=100.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(1),
        )
        gen.start()
        sim.run_until(10.0)
        assert count[0] == pytest.approx(1000, rel=0.15)

    def test_stop(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=10.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.at(1.0, gen.stop)
        sim.run_until(5.0)
        assert count[0] <= 10

    def test_invalid_rate(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError):
            OpenLoopGenerator(
                sim, rate_qps=0.0, submit=lambda: None,
                rng=np.random.default_rng(0),
            )

    def test_generated_counter(self, sim: Simulator) -> None:
        gen = OpenLoopGenerator(
            sim, rate_qps=5.0, submit=lambda: None,
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(1.0)
        assert gen.generated == 5

    def test_start_while_running_raises(self, sim: Simulator) -> None:
        """A second start() must not schedule a second arrival chain."""
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=10.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        with pytest.raises(ConfigurationError):
            gen.start()
        sim.run_until(1.0)
        assert count[0] == 10  # rate not doubled

    def test_restart_after_stop_is_allowed(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=10.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(1.0)
        gen.stop()
        sim.run_until(2.0)
        after_stop = count[0]
        gen.start()
        sim.run_until(3.0)
        assert count[0] == pytest.approx(after_stop + 10, abs=1)

    def test_immediate_restart_does_not_double_rate(self, sim: Simulator) -> None:
        """Regression: stop() must cancel the pending arrival event.

        Before the fix, stop() only set a flag: a restart before the stale
        event fired resumed the *old* chain alongside the new one, doubling
        the offered rate for the rest of the run.
        """
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=10.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(0.55)  # arrivals at .1..{.5}; one pending at .6
        gen.stop()
        gen.start()  # restart while the cancelled event is still in the heap
        sim.run_until(1.55)
        # 5 before the restart, then a fresh chain at 0.65, 0.75, ... 1.45:
        # 14 total. The leaked old chain would have added ~10 more.
        assert count[0] == 14


class TestTraceReplay:
    def test_replays_exact_schedule(self, sim: Simulator) -> None:
        fired: list[tuple[int, float]] = []
        arrivals = [0.25, 0.5, 0.5, 1.75]
        gen = TraceReplayGenerator(
            sim, arrivals, submit=lambda i: fired.append((i, sim.now))
        )
        gen.start()
        sim.run_until(2.0)
        assert fired == [(0, 0.25), (1, 0.5), (2, 0.5), (3, 1.75)]
        assert gen.generated == 4
        assert gen.remaining == 0

    def test_indices_allow_column_lookup(self, sim: Simulator) -> None:
        tenants = np.array([3, 1, 4])
        seen: list[int] = []
        gen = TraceReplayGenerator(
            sim, [0.1, 0.2, 0.3], submit=lambda i: seen.append(int(tenants[i]))
        )
        gen.start()
        sim.run_until(1.0)
        assert seen == [3, 1, 4]

    def test_horizon_cuts_replay(self, sim: Simulator) -> None:
        fired: list[int] = []
        gen = TraceReplayGenerator(
            sim, [0.1, 0.2, 5.0, 6.0], submit=fired.append
        )
        gen.start()
        sim.run_until(1.0)
        assert fired == [0, 1]
        assert gen.remaining == 2

    def test_start_skips_past_arrivals(self, sim: Simulator) -> None:
        fired: list[int] = []
        gen = TraceReplayGenerator(
            sim, [0.1, 0.2, 0.6, 0.9], submit=fired.append
        )
        sim.run_until(0.5)  # the clock moves before replay begins
        gen.start()
        sim.run_until(1.0)
        assert fired == [2, 3]

    def test_stop_cancels_pending_and_restart_resumes(self, sim: Simulator) -> None:
        fired: list[int] = []
        gen = TraceReplayGenerator(
            sim, [0.1, 0.2, 0.6, 0.9], submit=fired.append
        )
        gen.start()
        sim.run_until(0.3)
        gen.stop()
        gen.start()  # stale pending event must not fire twice
        sim.run_until(2.0)
        assert fired == [0, 1, 2, 3]

    def test_start_while_running_raises(self, sim: Simulator) -> None:
        gen = TraceReplayGenerator(sim, [0.1], submit=lambda i: None)
        gen.start()
        with pytest.raises(ConfigurationError):
            gen.start()

    def test_rejects_decreasing_arrivals(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError):
            TraceReplayGenerator(sim, [1.0, 0.5], submit=lambda i: None)

    def test_empty_trace_is_a_no_op(self, sim: Simulator) -> None:
        gen = TraceReplayGenerator(sim, [], submit=lambda i: None)
        gen.start()
        sim.run_until(1.0)
        assert gen.generated == 0


class TestClosedLoopListeners:
    def test_stop_detaches_listener(self) -> None:
        server = _StubServer()
        gen = ClosedLoopGenerator(server, concurrency=2)
        assert server.completion_listeners == []  # attach happens on start
        gen.start()
        assert len(server.completion_listeners) == 1
        gen.stop()
        assert server.completion_listeners == []

    def test_stopped_generator_does_not_resubmit(self) -> None:
        server = _StubServer()
        gen = ClosedLoopGenerator(server, concurrency=2)
        gen.start()
        gen.stop()
        submitted = server.submitted
        server.complete_one()
        assert server.submitted == submitted

    def test_repeated_generators_do_not_accumulate(self) -> None:
        """Regression: serial generator lifetimes must not leak listeners."""
        server = _StubServer()
        for _ in range(5):
            gen = ClosedLoopGenerator(server, concurrency=1)
            gen.start()
            gen.stop()
        assert server.completion_listeners == []
        gen = ClosedLoopGenerator(server, concurrency=1)
        gen.start()
        server.complete_one()
        # Exactly one live generator replaces the completion: 1 initial
        # submit + 1 replacement (not one per historical generator).
        assert server.submitted == 5 + 2
        gen.stop()

    def test_restart_does_not_double_attach(self) -> None:
        server = _StubServer()
        gen = ClosedLoopGenerator(server, concurrency=1)
        gen.start()
        gen.stop()
        gen.start()
        assert len(server.completion_listeners) == 1
        gen.stop()
        assert server.completion_listeners == []


class TestSerialGeneratorListeners:
    def test_exhaustion_detaches_listener(self) -> None:
        server = _StubServer()
        gen = SerialGenerator(server, total_requests=3)
        gen.start()
        assert len(server.completion_listeners) == 1
        for _ in range(3):
            server.complete_one()
        assert gen.completed == 3
        assert server.completion_listeners == []
        # Later completions (from other traffic) must not re-issue.
        submitted = server.submitted
        server.complete_one()
        assert server.submitted == submitted

    def test_stop_detaches_listener(self) -> None:
        server = _StubServer()
        gen = SerialGenerator(server, total_requests=10)
        gen.start()
        gen.stop()
        assert server.completion_listeners == []

    def test_repeated_serial_generators_do_not_accumulate(self) -> None:
        server = _StubServer()
        for _ in range(4):
            gen = SerialGenerator(server, total_requests=1)
            gen.start()
            server.complete_one()
        assert server.completion_listeners == []
        assert server.submitted == 4
