"""Tests for the load generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.workloads.loadgen import OpenLoopGenerator


class TestOpenLoop:
    def test_deterministic_rate(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=8.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(2.0)
        assert count[0] == 16

    def test_poisson_rate_approximate(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=100.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(1),
        )
        gen.start()
        sim.run_until(10.0)
        assert count[0] == pytest.approx(1000, rel=0.15)

    def test_stop(self, sim: Simulator) -> None:
        count = [0]
        gen = OpenLoopGenerator(
            sim, rate_qps=10.0, submit=lambda: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.at(1.0, gen.stop)
        sim.run_until(5.0)
        assert count[0] <= 10

    def test_invalid_rate(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError):
            OpenLoopGenerator(
                sim, rate_qps=0.0, submit=lambda: None,
                rng=np.random.default_rng(0),
            )

    def test_generated_counter(self, sim: Simulator) -> None:
        gen = OpenLoopGenerator(
            sim, rate_qps=5.0, submit=lambda: None,
            rng=np.random.default_rng(0), deterministic=True,
        )
        gen.start()
        sim.run_until(1.0)
        assert gen.generated == 5
