"""Tests for the MlInstance wrapper."""

from __future__ import annotations

import pytest

from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import cloud_tpu_host_spec, tpu_host_spec
from repro.sim import Simulator
from repro.workloads.ml.catalog import ml_workload


class TestMlInstance:
    def test_training_instance_lifecycle(self, sim: Simulator) -> None:
        factory = ml_workload("cnn2")
        machine = Machine(cloud_tpu_host_spec(), sim)
        placement = Placement(
            cores=frozenset(range(factory.default_cores())),
            mem_weights={0: 0.5, 1: 0.5},
        )
        instance = factory.build(machine, placement)
        instance.start()
        sim.run_until(2.0)
        instance.stop()
        steps = instance.task.steps_completed
        sim.run_until(4.0)
        assert instance.task.steps_completed == steps
        assert instance.tail_latency() is None

    def test_inference_instance_has_closed_loop_by_default(
        self, sim: Simulator
    ) -> None:
        factory = ml_workload("rnn1")
        machine = Machine(tpu_host_spec(), sim)
        placement = Placement(
            cores=frozenset(range(3)), mem_weights={0: 0.5, 1: 0.5}
        )
        instance = factory.build(machine, placement)
        instance.start()
        assert instance.task.inflight == instance.task.spec.pipeline_concurrency
        sim.run_until(1.0)
        instance.stop()
        # Closed loop stopped: inflight drains and is not replaced.
        sim.run_until(2.0)
        assert instance.task.recorder.completed > 0

    def test_open_loop_when_fraction_given(self, sim: Simulator) -> None:
        factory = ml_workload("rnn1")
        machine = Machine(tpu_host_spec(), sim)
        placement = Placement(
            cores=frozenset(range(3)), mem_weights={0: 0.5, 1: 0.5}
        )
        instance = factory.build(machine, placement, load_fraction=0.5)
        from repro.workloads.loadgen import OpenLoopGenerator

        assert isinstance(instance.loadgen, OpenLoopGenerator)
        assert instance.loadgen.rate_qps == pytest.approx(
            0.5 * factory.spec.standalone_capacity(
                __import__("repro.accel.presets", fromlist=["tpu_v1_device"])
                .tpu_v1_device(),
                3,
            )
        )

    def test_no_loadgen_when_zero_fraction(self, sim: Simulator) -> None:
        factory = ml_workload("rnn1")
        machine = Machine(tpu_host_spec(), sim)
        placement = Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        instance = factory.build(machine, placement, load_fraction=0.0)
        assert instance.loadgen is None
