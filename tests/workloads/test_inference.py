"""Tests for the inference-server engine."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import tpu_host_spec
from repro.sim import Simulator
from repro.sim.tracing import TimelineTracer
from repro.workloads.loadgen import ClosedLoopGenerator, SerialGenerator
from repro.workloads.ml.catalog import ml_workload


def make_server(sim: Simulator, tracer: TimelineTracer | None = None):
    factory = ml_workload("rnn1")
    machine = Machine(tpu_host_spec(), sim)
    placement = Placement(
        cores=frozenset(range(factory.default_cores())),
        mem_weights={0: 0.5, 1: 0.5},
    )
    instance = factory.build(
        machine, placement, warmup_until=0.0, tracer=tracer, load_fraction=0.0
    )
    instance.task.start()
    return machine, instance.task


class TestServerPipeline:
    def test_serial_request_latency(self, sim: Simulator) -> None:
        machine, server = make_server(sim)
        gen = SerialGenerator(server, total_requests=5)
        gen.start()
        sim.run_until(5.0)
        assert gen.completed == 5
        spec = server.spec
        per_iter = spec.host_time + 2 * spec.pcie_in_gb / 12.0 + 3e-3
        expected = spec.iterations_per_query * per_iter
        assert server.recorder.mean_latency() == pytest.approx(expected, rel=0.1)

    def test_closed_loop_reaches_steady_qps(self, sim: Simulator) -> None:
        machine, server = make_server(sim)
        gen = ClosedLoopGenerator(server, concurrency=4)
        gen.start()
        sim.run_until(20.0)
        assert server.performance(20.0) > 100.0

    def test_queue_forms_beyond_max_inflight(self, sim: Simulator) -> None:
        machine, server = make_server(sim)
        for _ in range(server.spec.max_inflight + 3):
            server.submit()
        assert server.inflight == server.spec.max_inflight
        assert server.queued == 3

    def test_submit_before_start_rejected(self, sim: Simulator) -> None:
        factory = ml_workload("rnn1")
        machine = Machine(tpu_host_spec(), sim)
        placement = Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        instance = factory.build(machine, placement, load_fraction=0.0)
        with pytest.raises(WorkloadError):
            instance.task.submit()

    def test_completion_listeners_fire(self, sim: Simulator) -> None:
        machine, server = make_server(sim)
        seen: list[tuple[float, float]] = []
        server.completion_listeners.append(lambda s, e: seen.append((s, e)))
        server.submit()
        sim.run_until(1.0)
        assert len(seen) == 1
        assert seen[0][1] > seen[0][0]

    def test_tracer_records_phases(self, sim: Simulator) -> None:
        tracer = TimelineTracer()
        machine, server = make_server(sim, tracer=tracer)
        SerialGenerator(server, total_requests=3).start()
        sim.run_until(2.0)
        assert {"cpu", "communication", "tpu"} <= tracer.kinds()
        assert tracer.total_time("rnn1", "cpu") > tracer.total_time("rnn1", "tpu")


class TestSpecHelpers:
    def test_standalone_capacity_balanced(self) -> None:
        factory = ml_workload("rnn1")
        spec = factory.spec
        from repro.accel.presets import tpu_v1_device

        capacity = spec.standalone_capacity(tpu_v1_device(), spec.default_cores)
        assert capacity > 0
        assert spec.target_qps(tpu_v1_device(), spec.default_cores) < capacity
