"""Tests for the workload framework: phase profiles and phase_speed."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.hw.contention import IDLE_RATES, SourceRates
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.workloads.base import HostPhaseProfile, Task, phase_speed


def rates(**overrides) -> SourceRates:
    base = dict(
        bw_grant=1.0, latency_factor=1.0, core_throttle=1.0, prefetch_speed=1.0,
        llc_hit=1.0, llc_speed=1.0, smt_factor=1.0, cpu_share=1.0,
    )
    base.update(overrides)
    return SourceRates(**base)


class TestHostPhaseProfile:
    def test_defaults_valid(self) -> None:
        HostPhaseProfile()

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            HostPhaseProfile(mem_fraction=1.2)
        with pytest.raises(ConfigurationError):
            HostPhaseProfile(bw_bound_weight=-0.1)
        with pytest.raises(ConfigurationError):
            HostPhaseProfile(bw_gbps=-1.0)
        with pytest.raises(ConfigurationError):
            HostPhaseProfile(threads=0)


class TestPhaseSpeed:
    def test_idle_machine_full_speed(self) -> None:
        assert phase_speed(IDLE_RATES, HostPhaseProfile()) == pytest.approx(1.0)

    def test_pure_compute_ignores_memory(self) -> None:
        profile = HostPhaseProfile(mem_fraction=0.0)
        speed = phase_speed(rates(latency_factor=4.0, bw_grant=0.5), profile)
        assert speed == pytest.approx(1.0)

    def test_pure_memory_tracks_stretch(self) -> None:
        profile = HostPhaseProfile(mem_fraction=1.0, bw_bound_weight=0.0)
        speed = phase_speed(rates(latency_factor=2.0), profile)
        assert speed == pytest.approx(0.5)

    def test_bw_bound_tracks_grant(self) -> None:
        profile = HostPhaseProfile(mem_fraction=1.0, bw_bound_weight=1.0)
        speed = phase_speed(rates(bw_grant=0.5), profile)
        assert speed == pytest.approx(0.5)

    def test_distress_hits_memory_part_only(self) -> None:
        compute = HostPhaseProfile(mem_fraction=0.0)
        memory = HostPhaseProfile(mem_fraction=1.0)
        throttled = rates(core_throttle=0.5)
        assert phase_speed(throttled, compute) == pytest.approx(1.0)
        assert phase_speed(throttled, memory) == pytest.approx(0.5)

    def test_smt_hits_whole_phase(self) -> None:
        profile = HostPhaseProfile(mem_fraction=0.0)
        assert phase_speed(rates(smt_factor=0.8), profile) == pytest.approx(0.8)

    def test_cpu_share_hits_whole_phase(self) -> None:
        profile = HostPhaseProfile(mem_fraction=0.3)
        full = phase_speed(rates(), profile)
        half = phase_speed(rates(cpu_share=0.5), profile)
        assert half == pytest.approx(0.5 * full)

    def test_monotone_in_mem_fraction_under_contention(self) -> None:
        contended = rates(latency_factor=3.0, core_throttle=0.8)
        speeds = [
            phase_speed(contended, HostPhaseProfile(mem_fraction=f))
            for f in (0.1, 0.4, 0.7, 1.0)
        ]
        assert speeds == sorted(speeds, reverse=True)


class TestTaskLifecycle:
    def test_double_start_rejected(self, machine: Machine) -> None:
        class Dummy(Task):
            def traffic_sources(self):
                return []

            def sync(self, now):
                pass

            def apply_rates(self, result, now):
                pass

        task = Dummy(
            "d", machine, Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        )
        task.start()
        with pytest.raises(WorkloadError):
            task.start()
        task.stop()
        task.stop()  # idempotent
