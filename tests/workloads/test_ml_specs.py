"""Tests for the ML workload catalog and specs (Table I traits)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.ml.base import InferenceSpec, TrainingSpec
from repro.workloads.ml.catalog import ml_workload, ml_workload_names
from repro.workloads.ml.cnn3 import CNN3_PS_UPDATE


class TestCatalog:
    def test_four_workloads(self) -> None:
        assert ml_workload_names() == ["cnn1", "cnn2", "cnn3", "rnn1"]

    def test_unknown_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            ml_workload("bert")

    def test_platform_assignment_matches_table1(self) -> None:
        assert ml_workload("rnn1").platform == "tpu"
        assert ml_workload("cnn1").platform == "cloud-tpu"
        assert ml_workload("cnn2").platform == "cloud-tpu"
        assert ml_workload("cnn3").platform == "gpu"

    def test_kinds(self) -> None:
        assert ml_workload("rnn1").kind == "inference"
        for name in ("cnn1", "cnn2", "cnn3"):
            assert ml_workload(name).kind == "training"


class TestSpecTraits:
    def test_cnn2_more_cpu_intense_than_cnn1(self) -> None:
        cnn1 = ml_workload("cnn1").spec
        cnn2 = ml_workload("cnn2").spec
        assert isinstance(cnn1, TrainingSpec) and isinstance(cnn2, TrainingSpec)
        assert cnn2.host.threads > cnn1.host.threads
        assert cnn2.host.bw_gbps > cnn1.host.bw_gbps

    def test_cnn3_is_serial_with_barrier(self) -> None:
        spec = ml_workload("cnn3").spec
        assert isinstance(spec, TrainingSpec)
        assert not spec.overlap
        assert spec.barrier_shards > 1

    def test_cnn3_host_time_derives_from_ps_model(self) -> None:
        spec = ml_workload("cnn3").spec
        assert spec.host_time == pytest.approx(
            CNN3_PS_UPDATE.standalone_update_time
        )

    def test_cnn1_infeed_nearly_critical(self) -> None:
        spec = ml_workload("cnn1").spec
        assert isinstance(spec, TrainingSpec)
        # CNN1's whole story: little slack between in-feed and accelerator.
        assert 0.9 < spec.host_time / spec.accel_step_time < 1.0

    def test_rnn1_is_latency_sensitive(self) -> None:
        spec = ml_workload("rnn1").spec
        assert isinstance(spec, InferenceSpec)
        assert spec.host.bw_bound_weight < 0.5
        assert spec.host.bw_gbps < 5.0

    def test_standalone_step_time_overlap(self) -> None:
        spec = ml_workload("cnn1").spec
        assert spec.standalone_step_time() == pytest.approx(
            max(spec.accel_step_time, spec.host_time) + spec.sync_time
        )

    def test_standalone_step_time_serial(self) -> None:
        spec = ml_workload("cnn3").spec
        assert spec.standalone_step_time() == pytest.approx(
            spec.accel_step_time + spec.host_time + spec.sync_time
        )
