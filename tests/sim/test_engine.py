"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim: Simulator) -> None:
        order: list[str] = []
        sim.at(2.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(3.0, lambda: order.append("c"))
        sim.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim: Simulator) -> None:
        seen: list[float] = []
        sim.at(1.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [1.5]
        assert sim.now == 10.0

    def test_after_is_relative(self, sim: Simulator) -> None:
        times: list[float] = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run_until(2.0)
        assert times == [pytest.approx(1.5)]

    def test_priority_breaks_ties(self, sim: Simulator) -> None:
        order: list[str] = []
        sim.at(1.0, lambda: order.append("low-prio"), priority=30)
        sim.at(1.0, lambda: order.append("high-prio"), priority=10)
        sim.run_until(2.0)
        assert order == ["high-prio", "low-prio"]

    def test_equal_priority_is_fifo(self, sim: Simulator) -> None:
        order: list[int] = []
        for i in range(5):
            sim.at(1.0, lambda i=i: order.append(i))
        sim.run_until(2.0)
        assert order == [0, 1, 2, 3, 4]

    def test_scheduling_in_past_raises(self, sim: Simulator) -> None:
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_raises(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.after(-0.1, lambda: None)

    def test_event_at_end_time_runs(self, sim: Simulator) -> None:
        fired: list[bool] = []
        sim.at(5.0, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == [True]

    def test_event_beyond_end_time_does_not_run(self, sim: Simulator) -> None:
        fired: list[bool] = []
        sim.at(5.1, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(6.0)
        assert fired == [True]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim: Simulator) -> None:
        fired: list[bool] = []
        handle = sim.at(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, sim: Simulator) -> None:
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_drain_cancels_pending(self, sim: Simulator) -> None:
        fired: list[bool] = []
        sim.at(1.0, lambda: fired.append(True), label="x")
        sim.at(2.0, lambda: fired.append(True), label="y")
        assert sim.drain() == 2
        sim.run_until(3.0)
        assert fired == []

    def test_drain_by_label(self, sim: Simulator) -> None:
        fired: list[str] = []
        sim.at(1.0, lambda: fired.append("x"), label="x")
        sim.at(2.0, lambda: fired.append("y"), label="y")
        assert sim.drain(["x"]) == 1
        sim.run_until(3.0)
        assert fired == ["y"]


class TestPeriodic:
    def test_every_fires_on_interval(self, sim: Simulator) -> None:
        times: list[float] = []
        sim.every(1.0, lambda: times.append(sim.now))
        sim.run_until(3.5)
        assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_every_cancel_stops(self, sim: Simulator) -> None:
        times: list[float] = []
        cancel = sim.every(1.0, lambda: times.append(sim.now))
        sim.at(2.5, cancel)
        sim.run_until(10.0)
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_every_with_custom_start(self, sim: Simulator) -> None:
        times: list[float] = []
        sim.every(1.0, lambda: times.append(sim.now), start_after=0.2)
        sim.run_until(2.5)
        assert times == [pytest.approx(0.2), pytest.approx(1.2), pytest.approx(2.2)]

    def test_non_positive_interval_raises(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)


class TestGuards:
    def test_max_events_guard(self, sim: Simulator) -> None:
        def reschedule() -> None:
            sim.after(0.001, reschedule)

        sim.after(0.001, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until(100.0, max_events=50)

    def test_run_until_past_raises(self, sim: Simulator) -> None:
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)


class TestHeapCompaction:
    def test_cancel_storm_triggers_compaction(self, sim: Simulator) -> None:
        handles = [sim.at(float(i + 1), lambda: None) for i in range(200)]
        assert sim.pending_events == 200
        for handle in handles[:150]:
            handle.cancel()
        # More than half the heap was dead; it must have been compacted.
        assert sim.compactions >= 1
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 50

    def test_compaction_preserves_dispatch_order(self, sim: Simulator) -> None:
        order: list[int] = []
        handles = []
        for i in range(200):
            def cb(i: int = i) -> None:
                order.append(i)
            handles.append(sim.at(float(i + 1), cb))
        for handle in handles[::2]:  # cancel every even event
            handle.cancel()
        assert sim.compactions >= 1
        sim.run_until(300.0)
        assert order == list(range(1, 200, 2))

    def test_drain_compacts(self, sim: Simulator) -> None:
        for i in range(100):
            sim.at(float(i + 1), lambda: None, label="bulk")
        assert sim.drain(["bulk"]) == 100
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 0
        assert sim.compactions >= 1

    def test_small_heaps_stay_lazy(self, sim: Simulator) -> None:
        handles = [sim.at(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction floor: tombstones stay until dispatch.
        assert sim.compactions == 0
        assert sim.cancelled_pending == 10
        sim.run_until(20.0)
        assert sim.cancelled_pending == 0

    def test_manual_compact_noop_when_clean(self, sim: Simulator) -> None:
        sim.at(1.0, lambda: None)
        sim.compact()
        assert sim.compactions == 0
        assert sim.pending_events == 1

    def test_dispatched_events_counts(self, sim: Simulator) -> None:
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run_until(10.0)
        assert sim.dispatched_events == 3
