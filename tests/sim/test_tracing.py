"""Tests for timeline tracing."""

from __future__ import annotations

import pytest

from repro.sim.tracing import TimelineTracer


class TestTimelineTracer:
    def test_begin_end_records_interval(self) -> None:
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 1.0)
        tracer.end("t", "cpu", 2.5)
        (interval,) = tracer.intervals
        assert interval.duration == pytest.approx(1.5)
        assert interval.kind == "cpu"

    def test_unmatched_end_is_ignored(self) -> None:
        tracer = TimelineTracer()
        tracer.end("t", "cpu", 2.0)
        assert tracer.intervals == []

    def test_record_direct(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "tpu", 0.0, 1.0)
        assert tracer.total_time("t", "tpu") == pytest.approx(1.0)

    def test_total_time_sums_by_kind(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.record("t", "cpu", 2.0, 2.5)
        tracer.record("t", "tpu", 1.0, 2.0)
        assert tracer.total_time("t", "cpu") == pytest.approx(1.5)

    def test_for_track_filters(self) -> None:
        tracer = TimelineTracer()
        tracer.record("a", "cpu", 0.0, 1.0)
        tracer.record("b", "cpu", 0.0, 1.0)
        assert len(tracer.for_track("a")) == 1

    def test_disabled_records_nothing(self) -> None:
        tracer = TimelineTracer(enabled=False)
        tracer.begin("t", "cpu", 0.0)
        tracer.end("t", "cpu", 1.0)
        tracer.record("t", "cpu", 0.0, 1.0)
        assert tracer.intervals == []

    def test_kinds(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.record("t", "tpu", 1.0, 2.0)
        assert tracer.kinds() == {"cpu", "tpu"}

    def test_clear(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.begin("t", "tpu", 1.0)
        tracer.clear()
        tracer.end("t", "tpu", 2.0)
        assert tracer.intervals == []
