"""Tests for timeline tracing."""

from __future__ import annotations

import pytest

from repro.sim.tracing import TimelineTracer


class TestTimelineTracer:
    def test_begin_end_records_interval(self) -> None:
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 1.0)
        tracer.end("t", "cpu", 2.5)
        (interval,) = tracer.intervals
        assert interval.duration == pytest.approx(1.5)
        assert interval.kind == "cpu"

    def test_unmatched_end_is_ignored(self) -> None:
        tracer = TimelineTracer()
        tracer.end("t", "cpu", 2.0)
        assert tracer.intervals == []

    def test_record_direct(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "tpu", 0.0, 1.0)
        assert tracer.total_time("t", "tpu") == pytest.approx(1.0)

    def test_total_time_sums_by_kind(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.record("t", "cpu", 2.0, 2.5)
        tracer.record("t", "tpu", 1.0, 2.0)
        assert tracer.total_time("t", "cpu") == pytest.approx(1.5)

    def test_for_track_filters(self) -> None:
        tracer = TimelineTracer()
        tracer.record("a", "cpu", 0.0, 1.0)
        tracer.record("b", "cpu", 0.0, 1.0)
        assert len(tracer.for_track("a")) == 1

    def test_disabled_records_nothing(self) -> None:
        tracer = TimelineTracer(enabled=False)
        tracer.begin("t", "cpu", 0.0)
        tracer.end("t", "cpu", 1.0)
        tracer.record("t", "cpu", 0.0, 1.0)
        assert tracer.intervals == []

    def test_kinds(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.record("t", "tpu", 1.0, 2.0)
        assert tracer.kinds() == {"cpu", "tpu"}

    def test_flush_closes_open_intervals(self) -> None:
        """Regression: intervals still open at run end used to be dropped."""
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 1.0)
        tracer.begin("t", "tpu", 2.0)
        assert tracer.flush(5.0) == 2
        assert len(tracer.intervals) == 2
        by_kind = {i.kind: i for i in tracer.intervals}
        assert by_kind["cpu"].start == 1.0
        assert by_kind["cpu"].end == 5.0
        assert by_kind["cpu"].detail == "truncated"
        assert by_kind["tpu"].duration == pytest.approx(3.0)

    def test_flush_preserves_existing_detail(self) -> None:
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 0.0, detail="step-3")
        tracer.flush(1.0)
        (interval,) = tracer.intervals
        assert interval.detail == "step-3;truncated"

    def test_flush_with_nothing_open_is_a_noop(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        assert tracer.flush(2.0) == 0
        assert len(tracer.intervals) == 1

    def test_flush_is_terminal_for_the_open_set(self) -> None:
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 0.0)
        tracer.flush(1.0)
        # The matching end now has no open interval to close.
        tracer.end("t", "cpu", 2.0)
        assert len(tracer.intervals) == 1

    def test_flush_never_produces_negative_durations(self) -> None:
        tracer = TimelineTracer()
        tracer.begin("t", "cpu", 3.0)
        tracer.flush(1.0)  # flush time before begin: clamp, don't invert
        (interval,) = tracer.intervals
        assert interval.duration == 0.0

    def test_clear(self) -> None:
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        tracer.begin("t", "tpu", 1.0)
        tracer.clear()
        tracer.end("t", "tpu", 2.0)
        assert tracer.intervals == []
