"""Tests for the engine's rate-listener hook."""

from __future__ import annotations

from repro.sim import Simulator


class TestRateListeners:
    def test_invalidate_notifies_with_now(self, sim: Simulator) -> None:
        seen: list[float] = []
        sim.add_rate_listener(seen.append)
        sim.at(2.0, sim.invalidate_rates)
        sim.run_until(3.0)
        assert seen == [2.0]

    def test_unregister(self, sim: Simulator) -> None:
        seen: list[float] = []
        remove = sim.add_rate_listener(seen.append)
        remove()
        sim.invalidate_rates()
        assert seen == []
        remove()  # idempotent

    def test_reentrant_invalidation_coalesced(self, sim: Simulator) -> None:
        calls: list[float] = []

        def listener(now: float) -> None:
            calls.append(now)
            if len(calls) < 5:
                sim.invalidate_rates()  # must not recurse unboundedly

        sim.add_rate_listener(listener)
        sim.invalidate_rates()
        assert calls == [0.0]

    def test_multiple_listeners_all_called(self, sim: Simulator) -> None:
        a: list[float] = []
        b: list[float] = []
        sim.add_rate_listener(a.append)
        sim.add_rate_listener(b.append)
        sim.invalidate_rates()
        assert a == b == [0.0]
