"""Tests for deterministic named RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_sequence(self) -> None:
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self) -> None:
        streams = RngStreams(7)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self) -> None:
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not (a == b).all()

    def test_stream_instance_is_cached(self) -> None:
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_is_deterministic(self) -> None:
        a = RngStreams(3).spawn("child").stream("x").random(3)
        b = RngStreams(3).spawn("child").stream("x").random(3)
        assert (a == b).all()

    def test_spawn_differs_from_parent(self) -> None:
        parent = RngStreams(3)
        child = parent.spawn("child")
        assert child.seed != parent.seed
