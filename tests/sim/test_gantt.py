"""Tests for the ASCII Gantt renderer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.gantt import EMPTY, FILLED, render_gantt
from repro.sim.tracing import TraceInterval


def iv(kind: str, start: float, end: float) -> TraceInterval:
    return TraceInterval(track="t", kind=kind, start=start, end=end)


class TestRenderGantt:
    def test_one_row_per_kind(self) -> None:
        text = render_gantt([iv("cpu", 0, 1), iv("tpu", 1, 2)], width=20)
        lines = text.splitlines()
        assert lines[0].startswith("cpu")
        assert lines[1].startswith("tpu")

    def test_full_coverage_fills_row(self) -> None:
        text = render_gantt([iv("cpu", 0.0, 1.0)], width=10)
        row = text.splitlines()[0]
        assert row.count(FILLED) == 10

    def test_half_coverage(self) -> None:
        text = render_gantt(
            [iv("cpu", 0.0, 0.5), iv("tpu", 0.5, 1.0)], width=10
        )
        cpu_row, tpu_row, _ = text.splitlines()
        assert cpu_row.count(FILLED) == 5
        assert tpu_row.count(FILLED) == 5
        assert tpu_row.count(EMPTY) == 5

    def test_short_interval_still_visible(self) -> None:
        text = render_gantt(
            [iv("cpu", 0.0, 1.0), iv("blip", 0.5, 0.5001)], width=20
        )
        blip_row = text.splitlines()[1]
        assert FILLED in blip_row

    def test_explicit_kind_order(self) -> None:
        text = render_gantt(
            [iv("b", 0, 1), iv("a", 0, 1)], width=10, kinds=["a", "b"]
        )
        assert text.splitlines()[0].startswith("a")

    def test_empty_trace(self) -> None:
        assert render_gantt([]) == "(empty trace)"

    def test_scale_footer(self) -> None:
        text = render_gantt([iv("cpu", 0.0, 0.008)], width=10)
        assert "8.0 ms" in text

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            render_gantt([iv("cpu", 0, 1)], width=0)
        with pytest.raises(ConfigurationError):
            render_gantt([iv("cpu", 0, 1)], start=2.0, end=1.0)
