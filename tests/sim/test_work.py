"""Tests for fluid work quantities."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.sim.work import FluidWork


class TestFluidWork:
    def test_drains_at_rate(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        work.sync(3.0)
        assert work.remaining == pytest.approx(4.0)

    def test_eta(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        assert work.eta() == pytest.approx(5.0)

    def test_eta_infinite_when_stalled(self) -> None:
        work = FluidWork(10.0)
        assert work.eta() == float("inf")

    def test_rate_change_mid_flight(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        work.set_rate(4.0, now=2.0)  # 6 remaining at t=2
        assert work.eta() == pytest.approx(1.5)

    def test_done_at_zero(self) -> None:
        work = FluidWork(1.0)
        work.set_rate(1.0, now=0.0)
        work.sync(1.0)
        assert work.done
        assert work.eta() == 0.0

    def test_never_negative(self) -> None:
        work = FluidWork(1.0)
        work.set_rate(1.0, now=0.0)
        work.sync(100.0)
        assert work.remaining == 0.0

    def test_progress_fraction(self) -> None:
        work = FluidWork(4.0)
        work.set_rate(1.0, now=0.0)
        work.sync(1.0)
        assert work.progress_fraction() == pytest.approx(0.25)

    def test_zero_amount_is_done(self) -> None:
        assert FluidWork(0.0).done

    def test_negative_amount_raises(self) -> None:
        with pytest.raises(SimulationError):
            FluidWork(-1.0)

    def test_negative_rate_raises(self) -> None:
        work = FluidWork(1.0)
        with pytest.raises(SimulationError):
            work.set_rate(-1.0, now=0.0)

    def test_sync_backwards_raises(self) -> None:
        work = FluidWork(1.0)
        work.sync(5.0)
        with pytest.raises(SimulationError):
            work.sync(4.0)

    def test_repeated_sync_is_stable(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(1.0, now=0.0)
        work.sync(2.0)
        work.sync(2.0)
        assert work.remaining == pytest.approx(8.0)


class TestRetireResidue:
    """Regression: event-time rounding can leave residue above _EPSILON.

    A completion event scheduled ``remaining / rate`` ahead fires at an
    absolute float timestamp rounded by up to ``ulp(now) / 2``, leaving up
    to ~``rate * ulp(now)`` of work undrained — which exceeds the 1e-12
    epsilon once the clock is large. Before the fix, the PCIe finisher
    treated that state as a stale event and returned, stranding the
    transfer (and its inference request) forever; day-long trace replays
    showed multi-minute latencies on near-idle nodes.
    """

    def test_retires_clock_scale_residue(self) -> None:
        # rate * ulp(86400) ~ 1.7e-10 at rate 12: representative of the
        # observed strand (1.8e-12 left on a 0.0024 GB PCIe transfer).
        work = FluidWork(0.0024, now=86400.0)
        work.set_rate(12.0, now=86400.0)
        fire_at = 86400.0 + work.eta()
        fire_at = math.nextafter(fire_at, 0.0)  # event rounded down one ulp
        work.sync(fire_at)
        assert not work.done  # the residue survives the final sync...
        assert work.retire_residue(now=fire_at)  # ...and is retired
        assert work.done

    def test_refuses_substantial_remainder(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(1.0, now=0.0)
        work.sync(4.0)  # 6.0 genuinely left: a stale event, not residue
        assert not work.retire_residue(now=4.0)
        assert work.remaining == pytest.approx(6.0)

    def test_done_work_is_trivially_retired(self) -> None:
        work = FluidWork(1.0)
        work.set_rate(1.0, now=0.0)
        work.sync(2.0)
        assert work.retire_residue(now=2.0)
