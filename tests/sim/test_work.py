"""Tests for fluid work quantities."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.work import FluidWork


class TestFluidWork:
    def test_drains_at_rate(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        work.sync(3.0)
        assert work.remaining == pytest.approx(4.0)

    def test_eta(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        assert work.eta() == pytest.approx(5.0)

    def test_eta_infinite_when_stalled(self) -> None:
        work = FluidWork(10.0)
        assert work.eta() == float("inf")

    def test_rate_change_mid_flight(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(2.0, now=0.0)
        work.set_rate(4.0, now=2.0)  # 6 remaining at t=2
        assert work.eta() == pytest.approx(1.5)

    def test_done_at_zero(self) -> None:
        work = FluidWork(1.0)
        work.set_rate(1.0, now=0.0)
        work.sync(1.0)
        assert work.done
        assert work.eta() == 0.0

    def test_never_negative(self) -> None:
        work = FluidWork(1.0)
        work.set_rate(1.0, now=0.0)
        work.sync(100.0)
        assert work.remaining == 0.0

    def test_progress_fraction(self) -> None:
        work = FluidWork(4.0)
        work.set_rate(1.0, now=0.0)
        work.sync(1.0)
        assert work.progress_fraction() == pytest.approx(0.25)

    def test_zero_amount_is_done(self) -> None:
        assert FluidWork(0.0).done

    def test_negative_amount_raises(self) -> None:
        with pytest.raises(SimulationError):
            FluidWork(-1.0)

    def test_negative_rate_raises(self) -> None:
        work = FluidWork(1.0)
        with pytest.raises(SimulationError):
            work.set_rate(-1.0, now=0.0)

    def test_sync_backwards_raises(self) -> None:
        work = FluidWork(1.0)
        work.sync(5.0)
        with pytest.raises(SimulationError):
            work.sync(4.0)

    def test_repeated_sync_is_stable(self) -> None:
        work = FluidWork(10.0)
        work.set_rate(1.0, now=0.0)
        work.sync(2.0)
        work.sync(2.0)
        assert work.remaining == pytest.approx(8.0)
