"""End-to-end invariants across the policy stack.

These tests encode the paper's qualitative claims as assertions over short
simulated runs — the shape checks a reviewer would eyeball in the figures.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    MixConfig,
    run_colocation,
    standalone_performance,
)

FAST = dict(duration=15.0, warmup=4.0)


@pytest.fixture(scope="module")
def heavy_mix_results() -> dict[str, object]:
    """CNN1+Stitch@4 under all policies, shared across assertions."""
    results = {}
    for policy in ("BL", "CT", "KP-SD", "KP", "HW-QOS"):
        results[policy] = run_colocation(
            MixConfig(ml="cnn1", policy=policy, cpu="stitch", intensity=4, **FAST)
        )
    return results


class TestPolicyOrdering:
    def test_every_managed_policy_beats_baseline_on_ml(self, heavy_mix_results) -> None:
        bl = heavy_mix_results["BL"].ml_perf_norm
        for policy in ("CT", "KP-SD", "KP", "HW-QOS"):
            assert heavy_mix_results[policy].ml_perf_norm > bl, policy

    def test_subdomain_best_ml_among_software(self, heavy_mix_results) -> None:
        assert (
            heavy_mix_results["KP-SD"].ml_perf_norm
            >= heavy_mix_results["KP"].ml_perf_norm - 0.02
        )
        assert (
            heavy_mix_results["KP"].ml_perf_norm
            > heavy_mix_results["CT"].ml_perf_norm
        )

    def test_backfill_recovers_cpu_throughput(self, heavy_mix_results) -> None:
        assert (
            heavy_mix_results["KP"].cpu_throughput
            > 1.2 * heavy_mix_results["KP-SD"].cpu_throughput
        )

    def test_hwqos_is_the_upper_bound(self, heavy_mix_results) -> None:
        # Section VI-D: ML at least Subdomain-level, CPU above Kelp.
        assert (
            heavy_mix_results["HW-QOS"].ml_perf_norm
            >= heavy_mix_results["KP-SD"].ml_perf_norm - 0.05
        )
        assert (
            heavy_mix_results["HW-QOS"].cpu_throughput
            >= heavy_mix_results["KP"].cpu_throughput
        )


class TestSncLatencyBenefit:
    def test_light_pressure_can_beat_standalone(self) -> None:
        # Paper: CNN1/CNN2 up to 9%/2% above standalone under subdomains at
        # low pressure (local-latency benefit).
        result = run_colocation(
            MixConfig(ml="cnn1", policy="KP-SD", cpu="dram", intensity="L", **FAST)
        )
        assert result.ml_perf_norm >= 0.99


class TestControllerBehaviour:
    def test_kelp_throttles_under_pressure_only(self) -> None:
        light = run_colocation(
            MixConfig(ml="cnn1", policy="KP", cpu="cpuml", intensity=2, **FAST)
        )
        heavy = run_colocation(
            MixConfig(ml="cnn1", policy="KP", cpu="stitch", intensity=6, **FAST)
        )
        light_pf = light.params[-1].lo_prefetchers
        heavy_pf = heavy.params[-1].lo_prefetchers
        assert heavy_pf < light_pf

    def test_ct_core_count_shrinks_with_load(self) -> None:
        light = run_colocation(
            MixConfig(ml="cnn1", policy="CT", cpu="stitch", intensity=1, **FAST)
        )
        heavy = run_colocation(
            MixConfig(ml="cnn1", policy="CT", cpu="stitch", intensity=6, **FAST)
        )
        assert heavy.params[-1].lo_cores < light.params[-1].lo_cores


class TestInferencePath:
    def test_tail_latency_grows_under_interference(self) -> None:
        result = run_colocation(
            MixConfig(ml="rnn1", policy="BL", cpu="cpuml", intensity=16, **FAST)
        )
        assert result.ml_tail_norm is not None
        assert result.ml_tail_norm > 1.05
        assert result.ml_perf_norm < 0.95

    def test_kelp_protects_tail(self) -> None:
        bl = run_colocation(
            MixConfig(ml="rnn1", policy="BL", cpu="cpuml", intensity=16, **FAST)
        )
        kp = run_colocation(
            MixConfig(ml="rnn1", policy="KP", cpu="cpuml", intensity=16, **FAST)
        )
        assert kp.ml_tail_norm < bl.ml_tail_norm
        assert kp.ml_perf_norm > bl.ml_perf_norm


class TestDeterminism:
    def test_same_seed_same_result(self) -> None:
        a = run_colocation(
            MixConfig(ml="rnn1", policy="KP", cpu="cpuml", intensity=8, **FAST)
        )
        b = run_colocation(
            MixConfig(ml="rnn1", policy="KP", cpu="cpuml", intensity=8, **FAST)
        )
        assert a.ml_perf == b.ml_perf
        assert a.ml_tail == b.ml_tail
        assert a.cpu_throughput == b.cpu_throughput
