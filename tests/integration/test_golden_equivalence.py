"""Golden equivalence: the refactored control plane changes no numbers.

The layered control plane (sensors -> governors -> actuators) is a pure
refactor when sensing is perfect and fault injection is off: these tests
compare live runs against JSON snapshots captured *before* the refactor
(``scripts/capture_golden.py``), bit-for-bit after JSON round-tripping.

Both artifacts are checked serially and through the process pool
(``jobs=4``): the per-point seed chain must make worker count invisible.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parents[2]
_GOLDEN = _ROOT / "tests" / "golden"


def _load_capture_module():
    """Import scripts/capture_golden.py (shares the reduced run shapes)."""
    spec = importlib.util.spec_from_file_location(
        "capture_golden", _ROOT / "scripts" / "capture_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def capture():
    return _load_capture_module()


def _roundtrip(obj):
    """Normalize through JSON exactly like the stored golden was."""
    return json.loads(json.dumps(obj))


def _golden(name: str):
    with open(_GOLDEN / name, encoding="utf-8") as handle:
        return json.load(handle)


class TestFig13Equivalence:
    def test_reduced_matrix_matches_golden(self, capture) -> None:
        assert _roundtrip(capture.fig13_summary()) == _golden(
            "fig13_small.json"
        )


class TestFleetSimEquivalence:
    def test_serial_matches_golden(self, capture) -> None:
        assert _roundtrip(capture.fleet_summary()) == _golden(
            "fleet_sim_small.json"
        )

    def test_process_pool_matches_golden(self, capture) -> None:
        assert _roundtrip(capture.fleet_summary(jobs=4)) == _golden(
            "fleet_sim_small.json"
        )

    def test_process_pool_matches_golden_even_on_one_cpu(
        self, capture, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """Force the pool path so single-CPU CI still exercises workers.

        ``run_points`` falls back to serial on one CPU, which would make the
        ``jobs=4`` variant above vacuously identical there. Pretending the
        host has 4 CPUs routes the same run through real worker processes.
        """
        import repro.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        try:
            assert _roundtrip(capture.fleet_summary(jobs=4)) == _golden(
                "fleet_sim_small.json"
            )
        finally:
            parallel_mod.shutdown_pool()
