"""Failure-injection and robustness tests.

The runtime has to survive ugly realities: tasks appearing and disappearing
mid-interval, control loops running against empty machines, watermarks set
to degenerate values, and tasks squeezed to a single core. None of these
should crash or corrupt accounting.
"""

from __future__ import annotations

import pytest

from repro.node import LO_SUBDOMAIN, Node
from repro.core.kelp import KelpRuntime
from repro.core.policies import make_policy
from repro.core.watermarks import QosProfile, Watermark, default_profile
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def lo_task(node: Node, name: str = "dram", level: str = "H") -> BatchTask:
    return BatchTask(
        name,
        node.machine,
        Placement(
            cores=frozenset(node.lo_subdomain_cores()),
            mem_weights={LO_SUBDOMAIN: 1.0},
        ),
        cpu_workload("dram", level),
    )


class TestTaskChurn:
    def test_stop_mid_interval_keeps_accounting(self, node: Node) -> None:
        task = lo_task(node)
        task.start()
        node.sim.run_until(2.5)
        units_at_stop = task.meter.units
        task.stop()
        node.sim.run_until(5.0)
        assert task.meter.units == pytest.approx(units_at_stop, abs=1e-6)

    def test_restart_same_id_after_stop(self, node: Node) -> None:
        task = lo_task(node)
        task.start()
        node.sim.run_until(1.0)
        task.stop()
        again = lo_task(node)
        again.start()
        node.sim.run_until(2.0)
        assert again.throughput(2.0) > 0

    def test_controller_survives_task_departure(self, node: Node) -> None:
        node.machine.set_snc(True)
        task = lo_task(node)
        task.start()
        node.lo_tasks.append(task)
        runtime = KelpRuntime(node=node, profile=default_profile(node.machine.spec))
        node.sim.run_until(1.0)
        runtime.tick()
        task.stop()
        node.lo_tasks.clear()
        node.sim.run_until(2.0)
        record = runtime.tick()  # must not raise with nothing to manage
        assert record.measurements.saturation < 0.05 or True

    def test_controller_on_empty_machine(self, node: Node) -> None:
        runtime = KelpRuntime(node=node, profile=default_profile(node.machine.spec))
        for _ in range(3):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert len(runtime.history) == 3


class TestDegenerateConfigs:
    def test_single_core_task_survives(self, node: Node) -> None:
        task = BatchTask(
            "tiny",
            node.machine,
            Placement(cores=frozenset({4}), mem_weights={0: 1.0}),
            cpu_workload("stitch", 4),  # 16 threads on one core
        )
        task.start()
        node.sim.run_until(3.0)
        assert 0 < task.throughput(3.0) < 4.0

    def test_always_throttle_watermarks_hit_floor(self, node: Node) -> None:
        node.machine.set_snc(True)
        task = lo_task(node)
        task.start()
        node.lo_tasks.append(task)
        paranoid = QosProfile(
            socket_bw=Watermark(lo=0.0, hi=0.0),
            socket_latency=Watermark(lo=0.0, hi=0.0),
            saturation=Watermark(lo=0.0, hi=0.0),
            hipri_bw=Watermark(lo=0.0, hi=0.0),
        )
        runtime = KelpRuntime(node=node, profile=paranoid)
        for _ in range(20):
            node.sim.run_until(node.sim.now + 0.5)
            runtime.tick()
        assert runtime.lo_plan.prefetcher_num == 0
        assert runtime.lo_plan.core_num == paranoid.min_lo_cores
        assert len(task.placement.cores) == paranoid.min_lo_cores

    def test_always_boost_watermarks_hit_ceiling(self, node: Node) -> None:
        node.machine.set_snc(True)
        task = lo_task(node, level="L")
        task.start()
        node.lo_tasks.append(task)
        lax = QosProfile(
            socket_bw=Watermark(lo=1e9, hi=1e9),
            socket_latency=Watermark(lo=1e9, hi=1e9),
            saturation=Watermark(lo=1.0, hi=1.0),
            hipri_bw=Watermark(lo=1e9, hi=1e9),
        )
        runtime = KelpRuntime(node=node, profile=lax)
        for _ in range(20):
            node.sim.run_until(node.sim.now + 0.5)
            runtime.tick()
        lo_cores = len(node.lo_subdomain_cores())
        assert runtime.lo_plan.core_num == lo_cores
        assert runtime.lo_plan.prefetcher_num == lo_cores


class TestPerfEdgeCases:
    def test_back_to_back_reads(self, node: Node) -> None:
        node.sim.run_until(1.0)
        node.perf.read("x")
        reading = node.perf.read("x")  # zero-length window
        assert reading.elapsed >= 0.0
        # Averages stay finite.
        assert all(v >= 0 for v in reading.socket_bandwidth_gbps.values())

    def test_snc_toggle_mid_run(self, node: Node) -> None:
        task = lo_task(node)
        task.start()
        node.sim.run_until(1.0)
        node.machine.set_snc(True)
        node.sim.run_until(2.0)
        node.machine.set_snc(False)
        node.sim.run_until(3.0)
        assert task.meter.units > 0
