"""Determinism and reproducibility invariants across the whole stack."""

from __future__ import annotations

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.sensitivity import run_sensitivity


FAST = dict(duration=10.0, warmup=3.0)


class TestDeterminism:
    def test_training_mix_bit_equal(self) -> None:
        a = run_colocation(MixConfig(ml="cnn2", policy="KP", cpu="stitch",
                                     intensity=3, **FAST))
        b = run_colocation(MixConfig(ml="cnn2", policy="KP", cpu="stitch",
                                     intensity=3, **FAST))
        assert a.ml_perf == b.ml_perf
        assert a.cpu_throughput == b.cpu_throughput
        assert [p.lo_prefetchers for p in a.params] == [
            p.lo_prefetchers for p in b.params
        ]

    def test_seed_changes_inference_arrivals_only_slightly(self) -> None:
        a = run_colocation(MixConfig(ml="rnn1", policy="BL", seed=1, **FAST))
        b = run_colocation(MixConfig(ml="rnn1", policy="BL", seed=2, **FAST))
        # Closed-loop generation is seed-independent in structure; results
        # stay within run-to-run noise.
        assert abs(a.ml_perf - b.ml_perf) / a.ml_perf < 0.05

    def test_sensitivity_runner_deterministic(self) -> None:
        a = run_sensitivity("cnn3", "dram", "M", **FAST)
        b = run_sensitivity("cnn3", "dram", "M", **FAST)
        assert a == b

    def test_mix_order_independence(self) -> None:
        # Running other mixes in between must not leak state (fresh
        # Simulator/Machine per run).
        first = run_colocation(MixConfig(ml="cnn1", policy="CT", cpu="cpuml",
                                         intensity=8, **FAST))
        run_colocation(MixConfig(ml="cnn3", policy="KP", cpu="stream",
                                 intensity=12, **FAST))
        again = run_colocation(MixConfig(ml="cnn1", policy="CT", cpu="cpuml",
                                         intensity=8, **FAST))
        assert first.ml_perf == again.ml_perf
