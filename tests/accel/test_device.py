"""Tests for the accelerator device model."""

from __future__ import annotations

import pytest

from repro.accel.device import AcceleratorDevice, AcceleratorSpec, OpCost
from repro.errors import ConfigurationError
from repro.sim import Simulator


@pytest.fixture
def device(sim: Simulator) -> AcceleratorDevice:
    spec = AcceleratorSpec(
        name="test", peak_tflops=100.0, local_bw_gbps=100.0, local_capacity_gb=8.0
    )
    return AcceleratorDevice(spec, sim)


class TestOpCost:
    def test_compute_bound(self) -> None:
        spec = AcceleratorSpec("x", 1.0, 1000.0, 1.0)
        cost = OpCost(gflops=1000.0, local_bytes_gb=0.001)
        assert cost.duration_on(spec) == pytest.approx(1.0)

    def test_memory_bound(self) -> None:
        spec = AcceleratorSpec("x", 1000.0, 10.0, 1.0)
        cost = OpCost(gflops=1.0, local_bytes_gb=10.0)
        assert cost.duration_on(spec) == pytest.approx(1.0)

    def test_roofline_takes_max(self) -> None:
        spec = AcceleratorSpec("x", 1.0, 1.0, 1.0)
        cost = OpCost(gflops=500.0, local_bytes_gb=2.0)
        assert cost.duration_on(spec) == pytest.approx(2.0)

    def test_invalid_spec(self) -> None:
        with pytest.raises(ConfigurationError):
            AcceleratorSpec("x", 0.0, 1.0, 1.0)


class TestDevice:
    def test_serial_fifo_execution(self, sim: Simulator, device: AcceleratorDevice) -> None:
        done: list[int] = []
        cost = OpCost(local_bytes_gb=100.0)  # 1 s each
        device.submit(cost, lambda: done.append(1))
        device.submit(cost, lambda: done.append(2))
        sim.run_until(1.5)
        assert done == [1]
        sim.run_until(2.5)
        assert done == [1, 2]

    def test_queue_depth(self, sim: Simulator, device: AcceleratorDevice) -> None:
        cost = OpCost(local_bytes_gb=100.0)
        for _ in range(3):
            device.submit(cost, lambda: None)
        assert device.busy
        assert device.queue_depth == 2

    def test_utilization(self, sim: Simulator, device: AcceleratorDevice) -> None:
        device.submit(OpCost(local_bytes_gb=100.0), lambda: None)
        sim.run_until(2.0)
        assert device.utilization(2.0) == pytest.approx(0.5)
        assert device.ops_completed == 1

    def test_idle_after_drain(self, sim: Simulator, device: AcceleratorDevice) -> None:
        device.submit(OpCost(local_bytes_gb=50.0), lambda: None)
        sim.run_until(1.0)
        assert not device.busy
        assert device.queue_depth == 0
