"""Tests for accelerator presets."""

from __future__ import annotations

from repro.accel.presets import cloud_tpu_device, gpu_device, tpu_v1_device


class TestPresets:
    def test_tpu_v1_matches_paper(self) -> None:
        spec = tpu_v1_device()
        assert spec.peak_tflops == 92.0  # "92 TFLOPS" (TOPS) per the paper

    def test_cloud_tpu_matches_paper(self) -> None:
        spec = cloud_tpu_device()
        assert spec.peak_tflops == 180.0
        assert spec.local_capacity_gb == 64.0

    def test_gpu_has_hbm(self) -> None:
        assert gpu_device().local_bw_gbps > 500.0

    def test_names_distinct(self) -> None:
        names = {d().name for d in (tpu_v1_device, cloud_tpu_device, gpu_device)}
        assert len(names) == 3
