"""Tests for the PCIe link model."""

from __future__ import annotations

import pytest

from repro.accel.pcie import PcieLink
from repro.errors import ConfigurationError
from repro.hw.spec import PcieSpec
from repro.sim import Simulator


@pytest.fixture
def link(sim: Simulator) -> PcieLink:
    return PcieLink(PcieSpec(peak_bw_gbps=10.0), sim)


class TestPcieLink:
    def test_single_transfer_time(self, sim: Simulator, link: PcieLink) -> None:
        done: list[float] = []
        link.transfer(5.0, lambda: done.append(sim.now))
        sim.run_until(1.0)
        assert done == [pytest.approx(0.5)]

    def test_concurrent_transfers_share_bandwidth(
        self, sim: Simulator, link: PcieLink
    ) -> None:
        done: list[float] = []
        link.transfer(5.0, lambda: done.append(sim.now))
        link.transfer(5.0, lambda: done.append(sim.now))
        sim.run_until(2.0)
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_later_transfer_rebalances(self, sim: Simulator, link: PcieLink) -> None:
        done: list[float] = []
        link.transfer(10.0, lambda: done.append(sim.now))
        sim.at(0.5, lambda: link.transfer(2.5, lambda: done.append(sim.now)))
        sim.run_until(3.0)
        # T1 moves 5 GB by t=0.5; both then share 5 GB/s each. T2 (2.5 GB)
        # finishes at t=1.0; T1's remaining 2.5 GB then runs at full speed
        # and finishes at t=1.25.
        assert done[0] == pytest.approx(1.0)
        assert done[1] == pytest.approx(1.25)

    def test_zero_size_completes_immediately(self, sim: Simulator, link: PcieLink) -> None:
        done: list[bool] = []
        link.transfer(0.0, lambda: done.append(True))
        assert done == [True]

    def test_negative_size_rejected(self, link: PcieLink) -> None:
        with pytest.raises(ConfigurationError):
            link.transfer(-1.0, lambda: None)

    def test_bytes_moved_accounting(self, sim: Simulator, link: PcieLink) -> None:
        link.transfer(3.0, lambda: None)
        link.transfer(2.0, lambda: None)
        sim.run_until(5.0)
        assert link.bytes_moved_gb == pytest.approx(5.0)
        assert link.active_transfers == 0

    def test_late_clock_transfer_never_strands(self, sim: Simulator) -> None:
        """Regression: float residue at the completion event must retire.

        With a large simulated clock, the event time ``now + remaining/rate``
        rounds by up to ulp(now)/2, so the finisher can fire with more work
        left than FluidWork's epsilon. The old stale-event guard returned
        without rescheduling, stranding the transfer (and the inference
        request riding it) until an unrelated transfer rebalanced the link —
        forever, on a near-idle node. Sweep many start offsets late in a
        day-long clock so some land on the unfavourable rounding.
        """
        link = PcieLink(PcieSpec(peak_bw_gbps=12.0), sim, name="late")
        completed = [0]
        starts = [86_000.0 + i * 0.618 for i in range(200)]
        for start in starts:
            sim.at(
                start,
                lambda: link.transfer(
                    0.0024, lambda: completed.__setitem__(0, completed[0] + 1)
                ),
            )
        sim.run_until(87_000.0)
        assert completed[0] == len(starts)
        assert link.active_transfers == 0
