"""Localization rules rank the right root-cause candidate first."""

from __future__ import annotations

from repro.incidents.detect import Alarm, FleetView, NodeView
from repro.incidents.localize import localize

_INTERVAL = 10.0


def _node(index: int, time: float, **overrides) -> NodeView:
    fields = dict(
        index=index,
        signals_time=time,
        saturation=0.2,
        latency_factor=1.0,
        socket_bw_gbps=10.0,
        inflight=2,
        queued=0,
        batch_jobs=0,
        hot=False,
        journal_failed=0,
        journal_total=0,
    )
    fields.update(overrides)
    return NodeView(**fields)


def _view(
    time: float,
    offered: int = 100,
    completed: int | None = None,
    node_overrides: dict[int, dict] | None = None,
) -> FleetView:
    node_overrides = node_overrides or {}
    return FleetView(
        time=time,
        interval=_INTERVAL,
        offered=offered,
        completed=completed if completed is not None else offered,
        good=completed if completed is not None else offered,
        nodes=tuple(
            _node(i, time, **node_overrides.get(i, {})) for i in range(3)
        ),
    )


_ALARM = Alarm(time=50.0, detector="test")


def test_empty_history_yields_nothing() -> None:
    assert localize(_ALARM, []) == ()


def test_stale_telemetry_wins() -> None:
    views = [
        _view(40.0),
        _view(50.0, node_overrides={0: {"signals_time": 20.0}}),
    ]
    ranked = localize(_ALARM, views)
    assert ranked[0].label == "node:0"
    assert ranked[0].score >= 0.9


def test_failed_writes_implicate_the_stuck_node() -> None:
    views = [
        _view(40.0),
        _view(
            50.0,
            node_overrides={1: {"journal_failed": 4, "journal_total": 4}},
        ),
    ]
    ranked = localize(_ALARM, views)
    assert ranked[0].label == "node:1"
    assert 0.8 <= ranked[0].score < 0.9


def test_load_spike_implicates_the_intruder_tenant() -> None:
    hot = {i: {"inflight": 8, "queued": 4} for i in range(3)}
    views = [_view(40.0, offered=100), _view(50.0, offered=100, node_overrides=hot)]
    ranked = localize(_ALARM, views)
    assert ranked[0].label == "tenant:intruder"
    named = localize(_ALARM, views, intruder_name="abuser")
    assert named[0].label == "tenant:abuser"


def test_silent_shortfall_implicates_routing() -> None:
    views = [
        _view(40.0, offered=100, completed=100),
        _view(50.0, offered=140, completed=110),
    ]
    ranked = localize(_ALARM, views)
    assert ranked[0].label == "layer:routing"


def test_saturation_outlier_is_the_fallback() -> None:
    views = [_view(50.0, node_overrides={2: {"saturation": 0.8}})]
    ranked = localize(_ALARM, views)
    assert ranked[0].label == "node:2"
    assert ranked[0].score < 0.5


def test_alarm_named_node_gets_a_boost() -> None:
    overrides = {
        0: {"journal_failed": 2, "journal_total": 2},
        1: {"journal_failed": 2, "journal_total": 2},
    }
    views = [_view(40.0), _view(50.0, node_overrides=overrides)]
    tied = localize(_ALARM, views)
    assert tied[0].label == "node:0"  # deterministic label tiebreak
    named = localize(
        Alarm(time=50.0, detector="actuation-divergence", node=1), views
    )
    assert named[0].label == "node:1"
    assert "named by actuation-divergence" in named[0].evidence


def test_ranking_is_deduplicated_and_sorted() -> None:
    views = [
        _view(40.0),
        _view(
            50.0,
            node_overrides={
                0: {"signals_time": 20.0, "saturation": 0.9},
                1: {"journal_failed": 3, "journal_total": 3},
            },
        ),
    ]
    ranked = localize(_ALARM, views)
    labels = [c.label for c in ranked]
    assert labels == sorted(set(labels), key=lambda l: labels.index(l))
    assert labels[0] == "node:0"
    scores = [c.score for c in ranked]
    assert scores == sorted(scores, reverse=True)
