"""Detector bank: episodic firing, hysteresis, and per-node baselines."""

from __future__ import annotations

from repro.incidents.detect import DetectorBank, FleetView, NodeView

_INTERVAL = 10.0


def _node(index: int, time: float, **overrides) -> NodeView:
    fields = dict(
        index=index,
        signals_time=time,
        saturation=0.2,
        latency_factor=1.0,
        socket_bw_gbps=10.0,
        inflight=2,
        queued=0,
        batch_jobs=0,
        hot=False,
        journal_failed=0,
        journal_total=0,
    )
    fields.update(overrides)
    return NodeView(**fields)


def _view(
    time: float,
    offered: int = 0,
    good: int | None = None,
    node_overrides: dict[int, dict] | None = None,
    nodes: int = 2,
) -> FleetView:
    node_overrides = node_overrides or {}
    return FleetView(
        time=time,
        interval=_INTERVAL,
        offered=offered,
        completed=good if good is not None else offered,
        good=good if good is not None else offered,
        nodes=tuple(
            _node(i, time, **node_overrides.get(i, {})) for i in range(nodes)
        ),
    )


class TestTelemetrySilence:
    def test_fires_once_per_episode_and_rearms(self) -> None:
        bank = DetectorBank(interval=_INTERVAL)
        frozen = {0: {"signals_time": 10.0}}
        assert bank.observe(_view(10.0)) == []
        assert bank.observe(_view(20.0, node_overrides=frozen)) == []
        alarms = bank.observe(_view(30.0, node_overrides=frozen))
        assert [a.detector for a in alarms] == ["telemetry-silence"]
        assert alarms[0].node == 0
        # A persistent fault does not re-fire ...
        assert bank.observe(_view(40.0, node_overrides=frozen)) == []
        # ... a fresh export clears the episode ...
        assert bank.observe(_view(50.0)) == []
        # ... and a new blackout fires a new alarm.
        frozen2 = {0: {"signals_time": 50.0}}
        assert bank.observe(_view(60.0, node_overrides=frozen2)) == []
        alarms = bank.observe(_view(70.0, node_overrides=frozen2))
        assert [a.node for a in alarms] == [0]


class TestActuationDivergence:
    def test_needs_enough_recent_failures(self) -> None:
        bank = DetectorBank(interval=_INTERVAL)
        assert bank.observe(_view(10.0)) == []
        one = {0: {"journal_failed": 1, "journal_total": 1}}
        assert bank.observe(_view(20.0, node_overrides=one)) == []
        burst = {0: {"journal_failed": 5, "journal_total": 5}}
        alarms = bank.observe(_view(30.0, node_overrides=burst))
        assert [a.detector for a in alarms] == ["actuation-divergence"]
        # Flat journal -> the delta decays to zero and the episode clears.
        assert bank.observe(_view(40.0, node_overrides=burst)) == []
        assert bank.observe(_view(50.0, node_overrides=burst)) == []
        again = {0: {"journal_failed": 9, "journal_total": 9}}
        alarms = bank.observe(_view(60.0, node_overrides=again))
        assert [a.node for a in alarms] == [0]


class TestSaturationSpike:
    def test_baseline_frozen_during_episode(self) -> None:
        bank = DetectorBank(interval=_INTERVAL)
        assert bank.observe(_view(10.0)) == []
        assert bank.observe(_view(20.0)) == []
        hot = {1: {"saturation": 0.7}}
        alarms = bank.observe(_view(30.0, node_overrides=hot))
        assert [(a.detector, a.node) for a in alarms] == [
            ("saturation-spike", 1)
        ]
        # Still hot: no re-fire; baseline must not absorb the episode.
        assert bank.observe(_view(40.0, node_overrides=hot)) == []
        # Cooling clears the episode; a new spike fires again.
        assert bank.observe(_view(50.0)) == []
        alarms = bank.observe(_view(60.0, node_overrides=hot))
        assert [a.node for a in alarms] == [1]


class TestAttainmentDrop:
    def test_windowed_ratio_with_hysteresis(self) -> None:
        bank = DetectorBank(interval=_INTERVAL)
        # Healthy warmup: offered == good, 10 per tick.
        for tick in range(1, 6):
            assert bank.observe(_view(10.0 * tick, offered=10 * tick)) == []
        # Good stalls while offered keeps arriving: ratio collapses.
        alarms = bank.observe(_view(60.0, offered=60, good=50))
        assert [a.detector for a in alarms] == ["attainment-drop"]
        # Persistently bad: episodic, no second alarm.
        assert bank.observe(_view(70.0, offered=70, good=50)) == []
        # Full recovery re-arms ...
        assert bank.observe(_view(80.0, offered=80, good=80)) == []
        assert bank.observe(_view(90.0, offered=90, good=90)) == []
        # ... and a fresh collapse fires again.
        alarms = bank.observe(_view(100.0, offered=120, good=90))
        assert [a.detector for a in alarms] == ["attainment-drop"]

    def test_min_offered_guard(self) -> None:
        bank = DetectorBank(interval=_INTERVAL)
        # A trickle of offered traffic never trips the ratio test.
        for tick in range(1, 10):
            alarms = bank.observe(_view(10.0 * tick, offered=tick, good=0))
            assert alarms == []


class TestBankHistory:
    def test_history_is_bounded(self) -> None:
        bank = DetectorBank(interval=_INTERVAL, history_limit=8)
        for tick in range(1, 30):
            bank.observe(_view(10.0 * tick, offered=10 * tick))
        assert len(bank.views) == 8
        assert bank.views[-1].time == 290.0
