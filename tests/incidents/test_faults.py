"""Incident schedules: validation, determinism, scenario round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.incidents.faults import (
    INCIDENT_KINDS,
    IncidentSchedule,
    IncidentSpec,
    default_schedule,
    load_scenario,
    save_scenario,
)


class TestIncidentSpec:
    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            IncidentSpec(kind="meteor-strike", start_s=1.0, duration_s=1.0)

    def test_node_kinds_need_a_node(self) -> None:
        with pytest.raises(ConfigurationError):
            IncidentSpec(kind="node-death", start_s=1.0, duration_s=1.0)
        spec = IncidentSpec(
            kind="node-death", start_s=1.0, duration_s=2.0, node=1
        )
        assert spec.end_s == 3.0
        assert spec.target == "node:1"

    def test_bad_times_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            IncidentSpec(
                kind="noisy-neighbor", start_s=-1.0, duration_s=1.0
            )
        with pytest.raises(ConfigurationError):
            IncidentSpec(
                kind="noisy-neighbor", start_s=0.0, duration_s=0.0
            )

    def test_targets_per_kind(self) -> None:
        noisy = IncidentSpec(
            kind="noisy-neighbor",
            start_s=0.0,
            duration_s=1.0,
            params=(("tenant", "abuser"),),
        )
        assert noisy.target == "tenant:abuser"
        misconfig = IncidentSpec(
            kind="routing-misconfig", start_s=0.0, duration_s=1.0
        )
        assert misconfig.target == "layer:routing"

    def test_param_last_write_wins(self) -> None:
        spec = IncidentSpec(
            kind="routing-misconfig",
            start_s=0.0,
            duration_s=1.0,
            params=(("drop_fraction", 0.2), ("drop_fraction", 0.7)),
        )
        assert spec.param("drop_fraction") == 0.7
        assert spec.param("missing", "dflt") == "dflt"


class TestIncidentSchedule:
    def test_out_of_order_rejected(self) -> None:
        a = IncidentSpec(kind="routing-misconfig", start_s=5.0, duration_s=1.0)
        b = IncidentSpec(kind="noisy-neighbor", start_s=1.0, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            IncidentSchedule(incidents=(a, b))

    def test_empty_schedule_allowed(self) -> None:
        schedule = IncidentSchedule(seed=9)
        assert len(schedule) == 0
        assert schedule.kinds == ()


class TestDefaultSchedule:
    def test_deterministic_for_a_seed(self) -> None:
        a = default_schedule(3600.0, nodes=3, seed=5)
        b = default_schedule(3600.0, nodes=3, seed=5)
        assert a == b
        c = default_schedule(3600.0, nodes=3, seed=6)
        assert [i.start_s for i in c.incidents] != [
            i.start_s for i in a.incidents
        ]

    def test_covers_all_classes_without_overlap(self) -> None:
        schedule = default_schedule(86400.0, nodes=3, seed=0)
        assert schedule.kinds == INCIDENT_KINDS
        for prev, cur in zip(schedule.incidents, schedule.incidents[1:]):
            assert prev.end_s < cur.start_s
        assert schedule.incidents[-1].end_s < 86400.0

    def test_node_round_robin(self) -> None:
        schedule = default_schedule(3600.0, nodes=2, seed=0)
        node_targets = [
            i.node for i in schedule.incidents if i.node is not None
        ]
        assert node_targets == [0, 1, 0]

    def test_class_subset(self) -> None:
        schedule = default_schedule(
            3600.0, nodes=2, seed=0, classes=("node-death", "noisy-neighbor")
        )
        assert schedule.kinds == ("node-death", "noisy-neighbor")
        with pytest.raises(ConfigurationError):
            default_schedule(3600.0, nodes=2, classes=("bogus",))


class TestScenarioFiles:
    def test_round_trip(self, tmp_path) -> None:
        schedule = default_schedule(3600.0, nodes=3, seed=5)
        path = tmp_path / "scenario.json"
        save_scenario(schedule, str(path))
        loaded = load_scenario(str(path))
        assert loaded.seed == schedule.seed
        assert loaded.kinds == schedule.kinds
        # Bit-exact: a reloaded scenario must replay identically.
        assert loaded.incidents == schedule.incidents

    def test_missing_file_rejected(self, tmp_path) -> None:
        with pytest.raises(ConfigurationError):
            load_scenario(str(tmp_path / "nope.json"))

    def test_wrong_format_rejected(self, tmp_path) -> None:
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_scenario(str(path))
