"""IncidentEngine composition: clean attach perturbs nothing, exports are
JSON-clean, and injected faults act on the orchestrator they target."""

from __future__ import annotations

import json

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.orchestrator import fleet_config_for_trace, run_fleet
from repro.incidents.engine import IncidentEngine
from repro.incidents.faults import IncidentSchedule, default_schedule
from repro.traces import TraceGenConfig, generate_trace


def _summary(result) -> dict:
    return result.summary()


class TestCleanAttach:
    def test_empty_schedule_is_bit_identical(self) -> None:
        config = FleetConfig(nodes=2, duration=3.0, warmup=1.0, seed=3)
        plain = run_fleet(config)
        hooked = run_fleet(
            config, hooks=IncidentEngine(IncidentSchedule(seed=3))
        )
        assert _summary(plain) == _summary(hooked)

    def test_empty_schedule_composes_with_trace_replay(self) -> None:
        trace = generate_trace(
            TraceGenConfig(seed=2, duration_s=90.0, rate_qps=3.0)
        )
        config = fleet_config_for_trace(trace, seed=5, nodes=2)
        plain = run_fleet(config, trace=trace)
        engine = IncidentEngine(IncidentSchedule(seed=5))
        hooked = run_fleet(config, trace=trace, hooks=engine)
        assert _summary(plain) == _summary(hooked)
        # The engine still observed every control tick.
        assert len(engine.ticks) > 0
        assert engine.alarms == []


class TestFaultedRun:
    @pytest.fixture(scope="class")
    def faulted(self):
        trace = generate_trace(
            TraceGenConfig(seed=2, duration_s=600.0, rate_qps=2.0)
        )
        config = fleet_config_for_trace(
            trace, seed=5, nodes=2, routing="random", interval=10.0,
            warmup=20.0,
        )
        schedule = default_schedule(
            600.0, nodes=2, seed=4,
            classes=("node-death", "stuck-actuator"),
        )
        engine = IncidentEngine(schedule, remediate=True)
        result = run_fleet(config, trace=trace, hooks=engine)
        return config, trace, schedule, engine, result

    def test_offered_stream_is_fault_invariant(self, faulted) -> None:
        config, trace, schedule, engine, result = faulted
        clean = run_fleet(
            config, trace=trace, hooks=IncidentEngine(IncidentSchedule())
        )
        # Admission-epoch accounting: faults change outcomes, never offers.
        assert result.offered_total == clean.offered_total
        assert result.good_total < clean.good_total

    def test_node_death_drops_are_accounted(self, faulted) -> None:
        _, _, _, engine, result = faulted
        assert result.requests_dropped > 0

    def test_alarms_and_remediations_fired(self, faulted) -> None:
        _, _, schedule, engine, _ = faulted
        assert engine.alarms, "faults must raise alarms"
        playbooks = {r["playbook"] for r in engine.export()["remediations"]}
        assert "quarantine-reroute" in playbooks

    def test_export_is_json_clean_and_picklable(self, faulted) -> None:
        import pickle

        _, _, _, engine, _ = faulted
        export = engine.export()
        assert json.loads(json.dumps(export)) == export
        assert pickle.loads(pickle.dumps(export)) == export
        assert set(export) == {
            "incidents", "remediate", "ticks", "alarms", "remediations",
        }

    def test_rerun_is_deterministic(self, faulted) -> None:
        config, trace, schedule, engine, result = faulted
        engine2 = IncidentEngine(schedule, remediate=True)
        result2 = run_fleet(config, trace=trace, hooks=engine2)
        assert engine.export() == engine2.export()
        assert _summary(result) == _summary(result2)
