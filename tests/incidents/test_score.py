"""Scorecard arithmetic over synthetic engine exports."""

from __future__ import annotations

import pytest

from repro.incidents.faults import IncidentSchedule, IncidentSpec
from repro.incidents.score import score_trial

_INTERVAL = 10.0
_DURATION = 300.0


def _ticks(good_rate) -> list[list]:
    """A cumulative tick series with a per-tick SLO-good rate function."""
    ticks, offered, completed, good = [], 0, 0, 0
    for k in range(1, 31):
        time = _INTERVAL * k
        offered += 10
        completed += 10
        good += good_rate(time)
        ticks.append([time, offered, completed, good])
    return ticks


def _schedule() -> IncidentSchedule:
    return IncidentSchedule(
        incidents=(
            IncidentSpec(
                kind="node-death", start_s=50.0, duration_s=30.0, node=0
            ),
            IncidentSpec(
                kind="routing-misconfig", start_s=200.0, duration_s=30.0
            ),
        ),
        seed=1,
    )


def _exports():
    clean = {"ticks": _ticks(lambda t: 10), "alarms": [], "remediations": []}
    # Unremediated: both faults bleed good completions for their duration
    # plus a little settle; remediated: one bad tick each.
    norem = {
        "ticks": _ticks(
            lambda t: 2 if (50 < t <= 90) or (200 < t <= 240) else 10
        ),
        "alarms": [],
        "remediations": [],
    }
    rem = {
        "ticks": _ticks(lambda t: 4 if t in (60.0, 210.0) else 10),
        "alarms": [
            {"time": 60.0, "detector": "telemetry-silence", "node": 0,
             "candidates": [{"label": "node:0", "score": 0.9}]},
            {"time": 220.0, "detector": "attainment-drop",
             "candidates": [{"label": "layer:routing", "score": 0.6}]},
        ],
        "remediations": [
            {"time": 60.0, "playbook": "quarantine-reroute",
             "target": "node:0"},
            {"time": 220.0, "playbook": "restore-routing",
             "target": "layer:routing"},
        ],
    }
    return clean, norem, rem


class TestScoreTrial:
    def test_full_scorecard(self) -> None:
        clean, norem, rem = _exports()
        card = score_trial(
            _schedule(), clean, norem, rem,
            interval=_INTERVAL, duration=_DURATION,
        )
        assert len(card.incidents) == 2
        death, misconfig = card.incidents

        assert death.detection_latency_s == pytest.approx(10.0)
        assert death.detected_by == "telemetry-silence"
        assert death.localized_as == "node:0"
        assert death.localization_correct
        assert death.playbooks == ("quarantine-reroute",)
        # Attribution window [50, 140]: norem loses 8 good x 4 ticks,
        # rem loses 6 good x 1 tick.
        assert death.window_end_s == pytest.approx(140.0)
        assert death.damage_norem == 32
        assert death.damage_rem == 6
        assert death.damage_avoided == 26

        assert misconfig.localization_correct
        assert misconfig.playbooks == ("restore-routing",)
        assert misconfig.damage_norem == 32
        assert misconfig.damage_rem == 6

        assert card.offered == 300
        assert card.total_damage_norem == 64
        assert card.total_damage_rem == 12

    def test_window_clipped_by_next_incident(self) -> None:
        schedule = IncidentSchedule(
            incidents=(
                IncidentSpec(
                    kind="node-death", start_s=50.0, duration_s=30.0, node=0
                ),
                IncidentSpec(
                    kind="routing-misconfig", start_s=100.0, duration_s=30.0
                ),
            ),
            seed=1,
        )
        clean, norem, rem = _exports()
        card = score_trial(
            schedule, clean, norem, rem,
            interval=_INTERVAL, duration=_DURATION,
        )
        assert card.incidents[0].window_end_s == pytest.approx(100.0)

    def test_undetected_incident(self) -> None:
        clean, norem, rem = _exports()
        rem = dict(rem, alarms=[], remediations=[])
        card = score_trial(
            _schedule(), clean, norem, rem,
            interval=_INTERVAL, duration=_DURATION,
        )
        for score in card.incidents:
            assert score.detection_latency_s is None
            assert score.detected_by is None
            assert score.localized_as is None
            assert not score.localization_correct
            assert score.playbooks == ()

    def test_as_dict_is_json_clean(self) -> None:
        import json

        clean, norem, rem = _exports()
        card = score_trial(
            _schedule(), clean, norem, rem,
            interval=_INTERVAL, duration=_DURATION,
        )
        assert json.loads(json.dumps(card.as_dict())) == card.as_dict()
