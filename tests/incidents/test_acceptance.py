"""PR acceptance scenario: a seeded multi-incident day over a trace replay.

All five incident classes fire over a day-long trace; every class must be
detected promptly, localized to its ground-truth root cause, remediated by
its designated playbook, and cost strictly less SLO damage with remediation
than without — with the incident/alarm/remediation streams exported via
obs records and scenario provenance in the manifest.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.fleet_incidents import run_fleet_incidents
from repro.incidents.faults import INCIDENT_KINDS
from repro.obs import ObsConfig, RunObserver
from repro.traces import TraceGenConfig

_INTERVAL = 60.0

#: The playbook each incident class must trigger in the remediated run.
_EXPECTED_PLAYBOOK = {
    "node-death": "quarantine-reroute",
    "telemetry-blackout": "conservative-governor",
    "stuck-actuator": "drain-batch",
    "noisy-neighbor": "throttle-tenant",
    "routing-misconfig": "restore-routing",
}


@pytest.fixture(scope="module")
def day(tmp_path_factory):
    out = tmp_path_factory.mktemp("incidents-obs")
    observer = RunObserver(
        ObsConfig.from_env(metrics_out=str(out / "metrics.jsonl")),
        name="fleet-incidents",
    )
    result = run_fleet_incidents(
        gen=TraceGenConfig(
            seed=3, duration_s=86400.0, rate_qps=0.15, burst_multiplier=1.0
        ),
        nodes=3,
        routing="random",
        interval=_INTERVAL,
        warmup=120.0,
        seed=7,
        incident_seed=5,
        intruder_rate_qps=0.3,
        intruder_demand=2500.0,
        observer=observer,
    )
    paths = observer.finalize(command="pytest fleet-incidents acceptance")
    return result, observer, paths


class TestScenarioShape:
    def test_all_five_classes_over_a_day(self, day) -> None:
        result, _, _ = day
        assert result.schedule.kinds == INCIDENT_KINDS
        assert len(result.schedule) >= 4
        assert result.trace_duration_s == pytest.approx(86400.0)

    def test_offered_stream_identical_across_modes(self, day) -> None:
        result, _, _ = day
        by_mode = result.exports[0]
        offered = {m: e["ticks"][-1][1] for m, e in by_mode.items()}
        assert len(set(offered.values())) == 1


class TestPerClassOutcome:
    def test_every_class_detected_promptly(self, day) -> None:
        result, _, _ = day
        for score in result.scorecards[0].incidents:
            assert score.detection_latency_s is not None, score.kind
            assert score.detection_latency_s <= 4 * _INTERVAL, score.kind

    def test_every_class_localized_correctly(self, day) -> None:
        result, _, _ = day
        for score in result.scorecards[0].incidents:
            assert score.localization_correct, (
                score.kind, score.localized_as, score.target,
            )

    def test_designated_playbook_fired(self, day) -> None:
        result, _, _ = day
        for score in result.scorecards[0].incidents:
            assert _EXPECTED_PLAYBOOK[score.kind] in score.playbooks, (
                score.kind, score.playbooks,
            )

    def test_remediation_strictly_reduces_damage_per_class(self, day) -> None:
        result, _, _ = day
        for score in result.scorecards[0].incidents:
            assert score.damage_norem > 0, score.kind
            assert score.damage_rem < score.damage_norem, score.kind

    def test_remediation_strictly_reduces_total_damage(self, day) -> None:
        result, _, _ = day
        card = result.scorecards[0]
        assert card.good_norem < card.good_rem <= card.good_clean
        assert card.total_damage_rem < card.total_damage_norem
        # Remediation recovers the overwhelming majority of the damage.
        assert card.total_damage_rem <= 0.2 * card.total_damage_norem


class TestObsExport:
    def test_incident_alarm_remediation_records(self, day) -> None:
        result, observer, _ = day
        kinds = {r["kind"] for r in observer.records}
        assert {"incident", "alarm", "remediation"} <= kinds
        incidents = [
            r for r in observer.records if r["kind"] == "incident"
        ]
        assert sorted(r["incident_kind"] for r in incidents) == sorted(
            INCIDENT_KINDS
        )
        for row in incidents:
            assert json.loads(json.dumps(row)) == row

    def test_manifest_carries_scenario_provenance(self, day) -> None:
        _, _, paths = day
        manifest_path = next(p for p in paths if "manifest" in str(p))
        manifest = json.loads(open(manifest_path, encoding="utf-8").read())
        config = manifest["config"]
        assert config["incident_scenario"] == "generated(seed=5)"
        assert config["incident_seed"] == 5
        assert tuple(config["incident_classes"]) == INCIDENT_KINDS
