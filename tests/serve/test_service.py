"""FleetService: epoch stepping, control commands, live membership."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.fleet.orchestrator import FleetOrchestrator, fleet_config_for_trace
from repro.serve import AutoscalerConfig, FleetService
from repro.traces import TraceGenConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        TraceGenConfig(seed=11, duration_s=20.0, rate_qps=12.0)
    )


@pytest.fixture(scope="module")
def config(trace):
    return fleet_config_for_trace(trace, nodes=3, seed=5)


def _serve(config, trace, **kwargs) -> FleetService:
    service = FleetService(config, trace=trace, **kwargs)
    service.start()
    return service


class TestStepping:
    def test_stepped_equals_batch(self, config, trace) -> None:
        batch = FleetOrchestrator(config, trace=trace).run()
        service = _serve(config, trace)
        service.run_to_end()
        assert repr(service.finish()) == repr(batch)

    def test_odd_epoch_length_equals_batch(self, config, trace) -> None:
        batch = FleetOrchestrator(config, trace=trace).run()
        service = _serve(config, trace, epoch_s=0.7)
        service.run_to_end()
        assert repr(service.finish()) == repr(batch)
        assert service.epoch == math.ceil(config.duration / 0.7)

    def test_snapshot_bookkeeping(self, config, trace) -> None:
        service = _serve(config, trace, epoch_s=1.0)
        service.run_to_end()
        assert len(service.snapshots) == service.epoch
        last = service.snapshots[-1]
        assert last.time_s == config.duration
        assert last.offered == sum(
            s.epoch_offered for s in service.snapshots
        )
        assert last.completed == sum(
            s.epoch_completed for s in service.snapshots
        )
        assert [s.epoch for s in service.snapshots] == list(
            range(1, service.epoch + 1)
        )

    def test_lifecycle_guards(self, config, trace) -> None:
        service = FleetService(config, trace=trace)
        with pytest.raises(ExperimentError, match="not started"):
            service.step()
        service.start()
        with pytest.raises(ExperimentError, match="already started"):
            service.start()
        with pytest.raises(ExperimentError, match="not reached the horizon"):
            service.finish()
        service.run_to_end()
        service.finish()
        with pytest.raises(ExperimentError, match="already finished"):
            service.step()

    def test_rejects_bad_epoch_length(self, config, trace) -> None:
        with pytest.raises(ConfigurationError, match="epoch_s"):
            FleetService(config, trace=trace, epoch_s=0.0)


class TestCommands:
    def test_evict_drops_and_admit_restores(self, config, trace) -> None:
        service = _serve(config, trace, epoch_s=1.0)
        tenant = config.tenants[0].name
        for _ in range(5):
            service.step()
        before = service.snapshots[-1]
        assert before.dropped == 0
        service.evict_tenant(tenant)
        for _ in range(5):
            service.step()
        during = service.snapshots[-1]
        assert during.dropped > 0
        service.admit_tenant(tenant)
        service.run_to_end()
        after = service.snapshots[-1]
        # No further drops once re-admitted.
        assert after.dropped == during.dropped
        result = service.finish()
        assert result.requests_dropped == during.dropped
        assert service.commands == [
            (5, f"evict:{tenant}"), (10, f"admit:{tenant}"),
        ]

    def test_unknown_tenant_rejected(self, config, trace) -> None:
        service = _serve(config, trace)
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            service.evict_tenant("nobody")

    def test_grow_and_shrink_membership(self, config, trace) -> None:
        service = _serve(config, trace, epoch_s=1.0)
        service.step()
        assert service.grow() == config.nodes
        snap = service.step()
        assert snap.nodes_active == config.nodes + 1
        assert snap.nodes_built == config.nodes + 1
        assert service.shrink() == config.nodes
        snap = service.step()
        assert snap.nodes_active == config.nodes
        assert snap.nodes_retired == 1
        # Regrowing recommissions the retired node, not a new build.
        assert service.grow() == config.nodes
        assert service.step().nodes_built == config.nodes + 1
        service.run_to_end()
        service.finish()

    def test_shrink_floor(self, config, trace) -> None:
        service = _serve(config, trace)
        for _ in range(config.nodes - 1):
            service.shrink()
        with pytest.raises(ExperimentError, match="below one node"):
            service.shrink()

    def test_swap_routing_validates_name(self, config, trace) -> None:
        service = _serve(config, trace)
        with pytest.raises(ConfigurationError, match="unknown routing"):
            service.swap_routing("bogus")
        service.swap_routing("random")
        assert service.commands == [(0, "routing:random")]
        service.run_to_end()
        service.finish()


class TestAutoscaler:
    def test_low_load_shrinks_toward_floor(self, config, trace) -> None:
        service = _serve(
            config,
            trace,
            autoscaler=AutoscalerConfig(
                min_nodes=1, max_nodes=4, epochs_down=2, cooldown_epochs=0
            ),
            epoch_s=1.0,
        )
        service.run_to_end()
        assert service.snapshots[-1].nodes_active == 1
        assert any(
            command.startswith("autoscale-shrink:")
            for _, command in service.commands
        )
        service.finish()

    def test_autoscaled_run_is_reproducible(self, config, trace) -> None:
        def run() -> tuple:
            service = _serve(
                config,
                trace,
                autoscaler=AutoscalerConfig(min_nodes=1, max_nodes=4),
                epoch_s=1.0,
            )
            service.run_to_end()
            result = service.finish()
            return repr(result), tuple(service.commands)

        assert run() == run()
