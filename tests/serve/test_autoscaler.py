"""The demand-driven autoscaler: validation, hysteresis, cooldown."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve import Autoscaler, AutoscalerConfig


def _observe_rate(scaler, epoch, rate_qps, nodes, capacity=10.0):
    """Feed one epoch at the given offered rate (1 s epochs)."""
    offered = scaler._last_offered + int(rate_qps)
    return scaler.observe(epoch, offered, 1.0, nodes, capacity)


class TestConfig:
    def test_defaults_valid(self) -> None:
        AutoscalerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_nodes": 0},
            {"max_nodes": 2, "min_nodes": 4},
            {"low_utilization": 0.9, "high_utilization": 0.8},
            {"low_utilization": -0.1},
            {"epochs_up": 0},
            {"epochs_down": 0},
            {"cooldown_epochs": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs) -> None:
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(**kwargs)


class TestDecisions:
    def test_steady_band_never_acts(self) -> None:
        scaler = Autoscaler(AutoscalerConfig())
        # 60% of one 10 qps node: inside [0.40, 0.85].
        for epoch in range(1, 20):
            assert _observe_rate(scaler, epoch, 6, 1) == 0
        assert scaler.actions == []

    def test_grow_needs_consecutive_epochs(self) -> None:
        scaler = Autoscaler(AutoscalerConfig(epochs_up=3))
        assert _observe_rate(scaler, 1, 9, 1) == 0
        assert _observe_rate(scaler, 2, 9, 1) == 0
        # A dip resets the streak.
        assert _observe_rate(scaler, 3, 6, 1) == 0
        assert _observe_rate(scaler, 4, 9, 1) == 0
        assert _observe_rate(scaler, 5, 9, 1) == 0
        assert _observe_rate(scaler, 6, 9, 1) == 1
        assert scaler.actions == [(6, "grow", 2)]

    def test_shrink_needs_longer_streak(self) -> None:
        scaler = Autoscaler(
            AutoscalerConfig(epochs_down=4, cooldown_epochs=0)
        )
        for epoch in range(1, 4):
            assert _observe_rate(scaler, epoch, 2, 2) == 0
        assert _observe_rate(scaler, 4, 2, 2) == -1
        assert scaler.actions == [(4, "shrink", 1)]

    def test_cooldown_holds_and_resets_streaks(self) -> None:
        scaler = Autoscaler(
            AutoscalerConfig(epochs_up=1, cooldown_epochs=2)
        )
        assert _observe_rate(scaler, 1, 9, 1) == 1
        # Two cooldown epochs: overload is ignored entirely.
        assert _observe_rate(scaler, 2, 19, 2) == 0
        assert _observe_rate(scaler, 3, 19, 2) == 0
        # Streaks restarted from zero after the hold.
        assert _observe_rate(scaler, 4, 19, 2) == 1

    def test_respects_bounds(self) -> None:
        scaler = Autoscaler(
            AutoscalerConfig(
                min_nodes=2, max_nodes=2, epochs_up=1, epochs_down=1,
                cooldown_epochs=0,
            )
        )
        assert _observe_rate(scaler, 1, 30, 2) == 0  # at max
        assert _observe_rate(scaler, 2, 1, 2) == 0  # at min
        assert scaler.actions == []

    def test_zero_capacity_is_idle(self) -> None:
        scaler = Autoscaler(AutoscalerConfig())
        assert scaler.observe(1, 100, 1.0, 0, 0.0) == 0

    def test_replay_is_deterministic(self) -> None:
        config = AutoscalerConfig(epochs_up=2, epochs_down=3)
        rates = [9, 9, 9, 12, 3, 2, 2, 2, 2, 8, 9, 9, 9, 1, 1, 1, 1, 1]

        def run() -> tuple:
            scaler = Autoscaler(config)
            nodes = 1
            deltas = []
            for epoch, rate in enumerate(rates, start=1):
                delta = _observe_rate(scaler, epoch, rate, nodes)
                nodes = max(1, nodes + delta)
                deltas.append(delta)
            return tuple(deltas), tuple(scaler.actions)

        assert run() == run()
