"""Checkpoint/restore bit-identity — the serving control plane's core claim.

A service checkpointed at epoch T and restored — in this process or a
fresh one — must finish with byte-identical results (summary, windows,
epoch snapshots, command log) to the uninterrupted run.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fleet.orchestrator import fleet_config_for_trace
from repro.serve import AutoscalerConfig, FleetService, checkpoint_meta
from repro.traces import TraceGenConfig, generate_trace

_SRC = Path(__file__).resolve().parents[2] / "src"
_GEN = TraceGenConfig(seed=11, duration_s=20.0, rate_qps=12.0)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(_GEN)


@pytest.fixture(scope="module")
def config(trace):
    return fleet_config_for_trace(trace, nodes=3, seed=5)


def _outcome(service: FleetService) -> tuple:
    result = service.finish()
    return (
        repr(result),
        tuple(s.as_dict() for s in service.snapshots),
        tuple(service.commands),
    )


def _run_with_plan(service: FleetService, save_path=None, save_at=None):
    """Drive to the end, applying a fixed command plan, optionally saving."""
    tenant = service.config.tenants[0].name
    while not service.done:
        if service.epoch == 3:
            service.evict_tenant(tenant)
        if service.epoch == 8:
            service.admit_tenant(tenant)
            service.swap_routing("random")
        if save_at is not None and service.epoch == save_at:
            service.save(save_path)
        service.step()
    return service


class TestRoundTrip:
    def test_restore_matches_uninterrupted(
        self, config, trace, tmp_path
    ) -> None:
        path = str(tmp_path / "ckpt.bin")
        original = FleetService(config, trace=trace, epoch_s=1.0)
        original.start()
        _run_with_plan(original, save_path=path, save_at=6)
        baseline = _outcome(original)

        restored = FleetService.restore(path, trace=trace)
        assert restored.epoch == 6
        _run_with_plan(restored)
        assert _outcome(restored) == baseline

    def test_restore_with_autoscaler_state(
        self, config, trace, tmp_path
    ) -> None:
        path = str(tmp_path / "ckpt.bin")
        scaler = AutoscalerConfig(
            min_nodes=1, max_nodes=4, epochs_down=2, cooldown_epochs=1
        )
        original = FleetService(
            config, trace=trace, epoch_s=1.0, autoscaler=scaler
        )
        original.start()
        while not original.done:
            if original.epoch == 7:
                original.save(path)
            original.step()
        baseline = _outcome(original)

        restored = FleetService.restore(path, trace=trace)
        while not restored.done:
            restored.step()
        assert _outcome(restored) == baseline

    def test_fresh_process_restore_is_bit_identical(
        self, config, trace, tmp_path
    ) -> None:
        path = tmp_path / "ckpt.bin"
        out = tmp_path / "restored.json"
        original = FleetService(config, trace=trace, epoch_s=1.0)
        original.start()
        _run_with_plan(original, save_path=str(path), save_at=6)
        baseline = _outcome(original)

        code = f"""
import json
from repro.serve import FleetService
from repro.traces import TraceGenConfig, generate_trace

trace = generate_trace(TraceGenConfig(
    seed={_GEN.seed}, duration_s={_GEN.duration_s}, rate_qps={_GEN.rate_qps},
))
service = FleetService.restore({str(path)!r}, trace=trace)
tenant = service.config.tenants[0].name
while not service.done:
    if service.epoch == 8:
        service.admit_tenant(tenant)
        service.swap_routing("random")
    service.step()
result = service.finish()
payload = {{
    "result": repr(result),
    "snapshots": [s.as_dict() for s in service.snapshots],
    "commands": [list(row) for row in service.commands],
}}
with open({str(out)!r}, "w") as handle:
    json.dump(payload, handle)
"""
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
        )
        payload = json.loads(out.read_text())
        assert payload["result"] == baseline[0]
        assert tuple(payload["snapshots"]) == baseline[1]
        assert [tuple(row) for row in payload["commands"]] == list(baseline[2])


class TestValidation:
    def test_meta_readable_without_state(self, config, trace, tmp_path) -> None:
        path = str(tmp_path / "ckpt.bin")
        service = FleetService(config, trace=trace, epoch_s=1.0)
        service.start()
        service.step()
        meta = service.save(path)
        assert checkpoint_meta(path) == meta
        assert meta["epoch"] == 1 and meta["time_s"] == 1.0

    def test_rejects_wrong_trace(self, config, trace, tmp_path) -> None:
        path = str(tmp_path / "ckpt.bin")
        service = FleetService(config, trace=trace, epoch_s=1.0)
        service.start()
        service.step()
        service.save(path)
        other = generate_trace(
            TraceGenConfig(seed=99, duration_s=20.0, rate_qps=12.0)
        )
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            FleetService.restore(path, trace=other)
        with pytest.raises(ConfigurationError, match="pass the driving trace"):
            FleetService.restore(path)

    def test_rejects_foreign_file(self, tmp_path) -> None:
        path = tmp_path / "junk.bin"
        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError, match="not a"):
            FleetService.restore(str(path))
        with pytest.raises(ConfigurationError, match="not a"):
            checkpoint_meta(str(path))

    def test_rejects_missing_or_corrupt_file(self, tmp_path) -> None:
        missing = str(tmp_path / "nope.bin")
        with pytest.raises(ConfigurationError, match="cannot read checkpoint"):
            FleetService.restore(missing)
        with pytest.raises(ConfigurationError, match="cannot read checkpoint"):
            checkpoint_meta(missing)
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(b"this is not a pickle")
        with pytest.raises(ConfigurationError, match="not a"):
            FleetService.restore(str(corrupt))
