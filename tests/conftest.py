"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec, cloud_tpu_host_spec, tpu_host_spec
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def spec() -> MachineSpec:
    """The default (TPU host) machine specification."""
    return tpu_host_spec()


@pytest.fixture
def cloud_spec() -> MachineSpec:
    """The Cloud TPU host specification (high remote sensitivity)."""
    return cloud_tpu_host_spec()


@pytest.fixture
def machine(sim: Simulator, spec: MachineSpec) -> Machine:
    """A live machine on the default spec."""
    return Machine(spec, sim)


@pytest.fixture
def node(sim: Simulator, spec: MachineSpec) -> Node:
    """A managed node with all host interfaces."""
    return Node.create(spec, sim)
