"""Tests for the Kelp measurement plumbing."""

from __future__ import annotations

import pytest

from repro.node import HI_SUBDOMAIN, LO_SUBDOMAIN, Node
from repro.core.measurements import measure_node
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


class TestMeasureNode:
    def test_idle_measurements(self, node: Node) -> None:
        node.sim.run_until(1.0)
        m = measure_node(node, reader="t")
        assert m.socket_bw == pytest.approx(0.0)
        assert m.socket_latency == pytest.approx(1.0)
        assert m.saturation == 0.0
        assert m.hipri_bw == 0.0
        assert m.elapsed == pytest.approx(1.0)

    def test_hipri_bw_isolates_subdomain(self, node: Node) -> None:
        node.machine.set_snc(True)
        BatchTask(
            "lo",
            node.machine,
            Placement(
                cores=frozenset(node.lo_subdomain_cores()),
                mem_weights={LO_SUBDOMAIN: 1.0},
            ),
            cpu_workload("stream", 4),
        ).start()
        measure_node(node, reader="t")
        node.sim.run_until(1.0)
        m = measure_node(node, reader="t")
        assert m.socket_bw > 0
        assert m.hipri_bw == pytest.approx(0.0)

    def test_hipri_bw_sees_hi_traffic(self, node: Node) -> None:
        node.machine.set_snc(True)
        BatchTask(
            "hi",
            node.machine,
            Placement(
                cores=frozenset(node.hi_subdomain_cores()[4:]),
                mem_weights={HI_SUBDOMAIN: 1.0},
            ),
            cpu_workload("stream", 2),
        ).start()
        measure_node(node, reader="t")
        node.sim.run_until(1.0)
        m = measure_node(node, reader="t")
        assert m.hipri_bw > 0
