"""Tests for the QoS-aware hardware-prefetch policy and solver mode."""

from __future__ import annotations

import pytest

from repro.node import LO_SUBDOMAIN, Node
from repro.core.policies import make_policy
from repro.hw.contention import Priority, TrafficSource
from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def saturating_source(machine: Machine) -> TrafficSource:
    return TrafficSource(
        source_id="agg",
        task_id="agg",
        demand_gbps=56.0,
        mem_weights={1: 1.0},
        cores=frozenset(machine.topology.cores_of_subdomain(1)),
        threads=8,
    )


class TestSolverMode:
    def test_saturation_suppressed_when_enabled(self, machine: Machine) -> None:
        machine.solver.snc_enabled = True
        src = saturating_source(machine)
        plain = machine.solver.solve([src])
        machine.solver.qos_aware_prefetch = True
        managed = machine.solver.solve([src])
        assert (
            managed.socket_pressures[0].saturation
            < plain.socket_pressures[0].saturation
        )

    def test_throttled_prefetchers_slow_the_aggressor(
        self, machine: Machine
    ) -> None:
        machine.solver.snc_enabled = True
        machine.solver.qos_aware_prefetch = True
        src = saturating_source(machine)
        result = machine.solver.solve([src])
        assert result.rates_for("agg").prefetch_speed < 1.0

    def test_high_priority_prefetchers_untouched(self, machine: Machine) -> None:
        machine.solver.snc_enabled = True
        machine.solver.qos_aware_prefetch = True
        hi = TrafficSource(
            source_id="ml", task_id="ml", demand_gbps=4.0,
            mem_weights={0: 1.0}, cores=frozenset({0, 1}), threads=2,
            priority=Priority.HIGH,
        )
        result = machine.solver.solve([saturating_source(machine), hi])
        assert result.rates_for("ml").prefetch_speed == pytest.approx(1.0)

    def test_no_effect_without_saturation(self, machine: Machine) -> None:
        machine.solver.qos_aware_prefetch = True
        calm = TrafficSource(
            source_id="calm", task_id="calm", demand_gbps=5.0,
            mem_weights={0: 1.0}, cores=frozenset({4}), threads=1,
        )
        result = machine.solver.solve([calm])
        assert result.rates_for("calm").prefetch_speed == pytest.approx(1.0)


class TestHwPrefetchPolicy:
    def test_prepare_enables_solver_mode(self, node: Node) -> None:
        policy = make_policy("HW-PF", node, 4)
        policy.prepare()
        assert node.machine.solver.qos_aware_prefetch
        assert node.machine.snc_enabled
        assert not policy.has_control_loop

    def test_protects_without_software_loop(self, node: Node) -> None:
        policy = make_policy("HW-PF", node, 2)
        policy.prepare()
        (plan,) = policy.plan_cpu(cpu_workload("dram", "H"))
        BatchTask(plan.task_id, node.machine, plan.placement, plan.profile).start()
        node.perf.read("t")
        node.sim.run_until(2.0)
        reading = node.perf.read("t")
        # Hardware throttling keeps the distress wire quiet.
        assert reading.socket_saturation[0] < 0.2
