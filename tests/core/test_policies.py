"""Tests for the policy zoo."""

from __future__ import annotations

import pytest

from repro.node import HI_SUBDOMAIN, LO_SUBDOMAIN, Node
from repro.core.policies import available_policies, make_policy
from repro.core.policies.base import ML_CLOS, ROLE_BACKFILL, ROLE_LO
from repro.errors import ConfigurationError
from repro.workloads.cpu.catalog import cpu_workload


class TestRegistry:
    def test_names(self) -> None:
        assert available_policies() == [
            "BL", "CT", "KP-SD", "KP", "HW-QOS", "MBA", "HW-PF",
        ]

    def test_unknown_rejected(self, node: Node) -> None:
        with pytest.raises(ConfigurationError):
            make_policy("NOPE", node, 4)

    def test_case_insensitive(self, node: Node) -> None:
        assert make_policy("kp-sd", node, 4).name == "KP-SD"


class TestBaseline:
    def test_no_snc_no_control(self, node: Node) -> None:
        policy = make_policy("BL", node, 4)
        policy.prepare()
        assert not node.machine.snc_enabled
        assert not policy.has_control_loop

    def test_placements_share_socket(self, node: Node) -> None:
        policy = make_policy("BL", node, 4)
        policy.prepare()
        ml = policy.ml_placement()
        plans = policy.plan_cpu(cpu_workload("stitch", 2))
        assert len(plans) == 1
        assert not ml.overlaps_cores(plans[0].placement)
        assert ml.clos == 0  # no CAT under BL


class TestCoreThrottle:
    def test_prepare_applies_cat(self, node: Node) -> None:
        policy = make_policy("CT", node, 4)
        policy.prepare()
        assert policy.ml_placement().clos == ML_CLOS
        assert node.resctrl.l3_mask(ML_CLOS) != 0

    def test_hot_watermarks(self, node: Node) -> None:
        ct = make_policy("CT", node, 4)
        kp = make_policy("KP", node, 4)
        assert ct.profile.socket_bw.hi > kp.profile.socket_bw.hi


class TestSubdomain:
    def test_prepare_enables_snc(self, node: Node) -> None:
        policy = make_policy("KP-SD", node, 4)
        policy.prepare()
        assert node.machine.snc_enabled

    def test_placements_in_separate_subdomains(self, node: Node) -> None:
        policy = make_policy("KP-SD", node, 4)
        policy.prepare()
        ml = policy.ml_placement()
        (plan,) = policy.plan_cpu(cpu_workload("stitch", 4))
        assert ml.mem_weights == {HI_SUBDOMAIN: 1.0}
        assert plan.placement.mem_weights == {LO_SUBDOMAIN: 1.0}
        assert not ml.overlaps_cores(plan.placement)

    def test_single_lo_task_no_backfill(self, node: Node) -> None:
        policy = make_policy("KP-SD", node, 4)
        policy.prepare()
        plans = policy.plan_cpu(cpu_workload("stitch", 6))
        assert [p.role for p in plans] == [ROLE_LO]


class TestKelp:
    def test_backfill_split_when_threads_exceed_lo_cores(self, node: Node) -> None:
        policy = make_policy("KP", node, 4)
        policy.prepare()
        plans = policy.plan_cpu(cpu_workload("stitch", 6))  # 24 threads
        roles = {p.role for p in plans}
        assert roles == {ROLE_LO, ROLE_BACKFILL}
        lo_plan = next(p for p in plans if p.role == ROLE_LO)
        backfill = next(p for p in plans if p.role == ROLE_BACKFILL)
        assert lo_plan.profile.phase.threads == len(node.lo_subdomain_cores())
        assert backfill.profile.phase.threads == 24 - lo_plan.profile.phase.threads
        assert backfill.placement.mem_weights == {HI_SUBDOMAIN: 1.0}

    def test_no_backfill_when_it_fits(self, node: Node) -> None:
        policy = make_policy("KP", node, 4)
        policy.prepare()
        plans = policy.plan_cpu(cpu_workload("cpuml", 4))
        assert [p.role for p in plans] == [ROLE_LO]

    def test_backfill_avoids_ml_cores(self, node: Node) -> None:
        policy = make_policy("KP", node, 4)
        policy.prepare()
        ml = policy.ml_placement()
        plans = policy.plan_cpu(cpu_workload("stitch", 6))
        backfill = next(p for p in plans if p.role == ROLE_BACKFILL)
        assert not ml.overlaps_cores(backfill.placement)

    def test_register_fills_node_roles(self, node: Node) -> None:
        policy = make_policy("KP", node, 4)
        policy.register({ROLE_LO: ["a"], ROLE_BACKFILL: ["b"]})
        assert node.lo_tasks == ["a"]
        assert node.backfill_tasks == ["b"]


class TestHwQos:
    def test_prepare_enables_priority_mode(self, node: Node) -> None:
        policy = make_policy("HW-QOS", node, 4)
        policy.prepare()
        assert node.machine.solver.priority_mode
        assert not policy.has_control_loop
        assert policy.parameter_history() == []
