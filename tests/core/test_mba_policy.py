"""Tests for the MBA policy (Section VI-D extension)."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.core.policies import make_policy
from repro.core.policies.mba import LO_CLOS, MBA_MAX, MBA_MIN, MbaPolicy
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def setup_mix(node: Node) -> tuple[MbaPolicy, BatchTask]:
    policy = make_policy("MBA", node, ml_cores=2)
    assert isinstance(policy, MbaPolicy)
    policy.prepare()
    (plan,) = policy.plan_cpu(cpu_workload("stitch", 5))
    task = BatchTask(plan.task_id, node.machine, plan.placement, plan.profile)
    task.start()
    policy.register({plan.role: [task]})
    return policy, task


class TestMbaPolicy:
    def test_prepare_creates_lo_clos(self, node: Node) -> None:
        policy = make_policy("MBA", node, ml_cores=2)
        policy.prepare()
        assert LO_CLOS in node.resctrl.groups
        assert policy.mb_percent == MBA_MAX

    def test_cpu_tasks_assigned_to_lo_clos(self, node: Node) -> None:
        policy, task = setup_mix(node)
        assert task.placement.clos == LO_CLOS

    def test_throttles_under_pressure(self, node: Node) -> None:
        policy, task = setup_mix(node)
        for _ in range(6):
            node.sim.run_until(node.sim.now + 1.0)
            policy.tick()
        assert MBA_MIN <= policy.mb_percent < MBA_MAX
        assert node.machine.solver.mba_caps[LO_CLOS] == pytest.approx(
            policy.mb_percent / 100.0
        )

    def test_cap_slows_the_capped_task(self, node: Node) -> None:
        policy, task = setup_mix(node)
        node.sim.run_until(1.0)
        before = task.speed
        node.resctrl.set_mb_percent(LO_CLOS, 30)
        after = task.speed
        assert after < before

    def test_boosts_back_when_idle(self, node: Node) -> None:
        policy = make_policy("MBA", node, ml_cores=2)
        assert isinstance(policy, MbaPolicy)
        policy.prepare()
        node.resctrl.set_mb_percent(LO_CLOS, 50)
        policy._mb_percent = 50
        for _ in range(8):
            node.sim.run_until(node.sim.now + 1.0)
            policy.tick()
        assert policy.mb_percent == MBA_MAX

    def test_history_records_percent(self, node: Node) -> None:
        policy, _ = setup_mix(node)
        node.sim.run_until(1.0)
        policy.tick()
        assert policy.parameter_history()[-1].lo_prefetchers == policy.mb_percent
