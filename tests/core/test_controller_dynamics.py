"""Controller dynamics: boost paths and convergence behaviour."""

from __future__ import annotations

import pytest

from repro.node import LO_SUBDOMAIN, Node
from repro.core.policies import make_policy
from repro.hw.placement import Placement
from repro.sim.engine import PRIORITY_CONTROL
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def drive(node: Node, policy, seconds: float) -> None:
    node.sim.every(policy.interval, policy.tick, priority=PRIORITY_CONTROL)
    node.sim.run_until(node.sim.now + seconds)


class TestCoreThrottleDynamics:
    def test_boost_recovers_cores_after_load_drops(self, node: Node) -> None:
        policy = make_policy("CT", node, ml_cores=2)
        policy.prepare()
        (plan,) = policy.plan_cpu(cpu_workload("stitch", 6))
        task = BatchTask(plan.task_id, node.machine, plan.placement, plan.profile)
        task.start()
        policy.register({plan.role: [task]})
        drive(node, policy, 12.0)
        throttled = len(task.placement.cores)
        assert throttled < 14
        # Load vanishes; the controller must give cores back.
        task.stop()
        node.lo_tasks.clear()
        light = BatchTask(
            "light",
            node.machine,
            task.placement.with_cores(frozenset(plan.placement.cores)),
            cpu_workload("cpuml", 2),
        )
        # Recreate at the throttled mask so boosting is observable.
        light.set_placement(light.placement.with_cores(
            frozenset(sorted(plan.placement.cores)[:throttled])
        ))
        light.start()
        node.lo_tasks.append(light)
        node.sim.run_until(node.sim.now + 15.0)
        assert len(light.placement.cores) > throttled

    def test_ct_converges_not_oscillates(self, node: Node) -> None:
        policy = make_policy("CT", node, ml_cores=2)
        policy.prepare()
        (plan,) = policy.plan_cpu(cpu_workload("stitch", 4))
        task = BatchTask(plan.task_id, node.machine, plan.placement, plan.profile)
        task.start()
        policy.register({plan.role: [task]})
        drive(node, policy, 25.0)
        tail = [s.lo_cores for s in policy.parameter_history()[-8:]]
        assert max(tail) - min(tail) <= 1  # settled within one core


class TestKelpDynamics:
    def test_backfill_boost_after_lo_load_drops(self, node: Node) -> None:
        policy = make_policy("KP", node, ml_cores=4)
        policy.prepare()
        plans = policy.plan_cpu(cpu_workload("stitch", 6))
        tasks = {}
        roles: dict[str, list] = {}
        for plan in plans:
            task = BatchTask(plan.task_id, node.machine, plan.placement,
                             plan.profile)
            task.start()
            tasks[plan.role] = task
            roles.setdefault(plan.role, []).append(task)
        policy.register(roles)
        drive(node, policy, 15.0)
        during = policy.parameter_history()[-1].backfill_cores
        # Kill the lo-subdomain part: hi-subdomain pressure eases, the
        # backfilled task may grow back toward its maximum.
        tasks["lo"].stop()
        node.lo_tasks.clear()
        node.sim.run_until(node.sim.now + 15.0)
        after = policy.parameter_history()[-1].backfill_cores
        assert after >= during

    def test_lo_placement_binds_memory_to_lo_subdomain(self, node: Node) -> None:
        policy = make_policy("KP", node, ml_cores=4)
        policy.prepare()
        plans = policy.plan_cpu(cpu_workload("cpuml", 16))
        lo_plan = next(p for p in plans if p.role == "lo")
        assert lo_plan.placement.mem_weights == {LO_SUBDOMAIN: 1.0}
