"""Tests for the Kelp runtime (Algorithm 1)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.node import LO_SUBDOMAIN, Node
from repro.core.actions import Action
from repro.core.kelp import KelpRuntime
from repro.core.watermarks import Watermark, default_profile
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def make_runtime(node: Node, **kwargs) -> KelpRuntime:
    profile = default_profile(node.machine.spec, ml_cores=4)
    return KelpRuntime(node=node, profile=profile, **kwargs)


def start_lo_aggressor(node: Node, level: str = "H") -> BatchTask:
    node.machine.set_snc(True)
    task = BatchTask(
        "dram",
        node.machine,
        Placement(
            cores=frozenset(node.lo_subdomain_cores()),
            mem_weights={LO_SUBDOMAIN: 1.0},
        ),
        cpu_workload("dram", level),
    )
    task.start()
    node.lo_tasks.append(task)
    return task


class TestKelpDecisions:
    def test_idle_machine_boosts(self, node: Node) -> None:
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        record = runtime.tick()
        assert record.action_lo is Action.BOOST

    def test_saturation_triggers_lo_throttle(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        record = runtime.tick()
        assert record.action_lo is Action.THROTTLE
        assert record.lo_prefetchers < len(node.lo_subdomain_cores())

    def test_prefetchers_halve_then_recover(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        for step in range(12):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        # The controller must have converged out of full saturation...
        final = runtime.history[-1]
        assert final.measurements.saturation <= runtime.profile.saturation.hi + 0.1
        # ...by disabling some prefetchers.
        assert final.lo_prefetchers < len(node.lo_subdomain_cores())

    def test_enforcement_writes_msrs(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        runtime.tick()
        enabled = sum(
            node.machine.prefetchers.is_enabled(c)
            for c in node.lo_subdomain_cores()
        )
        assert enabled == runtime.lo_plan.prefetcher_num

    def test_manage_flags_freeze_knobs(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(
            node, manage_lo_cores=False, manage_prefetchers=False,
            manage_backfill=False,
        )
        cores_before = runtime.lo_plan.core_num
        pf_before = runtime.lo_plan.prefetcher_num
        for _ in range(6):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert runtime.lo_plan.core_num == cores_before
        assert runtime.lo_plan.prefetcher_num == pf_before


class TestBackfillControl:
    def test_backfill_throttled_on_hipri_bw(self, node: Node) -> None:
        node.machine.set_snc(True)
        backfill = BatchTask(
            "backfill",
            node.machine,
            Placement(
                cores=frozenset(node.hi_subdomain_cores()[4:]),
                mem_weights={0: 1.0},
            ),
            cpu_workload("stitch", 3).scaled_to_threads(8),
        )
        backfill.start()
        node.backfill_tasks.append(backfill)
        runtime = make_runtime(node)
        for _ in range(8):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        # Stitch's 8 backfilled threads exceed the hi-subdomain watermark:
        # the controller must have removed cores.
        assert runtime.hi_plan.core_num < runtime.profile.max_backfill_cores
        if runtime.hi_plan.core_num > 0:
            assert len(backfill.placement.cores) == runtime.hi_plan.core_num
        else:
            assert backfill.parked

    def test_backfill_throttled_to_zero_parks_tasks(self, node: Node) -> None:
        """Regression: a plan at zero cores must evict backfill entirely.

        The old enforcement clamped the mask to ``max(1, core_num)`` cores,
        so a fully-throttled plan still left one backfill core stealing
        hi-subdomain bandwidth. Zero cores now parks the tasks (empty
        effective cpuset): no traffic, no progress, until the next BOOST.
        """
        node.machine.set_snc(True)
        backfill = BatchTask(
            "backfill",
            node.machine,
            Placement(
                cores=frozenset(node.hi_subdomain_cores()[4:]),
                mem_weights={0: 1.0},
            ),
            cpu_workload("stitch", 3).scaled_to_threads(8),
        )
        backfill.start()
        node.backfill_tasks.append(backfill)
        # A profile whose hi-subdomain watermark is always exceeded and
        # whose floor allows full eviction: every tick throttles.
        base = default_profile(node.machine.spec, ml_cores=4)
        profile = replace(
            base,
            hipri_bw=Watermark(lo=0.0, hi=1e-6),
            min_backfill_cores=0,
        )
        runtime = KelpRuntime(node=node, profile=profile)
        for _ in range(profile.max_backfill_cores + 1):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert runtime.hi_plan.core_num == 0
        assert backfill.parked
        assert backfill.traffic_sources() == []
        # A parked task makes no forward progress.
        backfill.sync(node.sim.now)
        done_before = backfill.meter.units
        node.sim.run_until(node.sim.now + 5.0)
        backfill.sync(node.sim.now)
        assert backfill.speed == 0.0
        assert backfill.meter.units == pytest.approx(done_before)

    def test_boost_after_park_restores_backfill(self, node: Node) -> None:
        """A parked backfill task is revived once the controller boosts."""
        node.machine.set_snc(True)
        backfill = BatchTask(
            "backfill",
            node.machine,
            Placement(
                cores=frozenset(node.hi_subdomain_cores()[4:]),
                mem_weights={0: 1.0},
            ),
            cpu_workload("stitch", 1),
        )
        backfill.start()
        node.backfill_tasks.append(backfill)
        base = default_profile(node.machine.spec, ml_cores=4)
        throttling = replace(
            base,
            hipri_bw=Watermark(lo=0.0, hi=1e-6),
            min_backfill_cores=0,
        )
        runtime = KelpRuntime(node=node, profile=throttling)
        for _ in range(throttling.max_backfill_cores + 1):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert backfill.parked
        # Flip to a permissive profile: the idle hi-subdomain now boosts.
        runtime.profile = replace(
            base, hipri_bw=Watermark(lo=1e9, hi=2e9), min_backfill_cores=0
        )
        node.sim.run_until(node.sim.now + 1.0)
        runtime.tick()
        assert runtime.hi_plan.core_num > 0
        assert not backfill.parked
        assert len(backfill.placement.cores) == runtime.hi_plan.core_num

    def test_history_records_every_tick(self, node: Node) -> None:
        runtime = make_runtime(node)
        for _ in range(3):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert len(runtime.history) == 3
        assert runtime.history[0].time < runtime.history[-1].time
