"""Tests for the Kelp runtime (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.cluster.node import LO_SUBDOMAIN, Node
from repro.core.actions import Action
from repro.core.kelp import KelpRuntime
from repro.core.watermarks import default_profile
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def make_runtime(node: Node, **kwargs) -> KelpRuntime:
    profile = default_profile(node.machine.spec, ml_cores=4)
    return KelpRuntime(node=node, profile=profile, **kwargs)


def start_lo_aggressor(node: Node, level: str = "H") -> BatchTask:
    node.machine.set_snc(True)
    task = BatchTask(
        "dram",
        node.machine,
        Placement(
            cores=frozenset(node.lo_subdomain_cores()),
            mem_weights={LO_SUBDOMAIN: 1.0},
        ),
        cpu_workload("dram", level),
    )
    task.start()
    node.lo_tasks.append(task)
    return task


class TestKelpDecisions:
    def test_idle_machine_boosts(self, node: Node) -> None:
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        record = runtime.tick()
        assert record.action_lo is Action.BOOST

    def test_saturation_triggers_lo_throttle(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        record = runtime.tick()
        assert record.action_lo is Action.THROTTLE
        assert record.lo_prefetchers < len(node.lo_subdomain_cores())

    def test_prefetchers_halve_then_recover(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        for step in range(12):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        # The controller must have converged out of full saturation...
        final = runtime.history[-1]
        assert final.measurements.saturation <= runtime.profile.saturation.hi + 0.1
        # ...by disabling some prefetchers.
        assert final.lo_prefetchers < len(node.lo_subdomain_cores())

    def test_enforcement_writes_msrs(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(node)
        node.sim.run_until(1.0)
        runtime.tick()
        enabled = sum(
            node.machine.prefetchers.is_enabled(c)
            for c in node.lo_subdomain_cores()
        )
        assert enabled == runtime.lo_plan.prefetcher_num

    def test_manage_flags_freeze_knobs(self, node: Node) -> None:
        start_lo_aggressor(node, "H")
        runtime = make_runtime(
            node, manage_lo_cores=False, manage_prefetchers=False,
            manage_backfill=False,
        )
        cores_before = runtime.lo_plan.core_num
        pf_before = runtime.lo_plan.prefetcher_num
        for _ in range(6):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert runtime.lo_plan.core_num == cores_before
        assert runtime.lo_plan.prefetcher_num == pf_before


class TestBackfillControl:
    def test_backfill_throttled_on_hipri_bw(self, node: Node) -> None:
        node.machine.set_snc(True)
        backfill = BatchTask(
            "backfill",
            node.machine,
            Placement(
                cores=frozenset(node.hi_subdomain_cores()[4:]),
                mem_weights={0: 1.0},
            ),
            cpu_workload("stitch", 3).scaled_to_threads(8),
        )
        backfill.start()
        node.backfill_tasks.append(backfill)
        runtime = make_runtime(node)
        for _ in range(8):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        # Stitch's 8 backfilled threads exceed the hi-subdomain watermark:
        # the controller must have removed cores.
        assert runtime.hi_plan.core_num < runtime.profile.max_backfill_cores
        assert len(backfill.placement.cores) == max(
            1, runtime.hi_plan.core_num
        )

    def test_history_records_every_tick(self, node: Node) -> None:
        runtime = make_runtime(node)
        for _ in range(3):
            node.sim.run_until(node.sim.now + 1.0)
            runtime.tick()
        assert len(runtime.history) == 3
        assert runtime.history[0].time < runtime.history[-1].time
