"""Tests for QoS watermark profiles."""

from __future__ import annotations

import pytest

from repro.core.watermarks import QosProfile, Watermark, default_profile
from repro.errors import ConfigurationError
from repro.hw.spec import MachineSpec


class TestWatermark:
    def test_above_below(self) -> None:
        mark = Watermark(lo=1.0, hi=2.0)
        assert mark.above(2.5)
        assert not mark.above(2.0)
        assert mark.below(0.5)
        assert not mark.below(1.0)

    def test_dead_band(self) -> None:
        mark = Watermark(lo=1.0, hi=2.0)
        assert not mark.above(1.5) and not mark.below(1.5)

    def test_inverted_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            Watermark(lo=2.0, hi=1.0)


class TestQosProfile:
    def test_default_profile_scales_with_platform(self) -> None:
        profile = default_profile(MachineSpec())
        socket_peak = MachineSpec().sockets[0].peak_bw_gbps
        assert profile.socket_bw.hi == pytest.approx(0.80 * socket_peak)
        assert profile.socket_bw.lo < profile.socket_bw.hi

    def test_backfill_bounds_respect_ml_cores(self) -> None:
        spec = MachineSpec()
        wide = default_profile(spec, ml_cores=2)
        narrow = default_profile(spec, ml_cores=6)
        assert wide.max_backfill_cores > narrow.max_backfill_cores

    def test_backfill_always_at_least_one(self) -> None:
        profile = default_profile(MachineSpec(), ml_cores=8)
        assert profile.max_backfill_cores >= 1

    def test_invalid_bounds_rejected(self) -> None:
        profile = default_profile(MachineSpec())
        with pytest.raises(ConfigurationError):
            QosProfile(
                socket_bw=profile.socket_bw,
                socket_latency=profile.socket_latency,
                saturation=profile.saturation,
                hipri_bw=profile.hipri_bw,
                min_backfill_cores=3,
                max_backfill_cores=2,
            )
        with pytest.raises(ConfigurationError):
            QosProfile(
                socket_bw=profile.socket_bw,
                socket_latency=profile.socket_latency,
                saturation=profile.saturation,
                hipri_bw=profile.hipri_bw,
                min_lo_cores=0,
            )
