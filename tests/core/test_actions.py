"""Tests for Algorithm 2: the resource-configuration procedures."""

from __future__ import annotations

import pytest

from repro.core.actions import (
    Action,
    HiPriorityPlan,
    LoPriorityPlan,
    config_hi_priority,
    config_lo_priority,
)
from repro.errors import ConfigurationError


def hi(core_num: int = 3, lo_bound: int = 1, hi_bound: int = 4) -> HiPriorityPlan:
    return HiPriorityPlan(core_num=core_num, min_core_num=lo_bound, max_core_num=hi_bound)


def lo(core_num: int = 8, prefetchers: int = 8) -> LoPriorityPlan:
    return LoPriorityPlan(
        core_num=core_num, prefetcher_num=prefetchers,
        min_core_num=1, max_core_num=8,
    )


class TestConfigHiPriority:
    def test_throttle_removes_one_core(self) -> None:
        assert config_hi_priority(hi(3), Action.THROTTLE).core_num == 2

    def test_throttle_respects_min(self) -> None:
        assert config_hi_priority(hi(1), Action.THROTTLE).core_num == 1

    def test_boost_adds_one_core(self) -> None:
        assert config_hi_priority(hi(3), Action.BOOST).core_num == 4

    def test_boost_respects_max(self) -> None:
        assert config_hi_priority(hi(4), Action.BOOST).core_num == 4

    def test_nop(self) -> None:
        assert config_hi_priority(hi(3), Action.NOP) == hi(3)


class TestConfigLoPriority:
    def test_throttle_halves_prefetchers_first(self) -> None:
        plan = config_lo_priority(lo(8, 8), Action.THROTTLE)
        assert plan.prefetcher_num == 4
        assert plan.core_num == 8

    def test_throttle_halving_sequence(self) -> None:
        plan = lo(8, 8)
        seen = []
        for _ in range(4):
            plan = config_lo_priority(plan, Action.THROTTLE)
            seen.append(plan.prefetcher_num)
        assert seen == [4, 2, 1, 0]

    def test_throttle_cores_after_prefetchers_gone(self) -> None:
        plan = config_lo_priority(lo(8, 0), Action.THROTTLE)
        assert plan.core_num == 7

    def test_throttle_respects_min_cores(self) -> None:
        plan = LoPriorityPlan(core_num=1, prefetcher_num=0, min_core_num=1, max_core_num=8)
        assert config_lo_priority(plan, Action.THROTTLE) == plan

    def test_boost_reenables_prefetchers_first(self) -> None:
        plan = config_lo_priority(lo(8, 2), Action.BOOST)
        assert plan.prefetcher_num == 3
        assert plan.core_num == 8

    def test_boost_prefetchers_capped_at_core_num(self) -> None:
        plan = LoPriorityPlan(core_num=4, prefetcher_num=4, min_core_num=1, max_core_num=8)
        boosted = config_lo_priority(plan, Action.BOOST)
        assert boosted.core_num == 5
        assert boosted.prefetcher_num == 4

    def test_boost_respects_max_cores(self) -> None:
        plan = config_lo_priority(lo(8, 8), Action.BOOST)
        assert plan == lo(8, 8)

    def test_nop(self) -> None:
        assert config_lo_priority(lo(5, 3), Action.NOP) == lo(5, 3)


class TestPlanValidation:
    def test_hi_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            HiPriorityPlan(core_num=5, min_core_num=1, max_core_num=4)

    def test_lo_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            LoPriorityPlan(core_num=0, prefetcher_num=0, min_core_num=1, max_core_num=8)
        with pytest.raises(ConfigurationError):
            LoPriorityPlan(core_num=4, prefetcher_num=9, min_core_num=1, max_core_num=8)
