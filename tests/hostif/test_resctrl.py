"""Tests for the resctrl (CAT + MBA) interface."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.errors import HostInterfaceError
from repro.hw.llc import full_mask


class TestCat:
    def test_create_and_set_mask(self, node: Node) -> None:
        node.resctrl.create_group(1)
        node.resctrl.set_l3_mask(1, 0b1111)
        assert node.resctrl.l3_mask(1) == 0b1111

    def test_mask_applies_to_all_sockets_by_default(self, node: Node) -> None:
        node.resctrl.create_group(1)
        node.resctrl.set_l3_mask(1, 0b11)
        assert node.machine.llcs[0].clos_mask(1) == 0b11
        assert node.machine.llcs[1].clos_mask(1) == 0b11

    def test_unknown_group_rejected(self, node: Node) -> None:
        with pytest.raises(HostInterfaceError):
            node.resctrl.set_l3_mask(9, 0b1)

    def test_dedicate_ways_splits_default_group(self, node: Node) -> None:
        spec = node.machine.spec.sockets[0].llc
        node.resctrl.create_group(1)
        node.resctrl.dedicate_ways(1, 6)
        assert node.resctrl.l3_mask(1) == (1 << 6) - 1
        assert node.resctrl.l3_mask(0) == full_mask(spec) & ~((1 << 6) - 1)

    def test_dedicate_all_ways_rejected(self, node: Node) -> None:
        ways = node.machine.spec.sockets[0].llc.ways
        node.resctrl.create_group(1)
        with pytest.raises(HostInterfaceError):
            node.resctrl.dedicate_ways(1, ways)

    def test_reset_restores_defaults(self, node: Node) -> None:
        node.resctrl.create_group(1)
        node.resctrl.dedicate_ways(1, 4)
        node.resctrl.reset()
        spec = node.machine.spec.sockets[0].llc
        assert node.machine.llcs[0].clos_mask(0) == full_mask(spec)
        assert node.resctrl.groups == {0}


class TestMba:
    def test_set_mb_percent(self, node: Node) -> None:
        node.resctrl.create_group(1)
        node.resctrl.set_mb_percent(1, 50)
        assert node.machine.solver.mba_caps[1] == pytest.approx(0.5)

    def test_percent_range_enforced(self, node: Node) -> None:
        node.resctrl.create_group(1)
        with pytest.raises(HostInterfaceError):
            node.resctrl.set_mb_percent(1, 5)
        with pytest.raises(HostInterfaceError):
            node.resctrl.set_mb_percent(1, 101)

    def test_reset_clears_caps(self, node: Node) -> None:
        node.resctrl.create_group(1)
        node.resctrl.set_mb_percent(1, 50)
        node.resctrl.reset()
        assert node.machine.solver.mba_caps == {}
