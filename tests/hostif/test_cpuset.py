"""Tests for the cpuset controller."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.errors import HostInterfaceError
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.stream import stream_profile


@pytest.fixture
def task(node: Node) -> BatchTask:
    placement = Placement(
        cores=frozenset(range(4, 12)), mem_weights={0: 0.5, 1: 0.5}
    )
    task = BatchTask("stream", node.machine, placement, stream_profile(8))
    task.start()
    return task


class TestCpuset:
    def test_set_cpus(self, node: Node, task: BatchTask) -> None:
        node.cpuset.set_cpus(task, {4, 5})
        assert task.placement.cores == frozenset({4, 5})

    def test_empty_mask_parks(self, node: Node, task: BatchTask) -> None:
        node.cpuset.set_cpus(task, set())
        assert task.parked
        assert task.traffic_sources() == []
        # A non-empty mask unparks again.
        node.cpuset.set_cpus(task, {4, 5})
        assert not task.parked
        assert task.placement.cores == frozenset({4, 5})

    def test_parked_task_makes_no_progress(
        self, node: Node, task: BatchTask
    ) -> None:
        node.cpuset.park(task)
        node.sim.run_until(5.0)
        assert task.throughput(5.0) == 0.0
        assert task.speed == 0.0

    def test_out_of_range_rejected(self, node: Node, task: BatchTask) -> None:
        with pytest.raises(HostInterfaceError):
            node.cpuset.set_cpus(task, {999})

    def test_cross_socket_mask_rejected(self, node: Node, task: BatchTask) -> None:
        # SNC off: the OS-visible NUMA domains are the sockets. A mask
        # spanning both sockets would silently migrate part of the cgroup
        # off the task's memory, so the controller must refuse it.
        first_remote = node.machine.topology.first_core(1)
        with pytest.raises(HostInterfaceError, match="straddles"):
            node.cpuset.set_cpus(task, {4, first_remote})
        # The rejected write must not have touched the task.
        assert task.placement.cores == frozenset(range(4, 12))

    def test_cross_subdomain_mask_rejected_under_snc(
        self, node: Node, task: BatchTask
    ) -> None:
        # SNC on: the domains shrink to the channel-group subdomains, so a
        # socket-local mask spanning both halves is now invalid too.
        node.machine.set_snc(True)
        boundary = len(node.machine.topology.cores_of_subdomain(0))
        mask = {boundary - 1, boundary}
        with pytest.raises(HostInterfaceError, match="straddles"):
            node.cpuset.set_cpus(task, mask)
        # The same mask is fine once SNC is off again (one socket).
        node.machine.set_snc(False)
        node.cpuset.set_cpus(task, mask)
        assert task.placement.cores == frozenset(mask)

    def test_shrink_removes_highest_first(self, node: Node, task: BatchTask) -> None:
        removed = node.cpuset.shrink(task, 2)
        assert removed == 2
        assert task.placement.cores == frozenset(range(4, 10))

    def test_shrink_never_below_one(self, node: Node, task: BatchTask) -> None:
        node.cpuset.set_cpus(task, {4})
        assert node.cpuset.shrink(task, 3) == 0
        assert task.placement.cores == frozenset({4})

    def test_grow_from_candidates(self, node: Node, task: BatchTask) -> None:
        node.cpuset.set_cpus(task, {4})
        added = node.cpuset.grow(task, [4, 5, 6], 2)
        assert added == 2
        assert task.placement.cores == frozenset({4, 5, 6})

    def test_grow_exhausted_candidates(self, node: Node, task: BatchTask) -> None:
        node.cpuset.set_cpus(task, {4, 5})
        assert node.cpuset.grow(task, [4, 5], 2) == 0

    def test_shrinking_reduces_throughput_capacity(
        self, node: Node, task: BatchTask
    ) -> None:
        node.sim.run_until(1.0)
        rate_full = task.meter._rate
        node.cpuset.set_cpus(task, {4, 5})  # 8 threads on 2 cores
        rate_small = task.meter._rate
        assert rate_small < rate_full
