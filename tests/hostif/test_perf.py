"""Tests for the simulated perf-counter interface."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.cpu.stream import stream_profile


def start_stream(node: Node, threads: int = 8) -> BatchTask:
    task = BatchTask(
        "stream",
        node.machine,
        Placement(cores=frozenset(range(4, 12)), mem_weights={0: 0.5, 1: 0.5}),
        stream_profile(threads),
    )
    task.start()
    return task


class TestPerfCounters:
    def test_idle_machine_reads_zero(self, node: Node) -> None:
        node.sim.run_until(1.0)
        reading = node.perf.read()
        assert reading.socket_bandwidth_gbps[0] == pytest.approx(0.0)
        assert reading.socket_latency_factor[0] == pytest.approx(1.0)
        assert reading.socket_saturation[0] == 0.0

    def test_bandwidth_reflects_running_task(self, node: Node) -> None:
        start_stream(node)
        node.perf.read("r")  # reset window
        node.sim.run_until(2.0)
        reading = node.perf.read("r")
        assert reading.socket_bandwidth_gbps[0] > 30.0
        assert reading.socket_bandwidth_gbps[1] == pytest.approx(0.0)

    def test_windows_are_per_reader(self, node: Node) -> None:
        start_stream(node)
        node.sim.run_until(1.0)
        first = node.perf.read("a")
        node.sim.run_until(2.0)
        second_a = node.perf.read("a")
        full_b = node.perf.read("b")
        assert second_a.elapsed == pytest.approx(1.0)
        assert full_b.elapsed == pytest.approx(2.0)
        assert first.elapsed == pytest.approx(1.0)

    def test_saturation_reported_under_heavy_load(self, node: Node) -> None:
        task = BatchTask(
            "dram",
            node.machine,
            Placement(
                cores=frozenset(node.lo_subdomain_cores()), mem_weights={1: 1.0}
            ),
            cpu_workload("dram", "H"),
        )
        task.start()
        node.perf.read("r")
        node.sim.run_until(1.0)
        reading = node.perf.read("r")
        assert reading.socket_saturation[0] > 0.5
        assert reading.subdomain_bandwidth_gbps[1] > 0.0

    def test_reset_restarts_window(self, node: Node) -> None:
        start_stream(node)
        node.sim.run_until(1.0)
        node.perf.read("r")
        node.perf.reset("r")
        node.sim.run_until(2.0)
        reading = node.perf.read("r")
        assert reading.elapsed == pytest.approx(2.0)
