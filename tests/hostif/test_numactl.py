"""Tests for the numactl memory-policy interface."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.errors import HostInterfaceError
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.stream import stream_profile


@pytest.fixture
def task(node: Node) -> BatchTask:
    placement = Placement(cores=frozenset({0, 1}), mem_weights={0: 1.0})
    return BatchTask("t", node.machine, placement, stream_profile(2))


class TestVisibleNodes:
    def test_snc_off_nodes_are_sockets(self, node: Node) -> None:
        assert node.numa.visible_nodes() == [0, 1]

    def test_snc_on_nodes_are_subdomains(self, node: Node) -> None:
        node.machine.set_snc(True)
        assert node.numa.visible_nodes() == [0, 1, 2, 3]


class TestMembind:
    def test_bind_to_socket_interleaves_subdomains(
        self, node: Node, task: BatchTask
    ) -> None:
        node.numa.membind(task, [0])
        assert task.placement.mem_weights == {0: 0.5, 1: 0.5}

    def test_bind_to_subdomain_when_snc_on(self, node: Node, task: BatchTask) -> None:
        node.machine.set_snc(True)
        node.numa.membind(task, [1])
        assert task.placement.mem_weights == {1: 1.0}

    def test_bind_across_nodes(self, node: Node, task: BatchTask) -> None:
        node.numa.membind(task, [0, 1])
        assert task.placement.mem_weights == {
            0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25
        }

    def test_weighted_bind(self, node: Node, task: BatchTask) -> None:
        node.numa.membind_weighted(task, {0: 0.75, 1: 0.25})
        assert task.placement.mem_weights[0] == pytest.approx(0.375)
        assert task.placement.mem_weights[2] == pytest.approx(0.125)

    def test_out_of_range_node(self, node: Node, task: BatchTask) -> None:
        with pytest.raises(HostInterfaceError):
            node.numa.membind(task, [2])  # SNC off: only sockets 0/1

    def test_empty_bind_rejected(self, node: Node, task: BatchTask) -> None:
        with pytest.raises(HostInterfaceError):
            node.numa.membind(task, [])
