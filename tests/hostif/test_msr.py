"""Tests for the MSR prefetcher-control interface."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.errors import HostInterfaceError
from repro.hostif.msr import (
    MSR_MISC_FEATURE_CONTROL,
    MsrInterface,
    PREFETCH_DISABLE_ALL,
    PREFETCH_ENABLE_ALL,
)


@pytest.fixture
def msr(node: Node) -> MsrInterface:
    return node.msr


class TestMsr:
    def test_default_enabled(self, msr: MsrInterface) -> None:
        assert msr.rdmsr(0, MSR_MISC_FEATURE_CONTROL) == PREFETCH_ENABLE_ALL
        assert msr.prefetchers_enabled(0)

    def test_write_disables(self, node: Node, msr: MsrInterface) -> None:
        msr.wrmsr(3, MSR_MISC_FEATURE_CONTROL, PREFETCH_DISABLE_ALL)
        assert not msr.prefetchers_enabled(3)
        assert not node.machine.prefetchers.is_enabled(3)

    def test_partial_disable_bits_count_as_off(self, msr: MsrInterface) -> None:
        msr.wrmsr(0, MSR_MISC_FEATURE_CONTROL, 0b0001)
        assert not msr.prefetchers_enabled(0)

    def test_set_prefetchers_roundtrip(self, msr: MsrInterface) -> None:
        msr.set_prefetchers(2, False)
        msr.set_prefetchers(2, True)
        assert msr.prefetchers_enabled(2)

    def test_enable_all(self, node: Node, msr: MsrInterface) -> None:
        for core in range(4):
            msr.set_prefetchers(core, False)
        msr.enable_all()
        assert all(node.machine.prefetchers.is_enabled(c) for c in range(4))

    def test_unmodeled_msr_rejected(self, msr: MsrInterface) -> None:
        with pytest.raises(HostInterfaceError):
            msr.rdmsr(0, 0x10)

    def test_out_of_range_core(self, msr: MsrInterface) -> None:
        with pytest.raises(HostInterfaceError):
            msr.wrmsr(99, MSR_MISC_FEATURE_CONTROL, 0)

    def test_out_of_range_value(self, msr: MsrInterface) -> None:
        with pytest.raises(HostInterfaceError):
            msr.wrmsr(0, MSR_MISC_FEATURE_CONTROL, 0b10000)

    def test_write_triggers_resolve(self, node: Node, msr: MsrInterface) -> None:
        # Attaching nothing: just verify notify_change path doesn't error and
        # state stays consistent.
        msr.set_prefetchers(0, False)
        assert node.machine.state is not None
