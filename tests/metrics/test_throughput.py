"""Tests for the throughput meter."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.metrics.throughput import ThroughputMeter


class TestThroughputMeter:
    def test_integrates_rate(self) -> None:
        meter = ThroughputMeter()
        meter.set_rate(2.0, now=0.0)
        meter.sync(5.0)
        assert meter.units == pytest.approx(10.0)

    def test_throughput_excludes_warmup(self) -> None:
        meter = ThroughputMeter(warmup_until=5.0)
        meter.set_rate(2.0, now=0.0)
        assert meter.throughput(10.0) == pytest.approx(2.0)

    def test_warmup_boundary_split(self) -> None:
        meter = ThroughputMeter(warmup_until=5.0)
        meter.set_rate(2.0, now=0.0)
        meter.sync(8.0)  # crosses the boundary in one span
        assert meter.throughput(10.0) == pytest.approx(2.0)

    def test_rate_changes(self) -> None:
        meter = ThroughputMeter()
        meter.set_rate(1.0, now=0.0)
        meter.set_rate(3.0, now=2.0)
        meter.sync(4.0)
        assert meter.units == pytest.approx(8.0)

    def test_add_units_discrete(self) -> None:
        meter = ThroughputMeter(warmup_until=2.0)
        meter.sync(2.0)
        meter.add_units(5.0)
        assert meter.throughput(4.0) == pytest.approx(2.5)

    def test_zero_window(self) -> None:
        meter = ThroughputMeter(warmup_until=5.0)
        assert meter.throughput(5.0) == 0.0

    def test_sync_backwards_raises(self) -> None:
        meter = ThroughputMeter()
        meter.sync(5.0)
        with pytest.raises(MeasurementError):
            meter.sync(4.0)

    def test_negative_rate_clamped(self) -> None:
        meter = ThroughputMeter()
        meter.set_rate(-3.0, now=0.0)
        meter.sync(1.0)
        assert meter.units == 0.0
