"""Tests for the Fig 14 efficiency metric."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.metrics.efficiency import efficiency_ratio


class TestEfficiencyRatio:
    def test_basic_ratio(self) -> None:
        # +0.2 ML for -0.1 CPU: efficiency 2.0
        assert efficiency_ratio(0.8, 0.6, 0.9, 1.0) == pytest.approx(2.0)

    def test_no_gain_is_zero(self) -> None:
        assert efficiency_ratio(0.6, 0.6, 0.8, 1.0) == 0.0

    def test_negative_gain_clamped(self) -> None:
        assert efficiency_ratio(0.5, 0.6, 0.8, 1.0) == 0.0

    def test_tiny_loss_clamped(self) -> None:
        # Avoids division blow-up when the runtime is essentially free.
        value = efficiency_ratio(0.9, 0.6, 1.0, 1.0)
        assert value == pytest.approx(0.3 / 0.02)

    def test_more_gain_is_better(self) -> None:
        low = efficiency_ratio(0.7, 0.6, 0.9, 1.0)
        high = efficiency_ratio(0.9, 0.6, 0.9, 1.0)
        assert high > low

    def test_more_loss_is_worse(self) -> None:
        cheap = efficiency_ratio(0.9, 0.6, 0.95, 1.0)
        costly = efficiency_ratio(0.9, 0.6, 0.7, 1.0)
        assert cheap > costly

    def test_negative_input_rejected(self) -> None:
        with pytest.raises(MeasurementError):
            efficiency_ratio(-0.1, 0.5, 0.5, 1.0)
