"""Tests for streaming percentiles."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.metrics.percentile import StreamingPercentiles


class TestStreamingPercentiles:
    def test_exact_on_small_stream(self) -> None:
        p = StreamingPercentiles()
        for v in range(1, 101):
            p.add(float(v))
        assert p.percentile(50) == pytest.approx(50.5)
        assert p.percentile(95) == pytest.approx(95.05)
        assert p.percentile(0) == 1.0
        assert p.percentile(100) == 100.0

    def test_mean(self) -> None:
        p = StreamingPercentiles()
        for v in (1.0, 2.0, 3.0):
            p.add(v)
        assert p.mean() == pytest.approx(2.0)

    def test_count_tracks_all_offers(self) -> None:
        p = StreamingPercentiles(max_samples=10)
        for v in range(100):
            p.add(float(v))
        assert p.count == 100

    def test_reservoir_cap_respected(self) -> None:
        p = StreamingPercentiles(max_samples=10, seed=1)
        for v in range(1000):
            p.add(float(v))
        assert len(p._samples) == 10

    def test_reservoir_approximates_distribution(self) -> None:
        p = StreamingPercentiles(max_samples=500, seed=1)
        for v in range(10000):
            p.add(float(v))
        assert p.percentile(50) == pytest.approx(5000, rel=0.2)

    def test_empty_raises(self) -> None:
        with pytest.raises(MeasurementError):
            StreamingPercentiles().percentile(50)
        with pytest.raises(MeasurementError):
            StreamingPercentiles().mean()

    def test_bad_quantile_raises(self) -> None:
        p = StreamingPercentiles()
        p.add(1.0)
        with pytest.raises(MeasurementError):
            p.percentile(101)

    def test_clear(self) -> None:
        p = StreamingPercentiles()
        p.add(1.0)
        p.clear()
        assert p.count == 0

    def test_clear_restores_fresh_reservoir_determinism(self) -> None:
        """Regression: clear() must re-seed the reservoir RNG.

        A cleared estimator left with an advanced RNG would reservoir-sample
        differently from a fresh one past the cap, breaking replay
        determinism for any component that reuses an estimator.
        """
        fresh = StreamingPercentiles(max_samples=8, seed=5)
        reused = StreamingPercentiles(max_samples=8, seed=5)
        for v in range(100):
            reused.add(float(v))  # advances the reservoir RNG past the cap
        reused.clear()
        for v in range(500):
            fresh.add(float(v))
            reused.add(float(v))
        assert reused._samples == fresh._samples

    def test_invalid_cap(self) -> None:
        with pytest.raises(MeasurementError):
            StreamingPercentiles(max_samples=0)
