"""Tests for slowdown aggregation helpers."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.metrics.slowdown import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    normalized_performance,
    slowdown,
)


class TestNormalization:
    def test_normalized_performance(self) -> None:
        assert normalized_performance(5.0, 10.0) == pytest.approx(0.5)

    def test_slowdown(self) -> None:
        assert slowdown(5.0, 10.0) == pytest.approx(2.0)

    def test_slowdown_inverse_of_norm(self) -> None:
        assert slowdown(4.0, 8.0) == pytest.approx(
            1.0 / normalized_performance(4.0, 8.0)
        )

    def test_rejects_non_positive(self) -> None:
        with pytest.raises(MeasurementError):
            normalized_performance(1.0, 0.0)
        with pytest.raises(MeasurementError):
            slowdown(0.0, 1.0)


class TestMeans:
    def test_arithmetic(self) -> None:
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_harmonic(self) -> None:
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_harmonic_below_arithmetic(self) -> None:
        values = [0.5, 1.5, 2.5]
        assert harmonic_mean(values) < arithmetic_mean(values)

    def test_geometric_between(self) -> None:
        values = [0.5, 2.0]
        assert harmonic_mean(values) <= geometric_mean(values) <= arithmetic_mean(values)

    def test_empty_rejected(self) -> None:
        for fn in (arithmetic_mean, harmonic_mean, geometric_mean):
            with pytest.raises(MeasurementError):
                fn([])

    def test_non_positive_rejected_for_hmean(self) -> None:
        with pytest.raises(MeasurementError):
            harmonic_mean([1.0, 0.0])
