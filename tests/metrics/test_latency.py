"""Tests for the latency recorder."""

from __future__ import annotations

import pytest

from repro.metrics.latency import LatencyRecorder


class TestLatencyRecorder:
    def test_records_latency(self) -> None:
        rec = LatencyRecorder()
        rec.record(0.0, 0.5)
        rec.record(1.0, 2.0)
        assert rec.completed == 2
        assert rec.mean_latency() == pytest.approx(0.75)

    def test_warmup_excluded(self) -> None:
        rec = LatencyRecorder(warmup_until=10.0)
        rec.record(0.0, 5.0)    # completes during warmup
        rec.record(9.0, 11.0)   # counts
        assert rec.completed == 2
        assert rec.mean_latency() == pytest.approx(2.0)

    def test_qps_over_post_warmup_window(self) -> None:
        rec = LatencyRecorder(warmup_until=10.0)
        for i in range(20):
            rec.record(10.0 + i, 10.5 + i)
        assert rec.qps(30.0) == pytest.approx(1.0)

    def test_qps_zero_window(self) -> None:
        rec = LatencyRecorder(warmup_until=10.0)
        assert rec.qps(10.0) == 0.0

    def test_tail(self) -> None:
        rec = LatencyRecorder()
        for i in range(1, 101):
            rec.record(0.0, float(i))
        assert rec.tail(95) == pytest.approx(95.05)
