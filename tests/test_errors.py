"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self) -> None:
        for name in (
            "ConfigurationError",
            "SimulationError",
            "SchedulingError",
            "TopologyError",
            "HostInterfaceError",
            "WorkloadError",
            "MeasurementError",
            "ExperimentError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catching_base_catches_all(self) -> None:
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("x")

    def test_library_errors_are_not_builtin_aliases(self) -> None:
        assert not issubclass(errors.ConfigurationError, ValueError)
