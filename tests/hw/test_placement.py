"""Tests for task placement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.placement import Placement, normalized_weights


class TestNormalizedWeights:
    def test_normalizes(self) -> None:
        assert normalized_weights({0: 2.0, 1: 2.0}) == {0: 0.5, 1: 0.5}

    def test_drops_zero_weights(self) -> None:
        assert normalized_weights({0: 1.0, 1: 0.0}) == {0: 1.0}

    def test_rejects_empty(self) -> None:
        with pytest.raises(ConfigurationError):
            normalized_weights({})

    def test_rejects_negative(self) -> None:
        with pytest.raises(ConfigurationError):
            normalized_weights({0: -1.0, 1: 2.0})


class TestPlacement:
    def test_basic(self) -> None:
        p = Placement(cores=frozenset({0, 1}), mem_weights={0: 1.0})
        assert p.num_cores == 2
        assert p.mem_weights == {0: 1.0}

    def test_rejects_empty_cores(self) -> None:
        with pytest.raises(ConfigurationError):
            Placement(cores=frozenset(), mem_weights={0: 1.0})

    def test_with_cores(self) -> None:
        p = Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        q = p.with_cores({1, 2})
        assert q.cores == frozenset({1, 2})
        assert q.mem_weights == p.mem_weights

    def test_with_mem_weights_renormalizes(self) -> None:
        p = Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        q = p.with_mem_weights({0: 3.0, 1: 1.0})
        assert q.mem_weights == {0: 0.75, 1: 0.25}

    def test_with_clos(self) -> None:
        p = Placement(cores=frozenset({0}), mem_weights={0: 1.0})
        assert p.with_clos(2).clos == 2

    def test_negative_clos_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            Placement(cores=frozenset({0}), mem_weights={0: 1.0}, clos=-1)

    def test_overlaps_cores(self) -> None:
        a = Placement(cores=frozenset({0, 1}), mem_weights={0: 1.0})
        b = Placement(cores=frozenset({1, 2}), mem_weights={0: 1.0})
        c = Placement(cores=frozenset({3}), mem_weights={0: 1.0})
        assert a.overlaps_cores(b)
        assert not a.overlaps_cores(c)
