"""Tests for socket-wide distress backpressure."""

from __future__ import annotations

import pytest

from repro.hw.backpressure import socket_pressure
from repro.hw.memory import MemoryControllerModel
from repro.hw.spec import MemoryControllerSpec


def load_at(demand_ratio: float):
    model = MemoryControllerModel(MemoryControllerSpec())
    return model.resolve(demand_ratio * model.spec.peak_bw_gbps)


class TestSocketPressure:
    def test_idle_socket_unthrottled(self) -> None:
        pressure = socket_pressure([load_at(0.2), load_at(0.3)], 0.5)
        assert pressure.saturation == 0.0
        assert pressure.core_throttle == 1.0

    def test_worst_controller_dominates(self) -> None:
        pressure = socket_pressure([load_at(0.2), load_at(1.8)], 0.5)
        solo = socket_pressure([load_at(1.8)], 0.5)
        assert pressure.saturation == solo.saturation

    def test_throttle_scales_with_strength(self) -> None:
        weak = socket_pressure([load_at(2.0)], 0.2)
        strong = socket_pressure([load_at(2.0)], 0.6)
        assert strong.core_throttle < weak.core_throttle

    def test_full_saturation_throttle(self) -> None:
        pressure = socket_pressure([load_at(5.0)], 0.52)
        assert pressure.saturation == 1.0
        assert pressure.core_throttle == pytest.approx(0.48)

    def test_empty_socket(self) -> None:
        pressure = socket_pressure([], 0.5)
        assert pressure.core_throttle == 1.0

    def test_subdomain_obliviousness_is_the_point(self) -> None:
        # A saturated controller in one subdomain throttles the whole
        # socket — the Section IV-B pathology.
        pressure = socket_pressure([load_at(0.0), load_at(2.0)], 0.52)
        assert pressure.core_throttle < 1.0
