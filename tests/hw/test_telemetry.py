"""Tests for time-integrated telemetry."""

from __future__ import annotations

import pytest

from repro.hw.contention import TrafficSource
from repro.hw.machine import Machine
from repro.hw.telemetry import TelemetryAccumulator


def make_state(machine: Machine, demand: float):
    src = TrafficSource(
        source_id="s", task_id="s", demand_gbps=demand,
        mem_weights={0: 1.0}, cores=frozenset({0}), threads=1,
    )
    return machine.solver.solve([src])


class TestTelemetryAccumulator:
    def test_window_averages_constant_state(self, machine: Machine) -> None:
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 10.0), now=0.0)
        mark = acc.copy_snapshot()
        window = acc.window_since(mark, now=4.0)
        assert window.elapsed == pytest.approx(4.0)
        assert window.mc_bandwidth_gbps[0] == pytest.approx(13.0)  # pf inflation

    def test_window_averages_piecewise_state(self, machine: Machine) -> None:
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 10.0), now=0.0)
        acc.set_state(make_state(machine, 20.0), now=1.0)
        mark_zero = acc.copy_snapshot()  # at t=1
        window = acc.window_since(mark_zero, now=3.0)
        assert window.mc_bandwidth_gbps[0] == pytest.approx(26.0)

    def test_independent_readers(self, machine: Machine) -> None:
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 10.0), now=0.0)
        early = acc.copy_snapshot()
        acc.advance(2.0)
        late = acc.copy_snapshot()
        w_early = acc.window_since(early, now=4.0)
        w_late = acc.window_since(late, now=4.0)
        assert w_early.elapsed == pytest.approx(4.0)
        assert w_late.elapsed == pytest.approx(2.0)

    def test_helpers(self, machine: Machine) -> None:
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 50.0), now=0.0)
        mark = acc.copy_snapshot()
        window = acc.window_since(mark, now=1.0)
        assert window.bandwidth_of((0, 1)) >= window.bandwidth_of((0,))
        assert window.max_latency_factor((0, 1)) >= 1.0
        assert 0.0 <= window.max_saturation((0, 1)) <= 1.0

    def test_zero_width_window_reports_defaults(self, machine: Machine) -> None:
        """Regression: two reads at the same instant must not fabricate data.

        The old code floored the elapsed time at 1e-12, so the degenerate
        window divided the (zero) integral deltas by an epsilon and the
        documented defaults were unreachable. A zero-width window now
        reports elapsed 0.0 and the per-signal defaults.
        """
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 50.0), now=0.0)
        acc.advance(2.0)
        mark = acc.copy_snapshot()
        window = acc.window_since(mark, now=2.0)  # double read, same time
        assert window.elapsed == 0.0
        assert window.mc_bandwidth_gbps[0] == 0.0
        assert window.mc_latency_factor[0] == 1.0
        assert window.mc_saturation[0] == 0.0
        assert window.socket_throttle[0] == 1.0

    def test_window_after_degenerate_read_recovers(self, machine: Machine) -> None:
        """A zero-width read must not poison the next, real window."""
        acc = TelemetryAccumulator()
        acc.set_state(make_state(machine, 10.0), now=0.0)
        mark = acc.copy_snapshot()
        acc.window_since(mark, now=0.0)  # degenerate
        window = acc.window_since(mark, now=4.0)
        assert window.elapsed == pytest.approx(4.0)
        assert window.mc_bandwidth_gbps[0] == pytest.approx(13.0)

    def test_time_never_goes_backwards(self) -> None:
        acc = TelemetryAccumulator()
        acc.advance(5.0)
        acc.advance(3.0)  # clamped, no exception
        assert acc.snapshot.time == 5.0
