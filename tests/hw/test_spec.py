"""Tests for hardware specifications."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.spec import (
    LlcSpec,
    MachineSpec,
    MemoryControllerSpec,
    SocketSpec,
    cloud_tpu_host_spec,
    gpu_host_spec,
    tpu_host_spec,
)


class TestMemoryControllerSpec:
    def test_defaults_valid(self) -> None:
        spec = MemoryControllerSpec()
        assert spec.peak_bw_gbps > 0

    def test_rejects_non_positive_bw(self) -> None:
        with pytest.raises(ConfigurationError):
            MemoryControllerSpec(peak_bw_gbps=0)

    def test_rejects_bad_distress_span(self) -> None:
        with pytest.raises(ConfigurationError):
            MemoryControllerSpec(distress_span=0)


class TestLlcSpec:
    def test_mb_per_way(self) -> None:
        spec = LlcSpec(capacity_mb=32, ways=16)
        assert spec.mb_per_way == pytest.approx(2.0)

    def test_rejects_zero_ways(self) -> None:
        with pytest.raises(ConfigurationError):
            LlcSpec(ways=0)


class TestSocketSpec:
    def test_peak_bw_sums_controllers(self) -> None:
        spec = SocketSpec()
        assert spec.peak_bw_gbps == pytest.approx(76.8)

    def test_accepts_any_positive_channel_group_count(self) -> None:
        # The subdomain model is generalized: 1, 2 and 4 channel groups are
        # all valid socket layouts.
        for groups in (1, 2, 4):
            spec = SocketSpec(
                memory_controllers=tuple(
                    MemoryControllerSpec() for _ in range(groups)
                )
            )
            assert len(spec.memory_controllers) == groups

    def test_requires_at_least_one_channel_group(self) -> None:
        with pytest.raises(ConfigurationError):
            SocketSpec(memory_controllers=())

    def test_requires_core_per_channel_group(self) -> None:
        with pytest.raises(ConfigurationError):
            SocketSpec(
                cores=1,
                memory_controllers=(
                    MemoryControllerSpec(),
                    MemoryControllerSpec(),
                ),
            )

    def test_backpressure_strength_bounds(self) -> None:
        with pytest.raises(ConfigurationError):
            SocketSpec(backpressure_strength=1.0)


class TestMachineSpec:
    def test_total_cores(self) -> None:
        assert MachineSpec().total_cores == 32

    def test_with_name(self) -> None:
        spec = MachineSpec().with_name("foo")
        assert spec.name == "foo"

    def test_requires_sockets(self) -> None:
        with pytest.raises(ConfigurationError):
            MachineSpec(sockets=())


class TestPlatformPresets:
    def test_three_distinct_platforms(self) -> None:
        names = {s().name for s in (tpu_host_spec, cloud_tpu_host_spec, gpu_host_spec)}
        assert len(names) == 3

    def test_cloud_tpu_is_most_remote_sensitive(self) -> None:
        assert cloud_tpu_host_spec().remote_sensitivity > tpu_host_spec().remote_sensitivity
        assert cloud_tpu_host_spec().remote_sensitivity > gpu_host_spec().remote_sensitivity
