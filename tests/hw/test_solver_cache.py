"""Cache correctness: cached and uncached solver paths must be identical.

The solve memo is only sound if the solve signature covers every input the
solver reads (see docs/model.md). These tests pin that invariant from both
ends: micro-level (signature sensitivity to each knob, memo hit behaviour)
and end-to-end (byte-identical policy experiment numbers with the cache on
and off, across every paper policy).
"""

from __future__ import annotations

import pytest

from repro.experiments import common as common_mod
from repro.experiments.common import MixConfig, run_colocation
from repro.hw.contention import (
    ContentionSolver,
    Priority,
    TrafficSource,
    set_cache_default,
)
from repro.hw.llc import LlcModel
from repro.hw.machine import Machine
from repro.hw.prefetcher import PrefetcherBank
from repro.hw.spec import MachineSpec
from repro.hw.topology import Topology
from repro.sim import Simulator

POLICIES = ("BL", "CT", "KP-SD", "KP", "MBA", "HW-QOS")


@pytest.fixture(autouse=True)
def _restore_cache_default():
    """Every test leaves the process-wide cache default untouched."""
    yield
    set_cache_default(None)


def _solver(cache: bool = True) -> ContentionSolver:
    spec = MachineSpec()
    topo = Topology(spec)
    solver = ContentionSolver(
        spec,
        topo,
        PrefetcherBank(spec.total_cores),
        {i: LlcModel(s.llc) for i, s in enumerate(spec.sockets)},
    )
    solver.cache_enabled = cache
    return solver


def _sources() -> list[TrafficSource]:
    return [
        TrafficSource(
            source_id="ml",
            task_id="ml",
            demand_gbps=30.0,
            mem_weights={0: 0.5, 1: 0.5},
            cores=frozenset(range(0, 8)),
            priority=Priority.HIGH,
            working_set_mb=12.0,
            llc_miss_traffic_gain=0.4,
            llc_speed_sensitivity=0.3,
            smt_sensitivity=0.5,
        ),
        TrafficSource(
            source_id="cpu",
            task_id="cpu",
            demand_gbps=45.0,
            mem_weights={0: 1.0},
            cores=frozenset(range(8, 16)),
            threads=16,
            working_set_mb=24.0,
            smt_aggression=0.6,
        ),
    ]


class TestSolveMemo:
    def test_repeat_solve_hits_cache(self) -> None:
        solver = _solver()
        sources = _sources()
        first = solver.solve(sources)
        second = solver.solve(list(sources))
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_misses == 1
        assert second is first  # memo returns the identical result object

    def test_cache_disabled_always_recomputes(self) -> None:
        solver = _solver(cache=False)
        sources = _sources()
        assert solver.solve_signature(sources) is None
        a = solver.solve(sources)
        b = solver.solve(sources)
        assert solver.stats.cache_hits == 0
        assert a is not b
        assert a == b

    def test_cached_equals_uncached(self) -> None:
        cached = _solver(cache=True)
        uncached = _solver(cache=False)
        sources = _sources()
        for _ in range(3):  # repeat: later solves come from the memo
            assert cached.solve(sources) == uncached.solve(sources)

    def test_signature_covers_mba_caps(self) -> None:
        solver = _solver()
        sources = _sources()
        sig = solver.solve_signature(sources)
        solver.mba_caps[0] = 0.4
        assert solver.solve_signature(sources) != sig

    def test_signature_covers_snc_and_priority_and_qos(self) -> None:
        solver = _solver()
        sources = _sources()
        sig = solver.solve_signature(sources)
        solver.snc_enabled = True
        sig_snc = solver.solve_signature(sources)
        assert sig_snc != sig
        solver.priority_mode = True
        sig_prio = solver.solve_signature(sources)
        assert sig_prio not in (sig, sig_snc)
        solver.qos_aware_prefetch = True
        assert solver.solve_signature(sources) not in (sig, sig_snc, sig_prio)

    def test_signature_covers_llc_masks(self) -> None:
        solver = _solver()
        sources = _sources()
        sig = solver.solve_signature(sources)
        solver.llcs[0].set_clos_mask(1, 0x00FF)
        assert solver.solve_signature(sources) != sig

    def test_signature_covers_prefetcher_state(self) -> None:
        solver = _solver()
        sources = _sources()
        sig = solver.solve_signature(sources)
        solver.prefetchers.set_enabled(9, False)  # a core of the cpu source
        assert solver.solve_signature(sources) != sig

    def test_stale_knob_result_not_served(self) -> None:
        """A knob change must yield a different result, not a stale hit."""
        solver = _solver()
        sources = _sources()
        before = solver.solve(sources)
        solver.mba_caps[0] = 0.3
        after = solver.solve(sources)
        assert after.source_rates["cpu"] != before.source_rates["cpu"]

    def test_source_order_is_part_of_signature(self) -> None:
        solver = _solver()
        sources = _sources()
        sig_fwd = solver.solve_signature(sources)
        sig_rev = solver.solve_signature(list(reversed(sources)))
        # Order-sensitivity guarantees bit-identical float summation on hits.
        assert sig_fwd != sig_rev


class _StaticTask:
    """Minimal AttachedTask with a constant traffic source."""

    def __init__(self) -> None:
        self.task_id = "static"

    def traffic_sources(self) -> list[TrafficSource]:
        return [
            TrafficSource(
                source_id="static",
                task_id="static",
                demand_gbps=20.0,
                mem_weights={0: 1.0},
                cores=frozenset({0, 1}),
            )
        ]

    def sync(self, now: float) -> None:
        pass

    def apply_rates(self, result, now: float) -> None:
        pass


class TestMachineShortCircuit:
    def test_unchanged_signature_skips_resolve(self) -> None:
        sim = Simulator()
        machine = Machine(MachineSpec(), sim)
        machine.solver.cache_enabled = True
        machine.attach(_StaticTask())
        solves = machine.solver.stats.solves
        changes = machine.telemetry.state_changes
        machine.notify_change()  # nothing changed since the attach solve
        assert machine.solver.stats.signature_short_circuits >= 1
        assert machine.solver.stats.solves == solves
        assert machine.telemetry.state_changes == changes

    def test_knob_change_defeats_short_circuit(self) -> None:
        sim = Simulator()
        machine = Machine(MachineSpec(), sim)
        machine.solver.cache_enabled = True
        machine.attach(_StaticTask())
        solves = machine.solver.stats.solves
        machine.set_snc(True)
        assert machine.solver.stats.solves > solves


def _run_policy(policy: str) -> common_mod.ColocationResult:
    # The standalone-reference memo persists across runs; clear it so the
    # cache-on and cache-off passes recompute everything independently.
    common_mod._STANDALONE_CACHE.clear()
    return run_colocation(
        MixConfig(
            ml="cnn1",
            policy=policy,
            cpu="stream",
            intensity=1,
            duration=10.0,
            warmup=2.0,
        )
    )


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_numbers_identical(self, policy: str) -> None:
        set_cache_default(True)
        cached = _run_policy(policy)
        set_cache_default(False)
        uncached = _run_policy(policy)
        assert cached.ml_perf == uncached.ml_perf
        assert cached.ml_perf_norm == uncached.ml_perf_norm
        assert cached.ml_tail == uncached.ml_tail
        assert cached.ml_tail_norm == uncached.ml_tail_norm
        assert cached.cpu_throughput == uncached.cpu_throughput
        assert cached.params == uncached.params
        assert cached.events_dispatched == uncached.events_dispatched
        assert uncached.solver_stats["cache_hits"] == 0

    def test_fig13_numbers_identical(self) -> None:
        from repro.experiments.fig13_overall import run_fig13

        common_mod._STANDALONE_CACHE.clear()
        set_cache_default(True)
        cached = run_fig13(
            duration=10.0,
            policies=("BL", "KP"),
            ml_workloads=("cnn1",),
            mixes=(("stream", 1),),
        )
        common_mod._STANDALONE_CACHE.clear()
        set_cache_default(False)
        uncached = run_fig13(
            duration=10.0,
            policies=("BL", "KP"),
            ml_workloads=("cnn1",),
            mixes=(("stream", 1),),
        )
        assert cached == uncached

    def test_cache_hit_rate_reported(self) -> None:
        set_cache_default(True)
        result = _run_policy("KP")
        stats = result.solver_stats
        assert stats["solves"] > 0
        # The perf layer must actually be doing something on a real run.
        assert (
            stats["cache_hits"] + stats["signature_short_circuits"] > 0
        )
