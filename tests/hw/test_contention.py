"""Tests for the contention solver."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.contention import Priority, TrafficSource
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec


@pytest.fixture
def solver(machine: Machine):
    return machine.solver


def source(
    sid: str = "s",
    demand: float = 10.0,
    mem: dict[int, float] | None = None,
    cores: frozenset[int] = frozenset({0, 1}),
    threads: int = 2,
    priority: Priority = Priority.LOW,
    **kwargs,
) -> TrafficSource:
    return TrafficSource(
        source_id=sid,
        task_id=sid,
        demand_gbps=demand,
        mem_weights=mem or {0: 1.0},
        cores=cores,
        threads=threads,
        priority=priority,
        **kwargs,
    )


class TestBasicSolve:
    def test_empty_solve(self, solver) -> None:
        result = solver.solve([])
        assert all(l.utilization == 0 for l in result.mc_loads.values())
        assert result.source_rates == {}

    def test_light_load_full_grant(self, solver) -> None:
        result = solver.solve([source(demand=5.0)])
        rates = result.rates_for("s")
        assert rates.bw_grant == pytest.approx(1.0)
        assert rates.core_throttle == 1.0

    def test_unknown_source_gets_idle_rates(self, solver) -> None:
        result = solver.solve([source()])
        assert result.rates_for("nope").bw_grant == 1.0

    def test_overload_reduces_grant(self, solver) -> None:
        result = solver.solve([source(demand=100.0, threads=2)])
        assert result.rates_for("s").bw_grant < 1.0

    def test_latency_grows_with_demand(self, solver) -> None:
        low = solver.solve([source(demand=5.0)]).rates_for("s").latency_factor
        high = solver.solve([source(demand=30.0)]).rates_for("s").latency_factor
        assert high > low

    def test_cpu_share_caps_demand(self, solver) -> None:
        # 8 threads on 2 cores: only 1/4 of the offered demand materializes.
        wide = solver.solve([source(demand=80.0, threads=8)])
        assert wide.mc_loads[0].demand_gbps < 80.0

    def test_multi_socket_source_rejected(self, solver) -> None:
        bad = source(cores=frozenset({0, 20}))
        with pytest.raises(ConfigurationError):
            solver.solve([bad])


class TestDistress:
    def test_saturating_source_asserts_distress(self, solver) -> None:
        result = solver.solve([source(demand=60.0, threads=2)])
        assert result.socket_pressures[0].saturation > 0
        assert result.socket_pressures[0].core_throttle < 1.0

    def test_distress_is_socket_wide(self, solver, machine: Machine) -> None:
        # Aggressor confined to subdomain 1 still throttles a subdomain-0 victim.
        machine.set_snc(True)
        aggressor = source(
            "agg", demand=70.0, mem={1: 1.0},
            cores=frozenset(machine.topology.cores_of_subdomain(1)), threads=8,
        )
        victim = source("victim", demand=2.0, mem={0: 1.0})
        result = solver.solve([aggressor, victim])
        assert result.rates_for("victim").core_throttle < 1.0

    def test_remote_socket_unaffected_by_distress(self, solver) -> None:
        aggressor = source("agg", demand=90.0, threads=8)
        remote = source(
            "far", demand=2.0, mem={2: 1.0}, cores=frozenset({20, 21})
        )
        result = solver.solve([aggressor, remote])
        assert result.rates_for("far").core_throttle == pytest.approx(1.0)


class TestPrefetchInteraction:
    def test_disabled_prefetchers_cut_offered_demand(
        self, solver, machine: Machine
    ) -> None:
        src = source(demand=50.0, threads=2)
        with_pf = solver.solve([src]).mc_loads[0].demand_gbps
        for core in (0, 1):
            machine.prefetchers.set_enabled(core, False)
        without_pf = solver.solve([src]).mc_loads[0].demand_gbps
        assert without_pf < with_pf

    def test_disabled_prefetchers_slow_the_task(
        self, solver, machine: Machine
    ) -> None:
        src = source(demand=5.0)
        before = solver.solve([src]).rates_for("s").prefetch_speed
        machine.prefetchers.set_enabled(0, False)
        machine.prefetchers.set_enabled(1, False)
        after = solver.solve([src]).rates_for("s").prefetch_speed
        assert after < before == 1.0


class TestSncEffects:
    def test_local_latency_bonus(self, solver, machine: Machine) -> None:
        src = source(demand=2.0, mem={0: 1.0})
        off = solver.solve([src]).rates_for("s").latency_factor
        machine.solver.snc_enabled = True
        on = solver.solve([src]).rates_for("s").latency_factor
        assert on < off

    def test_mesh_coupling_from_sibling(self, solver, machine: Machine) -> None:
        machine.solver.snc_enabled = True
        victim = source("v", demand=2.0, mem={0: 1.0})
        sibling = source(
            "sib", demand=30.0, mem={1: 1.0},
            cores=frozenset(machine.topology.cores_of_subdomain(1)), threads=8,
        )
        alone = solver.solve([victim]).rates_for("v").latency_factor
        coupled = solver.solve([victim, sibling]).rates_for("v").latency_factor
        assert coupled > alone


class TestPriorityMode:
    def test_hi_priority_shielded(self, solver) -> None:
        hi = source("hi", demand=5.0, priority=Priority.HIGH)
        lo = source(
            "lo", demand=100.0, cores=frozenset({4, 5, 6, 7}), threads=4
        )
        solver.priority_mode = True
        result = solver.solve([hi, lo])
        assert result.rates_for("hi").bw_grant == pytest.approx(1.0)
        assert result.rates_for("hi").latency_factor < result.rates_for(
            "lo"
        ).latency_factor

    def test_mba_cap_reduces_demand(self, solver) -> None:
        src = source(demand=50.0, threads=2)
        baseline = solver.solve([src]).mc_loads[0].demand_gbps
        solver.mba_caps[0] = 0.5
        capped = solver.solve([src]).mc_loads[0].demand_gbps
        assert capped == pytest.approx(0.5 * baseline)


class TestSmt:
    def test_overlapping_aggressive_source_slows_victim(self, solver) -> None:
        victim = source("v", demand=2.0, smt_sensitivity=0.5)
        bully = source(
            "b", demand=2.0, cores=frozenset({0, 1}), smt_aggression=0.8
        )
        result = solver.solve([victim, bully])
        assert result.rates_for("v").smt_factor < 1.0

    def test_disjoint_cores_no_smt_effect(self, solver) -> None:
        victim = source("v", demand=2.0, smt_sensitivity=0.5)
        other = source(
            "b", demand=2.0, cores=frozenset({4, 5}), smt_aggression=0.8
        )
        result = solver.solve([victim, other])
        assert result.rates_for("v").smt_factor == 1.0


class TestRemoteTraffic:
    def test_remote_traffic_loads_upi(self, solver, machine: Machine) -> None:
        remote = source(
            "r", demand=20.0, mem={0: 1.0},
            cores=frozenset(machine.topology.cores_of_socket(1)), threads=4,
        )
        result = solver.solve([remote])
        assert (1, 0) in result.upi_loads
        assert result.upi_loads[(1, 0)].demand_gbps > 20.0  # coherence overhead

    def test_remote_traffic_hurts_home_latency(
        self, machine: Machine
    ) -> None:
        victim = source("v", demand=2.0, mem={0: 1.0})
        local_agg = source(
            "a", demand=50.0, mem={0: 0.5, 1: 0.5},
            cores=frozenset(range(4, 12)), threads=8,
        )
        remote_agg = source(
            "a", demand=50.0, mem={0: 0.5, 1: 0.5},
            cores=frozenset(machine.topology.cores_of_socket(1)), threads=8,
        )
        local = machine.solver.solve([victim, local_agg]).rates_for("v")
        remote = machine.solver.solve([victim, remote_agg]).rates_for("v")
        assert remote.latency_factor > local.latency_factor


class TestSourceValidation:
    def test_negative_demand(self) -> None:
        with pytest.raises(ConfigurationError):
            source(demand=-1.0)

    def test_zero_threads(self) -> None:
        with pytest.raises(ConfigurationError):
            source(threads=0)

    def test_empty_cores(self) -> None:
        with pytest.raises(ConfigurationError):
            source(cores=frozenset())
