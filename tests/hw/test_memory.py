"""Tests for the memory-controller model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.memory import MemoryControllerModel, idle_load
from repro.hw.spec import MemoryControllerSpec


@pytest.fixture
def model() -> MemoryControllerModel:
    return MemoryControllerModel(MemoryControllerSpec())


class TestResolve:
    def test_underload_grants_everything(self, model: MemoryControllerModel) -> None:
        load = model.resolve(10.0)
        assert load.grant_ratio == 1.0
        assert load.delivered_gbps == pytest.approx(10.0)
        assert load.saturation == 0.0

    def test_overload_grants_proportionally(self, model: MemoryControllerModel) -> None:
        peak = model.spec.peak_bw_gbps
        load = model.resolve(2 * peak)
        assert load.grant_ratio == pytest.approx(0.5)
        assert load.delivered_gbps == pytest.approx(peak)
        assert load.utilization == pytest.approx(1.0)

    def test_latency_monotone_in_utilization(self, model: MemoryControllerModel) -> None:
        factors = [model.latency_factor(u) for u in (0.0, 0.3, 0.6, 0.9, 0.99)]
        assert factors == sorted(factors)
        assert factors[0] == pytest.approx(1.0)

    def test_latency_capped(self, model: MemoryControllerModel) -> None:
        assert model.latency_factor(0.999) <= model.spec.latency_factor_cap

    def test_saturation_starts_at_threshold(self, model: MemoryControllerModel) -> None:
        start = model.spec.distress_start
        assert model.saturation(start - 0.01) == 0.0
        assert model.saturation(start + 0.01) > 0.0

    def test_saturation_clamps_to_one(self, model: MemoryControllerModel) -> None:
        assert model.saturation(10.0) == 1.0

    def test_negative_demand_raises(self, model: MemoryControllerModel) -> None:
        with pytest.raises(ConfigurationError):
            model.resolve(-1.0)


class TestPrioritized:
    def test_hi_served_first(self, model: MemoryControllerModel) -> None:
        peak = model.spec.peak_bw_gbps
        load, hi_grant, lo_grant = model.resolve_prioritized(0.5 * peak, peak)
        assert hi_grant == 1.0
        assert lo_grant == pytest.approx(0.5)
        assert load.delivered_gbps == pytest.approx(peak)

    def test_hi_latency_shielded(self, model: MemoryControllerModel) -> None:
        peak = model.spec.peak_bw_gbps
        load, _, _ = model.resolve_prioritized(0.2 * peak, 2 * peak)
        assert load.hi_latency_factor < load.latency_factor

    def test_hi_overload_caps_grant(self, model: MemoryControllerModel) -> None:
        peak = model.spec.peak_bw_gbps
        load, hi_grant, lo_grant = model.resolve_prioritized(2 * peak, peak)
        assert hi_grant == pytest.approx(0.5)
        assert lo_grant == 0.0
        assert load.delivered_gbps == pytest.approx(peak)

    def test_no_distress_under_prioritization(self, model: MemoryControllerModel) -> None:
        peak = model.spec.peak_bw_gbps
        load, _, _ = model.resolve_prioritized(0.5 * peak, 5 * peak)
        # Saturation computed on delivered (capped) traffic stays bounded.
        assert load.saturation <= model.saturation(1.0)

    def test_negative_raises(self, model: MemoryControllerModel) -> None:
        with pytest.raises(ConfigurationError):
            model.resolve_prioritized(-1.0, 0.0)


class TestIdleLoad:
    def test_idle(self) -> None:
        load = idle_load(MemoryControllerSpec())
        assert load.utilization == 0.0
        assert load.latency_factor == 1.0
        assert load.hi_latency_factor == 1.0
