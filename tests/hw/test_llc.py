"""Tests for the LLC / CAT model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.llc import LlcModel, LlcRequest, full_mask
from repro.hw.spec import LlcSpec


@pytest.fixture
def llc() -> LlcModel:
    return LlcModel(LlcSpec(capacity_mb=32, ways=16))


def request(task: str, ws: float, clos: int = 0, intensity: float = 1.0) -> LlcRequest:
    return LlcRequest(task_id=task, working_set_mb=ws, clos=clos, intensity=intensity)


class TestMasks:
    def test_default_mask_covers_all_ways(self, llc: LlcModel) -> None:
        assert llc.clos_mask(0) == full_mask(llc.spec)

    def test_unknown_clos_defaults_to_full(self, llc: LlcModel) -> None:
        assert llc.clos_mask(7) == full_mask(llc.spec)

    def test_set_mask_and_capacity(self, llc: LlcModel) -> None:
        llc.set_clos_mask(1, 0b1111)
        assert llc.clos_capacity_mb(1) == pytest.approx(8.0)

    def test_invalid_mask_rejected(self, llc: LlcModel) -> None:
        with pytest.raises(ConfigurationError):
            llc.set_clos_mask(1, 0)

    def test_reset(self, llc: LlcModel) -> None:
        llc.set_clos_mask(1, 0b1)
        llc.reset()
        assert llc.clos_mask(1) == full_mask(llc.spec)


class TestHitFractions:
    def test_single_small_task_hits_fully(self, llc: LlcModel) -> None:
        fractions = llc.hit_fractions([request("a", 8.0)])
        assert fractions["a"] == 1.0

    def test_oversized_task_misses(self, llc: LlcModel) -> None:
        fractions = llc.hit_fractions([request("a", 64.0)])
        assert fractions["a"] == pytest.approx(0.5)

    def test_sharing_reduces_hits(self, llc: LlcModel) -> None:
        alone = llc.hit_fractions([request("a", 24.0)])["a"]
        shared = llc.hit_fractions([request("a", 24.0), request("b", 24.0)])["a"]
        assert shared < alone

    def test_intensity_weights_allocation(self, llc: LlcModel) -> None:
        mild = llc.hit_fractions(
            [request("a", 16.0), request("b", 16.0, intensity=1.0)]
        )["a"]
        hot = llc.hit_fractions(
            [request("a", 16.0), request("b", 16.0, intensity=4.0)]
        )["a"]
        assert hot < mild

    def test_cat_protects_partition(self, llc: LlcModel) -> None:
        llc.set_clos_mask(1, 0b111111)          # 6 ways exclusive
        llc.set_clos_mask(0, full_mask(llc.spec) & ~0b111111)
        fractions = llc.hit_fractions(
            [request("ml", 10.0, clos=1), request("agg", 100.0, clos=0, intensity=5)]
        )
        # 6 ways = 12 MB dedicated to a 10 MB working set: full protection.
        assert fractions["ml"] == pytest.approx(1.0)

    def test_zero_working_set_hits(self, llc: LlcModel) -> None:
        fractions = llc.hit_fractions([request("a", 0.0), request("b", 100.0)])
        assert fractions["a"] == 1.0

    def test_empty_requests(self, llc: LlcModel) -> None:
        assert llc.hit_fractions([]) == {}

    def test_total_allocation_bounded_by_capacity(self, llc: LlcModel) -> None:
        requests = [request(f"t{i}", 20.0) for i in range(4)]
        fractions = llc.hit_fractions(requests)
        total_resident = sum(20.0 * fractions[f"t{i}"] for i in range(4))
        assert total_resident <= llc.spec.capacity_mb + 1e-9
