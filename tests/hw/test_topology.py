"""Tests for topology queries."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.hw.spec import MachineSpec
from repro.hw.topology import Topology


@pytest.fixture
def topo() -> Topology:
    return Topology(MachineSpec())


class TestTopology:
    def test_counts(self, topo: Topology) -> None:
        assert topo.num_sockets == 2
        assert topo.num_subdomains == 4

    def test_socket_of_core(self, topo: Topology) -> None:
        assert topo.socket_of_core(0) == 0
        assert topo.socket_of_core(15) == 0
        assert topo.socket_of_core(16) == 1
        assert topo.socket_of_core(31) == 1

    def test_socket_of_core_out_of_range(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.socket_of_core(32)

    def test_subdomain_of_core(self, topo: Topology) -> None:
        assert topo.subdomain_of_core(0) == 0
        assert topo.subdomain_of_core(7) == 0
        assert topo.subdomain_of_core(8) == 1
        assert topo.subdomain_of_core(16) == 2
        assert topo.subdomain_of_core(24) == 3

    def test_cores_of_socket(self, topo: Topology) -> None:
        assert topo.cores_of_socket(0) == tuple(range(16))
        assert topo.cores_of_socket(1) == tuple(range(16, 32))

    def test_cores_of_subdomain_partition_socket(self, topo: Topology) -> None:
        combined = topo.cores_of_subdomain(0) + topo.cores_of_subdomain(1)
        assert combined == topo.cores_of_socket(0)

    def test_socket_of_subdomain(self, topo: Topology) -> None:
        assert topo.socket_of_subdomain(0) == 0
        assert topo.socket_of_subdomain(3) == 1

    def test_subdomains_of_socket(self, topo: Topology) -> None:
        assert topo.subdomains_of_socket(1) == (2, 3)

    def test_socket_memory_weights(self, topo: Topology) -> None:
        assert topo.socket_memory_weights(0) == {0: 0.5, 1: 0.5}

    def test_bad_subdomain_raises(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.socket_of_subdomain(4)

    def test_bad_socket_raises(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.cores_of_socket(2)
