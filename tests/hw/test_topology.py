"""Tests for topology queries."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.hw.spec import MachineSpec
from repro.hw.topology import Topology


@pytest.fixture
def topo() -> Topology:
    return Topology(MachineSpec())


class TestTopology:
    def test_counts(self, topo: Topology) -> None:
        assert topo.num_sockets == 2
        assert topo.num_subdomains == 4

    def test_socket_of_core(self, topo: Topology) -> None:
        assert topo.socket_of_core(0) == 0
        assert topo.socket_of_core(15) == 0
        assert topo.socket_of_core(16) == 1
        assert topo.socket_of_core(31) == 1

    def test_socket_of_core_out_of_range(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.socket_of_core(32)

    def test_subdomain_of_core(self, topo: Topology) -> None:
        assert topo.subdomain_of_core(0) == 0
        assert topo.subdomain_of_core(7) == 0
        assert topo.subdomain_of_core(8) == 1
        assert topo.subdomain_of_core(16) == 2
        assert topo.subdomain_of_core(24) == 3

    def test_cores_of_socket(self, topo: Topology) -> None:
        assert topo.cores_of_socket(0) == tuple(range(16))
        assert topo.cores_of_socket(1) == tuple(range(16, 32))

    def test_cores_of_subdomain_partition_socket(self, topo: Topology) -> None:
        combined = topo.cores_of_subdomain(0) + topo.cores_of_subdomain(1)
        assert combined == topo.cores_of_socket(0)

    def test_socket_of_subdomain(self, topo: Topology) -> None:
        assert topo.socket_of_subdomain(0) == 0
        assert topo.socket_of_subdomain(3) == 1

    def test_subdomains_of_socket(self, topo: Topology) -> None:
        assert topo.subdomains_of_socket(1) == (2, 3)

    def test_socket_memory_weights(self, topo: Topology) -> None:
        assert topo.socket_memory_weights(0) == {0: 0.5, 1: 0.5}

    def test_bad_subdomain_raises(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.socket_of_subdomain(4)

    def test_bad_socket_raises(self, topo: Topology) -> None:
        with pytest.raises(TopologyError):
            topo.cores_of_socket(2)

    def test_sibling_subdomains(self, topo: Topology) -> None:
        assert topo.sibling_subdomains(0) == (1,)
        assert topo.sibling_subdomains(1) == (0,)
        assert topo.sibling_subdomains(2) == (3,)

    def test_mc_ids(self, topo: Topology) -> None:
        assert topo.mc_ids() == (0, 1, 2, 3)
        specs = [topo.mc_spec_of_subdomain(m) for m in topo.mc_ids()]
        assert all(s.peak_bw_gbps > 0 for s in specs)


class TestIrregularLayouts:
    """The subdomain arithmetic must not assume two channel groups."""

    @staticmethod
    def _machine(groups_per_socket: tuple[int, ...]) -> Topology:
        from repro.hw.spec import MemoryControllerSpec, SocketSpec

        return Topology(
            MachineSpec(
                sockets=tuple(
                    SocketSpec(
                        cores=16,
                        memory_controllers=tuple(
                            MemoryControllerSpec() for _ in range(groups)
                        ),
                    )
                    for groups in groups_per_socket
                )
            )
        )

    def test_single_group_socket(self) -> None:
        topo = self._machine((1, 1))
        assert topo.num_subdomains == 2
        assert topo.subdomains_of_socket(0) == (0,)
        assert topo.subdomains_of_socket(1) == (1,)
        assert topo.sibling_subdomains(0) == ()
        assert topo.cores_of_subdomain(0) == tuple(range(16))
        assert topo.socket_memory_weights(1) == {1: 1.0}

    def test_four_group_socket(self) -> None:
        topo = self._machine((4, 4))
        assert topo.num_subdomains == 8
        assert topo.subdomains_of_socket(1) == (4, 5, 6, 7)
        assert topo.sibling_subdomains(5) == (4, 6, 7)
        combined = sum((topo.cores_of_subdomain(s) for s in range(4)), ())
        assert combined == topo.cores_of_socket(0)
        weights = topo.socket_memory_weights(0)
        assert weights == {0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}

    def test_asymmetric_sockets(self) -> None:
        topo = self._machine((1, 3))
        assert topo.num_subdomains == 4
        assert topo.subdomains_of_socket(0) == (0,)
        assert topo.subdomains_of_socket(1) == (1, 2, 3)
        assert topo.socket_of_subdomain(3) == 1
        # Near-equal contiguous core chunks: 16 cores over 3 groups.
        sizes = [len(topo.cores_of_subdomain(s)) for s in (1, 2, 3)]
        assert sum(sizes) == 16
        assert max(sizes) - min(sizes) <= 1
        for core in topo.cores_of_socket(1):
            sub = topo.subdomain_of_core(core)
            assert core in topo.cores_of_subdomain(sub)
