"""The solver's batch and incremental fast paths against the scalar path.

Three pinned contracts:

- ``solve_batch`` (the vectorized what-if fixed point) agrees with
  ``solve_variant`` (the scalar semantic reference) to tight tolerance on
  every output field, for arbitrary demand mixes and knob variants.
- ``_solve_incremental`` (the small-knob-delta path) produces *bit-identical*
  results to a full solve from scratch, and the ``incremental_solves``
  counter makes its use observable.
- Deltas outside the recognized shapes (structural source changes) fall
  back to the full solve rather than reusing stale factors.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.contention import KnobVariant, Priority, TrafficSource
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec
from repro.sim import Simulator

#: Relative tolerance for batch-vs-scalar agreement. The two paths compute
#: the same fixed point with differently-ordered float reductions, so exact
#: equality is not guaranteed — but they must agree far beyond any
#: policy-relevant precision.
TOL = 1e-9


def make_solver():
    return Machine(MachineSpec(), Simulator()).solver


def sources_from(demand_list: list[float]) -> list[TrafficSource]:
    """A two-priority, cache-active mix exercising every static factor."""
    out = []
    for index, demand in enumerate(demand_list):
        lo = (index * 4) % 16
        out.append(
            TrafficSource(
                source_id=f"s{index}",
                task_id=f"s{index}",
                demand_gbps=demand,
                mem_weights={index % 4: 0.75, (index + 1) % 4: 0.25},
                cores=frozenset(range(lo, lo + 4)),
                threads=4 + index,
                clos=index % 2,
                priority=Priority.HIGH if index % 3 == 0 else Priority.LOW,
                working_set_mb=4.0 * (index + 1),
                llc_intensity=0.5 + 0.25 * index,
                llc_miss_traffic_gain=0.4,
                llc_speed_sensitivity=0.3,
                smt_aggression=0.2 * (index % 2),
                smt_sensitivity=0.3,
            )
        )
    return out


def assert_results_close(batch, scalar) -> None:
    assert set(batch.source_rates) == set(scalar.source_rates)
    for source_id, got in batch.source_rates.items():
        want = scalar.source_rates[source_id]
        for attr in (
            "bw_grant",
            "latency_factor",
            "core_throttle",
            "prefetch_speed",
            "llc_hit",
            "cpu_share",
        ):
            g, w = getattr(got, attr), getattr(want, attr)
            assert abs(g - w) <= TOL * max(1.0, abs(w)), (
                f"{source_id}.{attr}: batch {g!r} != scalar {w!r}"
            )
    assert set(batch.mc_loads) == set(scalar.mc_loads)
    for mc_id, got in batch.mc_loads.items():
        want = scalar.mc_loads[mc_id]
        for attr in ("delivered_gbps", "latency_factor", "saturation"):
            g, w = getattr(got, attr), getattr(want, attr)
            assert abs(g - w) <= TOL * max(1.0, abs(w)), (
                f"mc{mc_id}.{attr}: batch {g!r} != scalar {w!r}"
            )


demands = st.floats(min_value=0.0, max_value=160.0, allow_nan=False)
caps = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBatchVsScalar:
    @given(
        st.lists(demands, min_size=1, max_size=5),
        st.lists(caps, min_size=1, max_size=6),
        fractions,
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar_reference(
        self, demand_list: list[float], cap_list: list[float], fraction: float
    ) -> None:
        solver = make_solver()
        sources = sources_from(demand_list)
        variants = [
            KnobVariant(
                mba_caps=((0, cap), (1, min(1.0, cap + 0.1))),
                prefetch_fractions=((sources[0].source_id, fraction),),
            )
            for cap in cap_list
        ]
        batch = solver.solve_batch(sources, variants)
        assert len(batch) == len(variants)
        for variant, got in zip(variants, batch):
            assert_results_close(got, solver.solve_variant(sources, variant))

    def test_qos_aware_prefetch_branch_agrees(self) -> None:
        solver = make_solver()
        solver.qos_aware_prefetch = True
        sources = sources_from([120.0, 140.0, 90.0])
        variants = [KnobVariant(mba_caps=((0, c),)) for c in (0.2, 0.6, 1.0)]
        batch = solver.solve_batch(sources, variants)
        for variant, got in zip(variants, batch):
            assert_results_close(got, solver.solve_variant(sources, variant))

    def test_empty_variants_and_sources(self) -> None:
        solver = make_solver()
        assert solver.solve_batch(sources_from([10.0]), []) == []
        results = solver.solve_batch([], [KnobVariant(), KnobVariant()])
        assert len(results) == 2
        assert results[0] is results[1]  # the interned empty result

    def test_batch_points_counter(self) -> None:
        solver = make_solver()
        variants = [KnobVariant(mba_caps=((0, c),)) for c in (0.3, 0.5, 0.9)]
        solver.solve_batch(sources_from([50.0, 30.0]), variants)
        assert solver.stats.batch_points == 3
        assert solver.stats.as_dict()["batch_points"] == 3


class TestIncrementalResolve:
    def test_mba_delta_is_incremental_and_bit_identical(self) -> None:
        solver = make_solver()
        sources = sources_from([60.0, 45.0, 25.0])
        solver.solve(sources, signature=solver.solve_signature(sources))
        assert solver.stats.incremental_solves == 0

        solver.mba_caps[1] = 0.4
        second = solver.solve(sources, signature=solver.solve_signature(sources))
        assert solver.stats.incremental_solves == 1

        # The delta path must be indistinguishable from solving cold.
        fresh = make_solver()
        fresh.mba_caps[1] = 0.4
        full = fresh.solve(sources_from([60.0, 45.0, 25.0]))
        assert second.source_rates == full.source_rates
        assert second.mc_loads == full.mc_loads

    def test_repeated_knob_ticks_accumulate(self) -> None:
        solver = make_solver()
        sources = sources_from([80.0, 55.0])
        solver.solve(sources, signature=solver.solve_signature(sources))
        for step, cap in enumerate((0.9, 0.7, 0.5, 0.3), start=1):
            solver.mba_caps[0] = cap
            solver.solve(sources, signature=solver.solve_signature(sources))
            assert solver.stats.incremental_solves == step
        assert solver.stats.as_dict()["incremental_solves"] == 4

    def test_structural_change_falls_back_to_full_solve(self) -> None:
        solver = make_solver()
        sources = sources_from([70.0, 40.0])
        solver.solve(sources, signature=solver.solve_signature(sources))

        # A demand change is not one of the recognized delta shapes.
        changed = sources_from([70.0, 40.0])
        changed[0] = TrafficSource(
            source_id="s0",
            task_id="s0",
            demand_gbps=95.0,
            mem_weights={0: 0.75, 1: 0.25},
            cores=frozenset(range(0, 4)),
            threads=4,
            priority=Priority.HIGH,
            working_set_mb=4.0,
            llc_intensity=0.5,
            llc_miss_traffic_gain=0.4,
            llc_speed_sensitivity=0.3,
            smt_sensitivity=0.3,
        )
        solver.solve(changed, signature=solver.solve_signature(changed))
        assert solver.stats.incremental_solves == 0

    def test_snc_flip_falls_back_to_full_solve(self) -> None:
        solver = make_solver()
        sources = sources_from([70.0, 40.0])
        solver.solve(sources, signature=solver.solve_signature(sources))
        solver.snc_enabled = True
        solver.solve(sources, signature=solver.solve_signature(sources))
        assert solver.stats.incremental_solves == 0
