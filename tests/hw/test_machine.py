"""Tests for machine assembly and the recompute loop."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.hw.contention import SolveResult, TrafficSource
from repro.hw.machine import Machine
from repro.sim import Simulator


class RecordingTask:
    """Minimal AttachedTask capturing the calls it receives."""

    def __init__(self, task_id: str = "t", demand: float = 10.0) -> None:
        self.task_id = task_id
        self.demand = demand
        self.syncs: list[float] = []
        self.rates: list[SolveResult] = []

    def traffic_sources(self) -> list[TrafficSource]:
        return [
            TrafficSource(
                source_id=f"{self.task_id}:host",
                task_id=self.task_id,
                demand_gbps=self.demand,
                mem_weights={0: 1.0},
                cores=frozenset({0, 1}),
                threads=2,
            )
        ]

    def sync(self, now: float) -> None:
        self.syncs.append(now)

    def apply_rates(self, result: SolveResult, now: float) -> None:
        self.rates.append(result)


class TestAttachDetach:
    def test_attach_triggers_solve(self, machine: Machine) -> None:
        task = RecordingTask()
        machine.attach(task)
        assert len(task.rates) == 1
        assert machine.state.mc_loads[0].demand_gbps > 0

    def test_duplicate_attach_rejected(self, machine: Machine) -> None:
        machine.attach(RecordingTask("a"))
        with pytest.raises(TopologyError):
            machine.attach(RecordingTask("a"))

    def test_detach_removes_sources(self, machine: Machine) -> None:
        machine.attach(RecordingTask("a"))
        machine.detach("a")
        assert machine.state.mc_loads[0].demand_gbps == 0

    def test_detach_unknown_raises(self, machine: Machine) -> None:
        with pytest.raises(TopologyError):
            machine.detach("ghost")

    def test_task_lookup(self, machine: Machine) -> None:
        task = RecordingTask("a")
        machine.attach(task)
        assert machine.task("a") is task
        assert machine.tasks() == [task]
        with pytest.raises(TopologyError):
            machine.task("b")


class TestRecompute:
    def test_notify_syncs_before_rates(self, machine: Machine) -> None:
        task = RecordingTask()
        machine.attach(task)
        machine.sim.run_until(1.0)
        machine.notify_change()
        assert task.syncs[-1] == 1.0
        assert len(task.rates) >= 2

    def test_two_tasks_see_each_other(self, machine: Machine) -> None:
        a = RecordingTask("a", demand=30.0)
        machine.attach(a)
        grant_alone = machine.state.rates_for("a:host").bw_grant
        machine.attach(RecordingTask("b", demand=30.0))
        grant_shared = machine.state.rates_for("a:host").bw_grant
        assert grant_shared <= grant_alone

    def test_snc_toggle_resolves(self, machine: Machine) -> None:
        machine.attach(RecordingTask())
        before = len(machine.state.source_rates)
        machine.set_snc(True)
        assert machine.snc_enabled
        assert len(machine.state.source_rates) == before

    def test_priority_mode_toggle(self, machine: Machine) -> None:
        machine.set_priority_mode(True)
        assert machine.solver.priority_mode


class TestTelemetryIntegration:
    def test_bandwidth_integrates_over_time(self, spec) -> None:
        sim = Simulator()
        machine = Machine(spec, sim)
        machine.attach(RecordingTask(demand=10.0))
        sim.run_until(2.0)
        machine.telemetry.advance(sim.now)
        moved = machine.telemetry.snapshot.mc_bytes.get(0, 0.0)
        # 10 GB/s (plus prefetch inflation) for 2 s.
        assert moved == pytest.approx(10.0 * 1.3 * 2.0, rel=0.01)
