"""Tests for the UPI cross-socket link model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.interconnect import UpiModel
from repro.hw.spec import UpiSpec


@pytest.fixture
def upi() -> UpiModel:
    return UpiModel(UpiSpec())


class TestUpiModel:
    def test_underload(self, upi: UpiModel) -> None:
        load = upi.resolve(5.0)
        assert load.grant_ratio == 1.0
        assert load.utilization < 1.0

    def test_overload_grants_proportionally(self, upi: UpiModel) -> None:
        peak = upi.spec.peak_bw_gbps
        load = upi.resolve(2 * peak)
        assert load.grant_ratio == pytest.approx(0.5)
        assert load.utilization == pytest.approx(1.0)

    def test_remote_latency_grows_with_load(self, upi: UpiModel) -> None:
        low = upi.resolve(1.0).remote_latency_factor
        high = upi.resolve(upi.spec.peak_bw_gbps * 0.95).remote_latency_factor
        assert high > low > 1.0

    def test_remote_latency_capped(self, upi: UpiModel) -> None:
        assert upi.resolve(100 * upi.spec.peak_bw_gbps).remote_latency_factor <= 8.0

    def test_coherence_demand(self, upi: UpiModel) -> None:
        assert upi.coherence_demand(10.0) == pytest.approx(
            10.0 * upi.spec.coherence_overhead
        )

    def test_home_injection_scales_with_sensitivity(self, upi: UpiModel) -> None:
        low = upi.home_latency_injection(0.8, remote_sensitivity=0.7)
        high = upi.home_latency_injection(0.8, remote_sensitivity=2.6)
        assert high > low
        assert upi.home_latency_injection(0.0, 2.6) == 0.0

    def test_negative_demand_raises(self, upi: UpiModel) -> None:
        with pytest.raises(ConfigurationError):
            upi.resolve(-1.0)

    def test_invalid_spec_raises(self) -> None:
        with pytest.raises(ConfigurationError):
            UpiModel(UpiSpec(peak_bw_gbps=0))
