"""Tests for the prefetcher model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.prefetcher import PrefetchProfile, PrefetcherBank


class TestPrefetchProfile:
    def test_demand_interpolates(self) -> None:
        profile = PrefetchProfile(traffic_gain=1.3, off_demand=0.5, off_speed=0.5)
        assert profile.demand_factor(1.0) == pytest.approx(1.3)
        assert profile.demand_factor(0.0) == pytest.approx(0.5)
        assert profile.demand_factor(0.5) == pytest.approx(0.9)

    def test_speed_interpolates(self) -> None:
        profile = PrefetchProfile(off_speed=0.6)
        assert profile.speed_factor(1.0) == pytest.approx(1.0)
        assert profile.speed_factor(0.0) == pytest.approx(0.6)

    def test_fraction_clamped(self) -> None:
        profile = PrefetchProfile()
        assert profile.demand_factor(2.0) == profile.demand_factor(1.0)
        assert profile.speed_factor(-1.0) == profile.speed_factor(0.0)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            PrefetchProfile(traffic_gain=0.9)
        with pytest.raises(ConfigurationError):
            PrefetchProfile(off_demand=0.0)
        with pytest.raises(ConfigurationError):
            PrefetchProfile(off_speed=1.5)


class TestPrefetcherBank:
    def test_starts_enabled(self) -> None:
        bank = PrefetcherBank(4)
        assert all(bank.is_enabled(c) for c in range(4))

    def test_set_and_fraction(self) -> None:
        bank = PrefetcherBank(4)
        bank.set_enabled(0, False)
        bank.set_enabled(1, False)
        assert bank.enabled_fraction(frozenset({0, 1, 2, 3})) == pytest.approx(0.5)

    def test_empty_core_set_fraction_is_one(self) -> None:
        bank = PrefetcherBank(4)
        assert bank.enabled_fraction(frozenset()) == 1.0

    def test_enable_all(self) -> None:
        bank = PrefetcherBank(4)
        bank.set_enabled(2, False)
        bank.enable_all()
        assert bank.is_enabled(2)

    def test_out_of_range(self) -> None:
        bank = PrefetcherBank(4)
        with pytest.raises(ConfigurationError):
            bank.set_enabled(4, False)
        with pytest.raises(ConfigurationError):
            PrefetcherBank(0)
