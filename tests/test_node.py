"""Tests for the managed node."""

from __future__ import annotations

from repro.node import ACCEL_SOCKET, HI_SUBDOMAIN, LO_SUBDOMAIN, Node
from repro.control.actuators import HostControlPlane


class TestNodeTopologyHelpers:
    def test_constants(self) -> None:
        assert ACCEL_SOCKET == 0
        assert HI_SUBDOMAIN == 0
        assert LO_SUBDOMAIN == 1

    def test_core_helpers_partition_socket(self, node: Node) -> None:
        hi = node.hi_subdomain_cores()
        lo = node.lo_subdomain_cores()
        assert set(hi) | set(lo) == set(node.accel_socket_cores())
        assert not set(hi) & set(lo)


class TestPrefetcherHelpers:
    """Prefetcher writes go through the control plane; the node only reads.

    Regression for the removed ``Node.set_lo_prefetchers_enabled`` bypass:
    the journaled :class:`HostControlPlane` is the only write path.
    """

    def test_all_enabled_initially(self, node: Node) -> None:
        assert node.lo_prefetchers_enabled() == len(node.lo_subdomain_cores())

    def test_node_write_bypass_removed(self, node: Node) -> None:
        assert not hasattr(node, "set_lo_prefetchers_enabled")

    def test_set_count(self, node: Node) -> None:
        HostControlPlane(node).set_lo_prefetchers(3)
        assert node.lo_prefetchers_enabled() == 3
        # Lowest core ids keep prefetching.
        cores = node.lo_subdomain_cores()
        assert node.machine.prefetchers.is_enabled(cores[0])
        assert not node.machine.prefetchers.is_enabled(cores[-1])

    def test_set_count_clamped(self, node: Node) -> None:
        plane = HostControlPlane(node)
        plane.set_lo_prefetchers(-3)
        assert node.lo_prefetchers_enabled() == 0
        plane.set_lo_prefetchers(999)
        assert node.lo_prefetchers_enabled() == len(node.lo_subdomain_cores())

    def test_hi_subdomain_untouched(self, node: Node) -> None:
        HostControlPlane(node).set_lo_prefetchers(0)
        assert all(
            node.machine.prefetchers.is_enabled(c)
            for c in node.hi_subdomain_cores()
        )
