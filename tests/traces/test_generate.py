"""Synthetic trace generator: determinism, rate calibration, knob effects."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces import (
    TraceFamily,
    TraceGenConfig,
    TraceTenant,
    expected_requests,
    generate_trace,
)


def _config(**overrides) -> TraceGenConfig:
    defaults = dict(seed=7, duration_s=600.0, rate_qps=50.0)
    defaults.update(overrides)
    return TraceGenConfig(**defaults)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a = generate_trace(_config())
        b = generate_trace(_config())
        assert np.array_equal(a.arrivals_s, b.arrivals_s)
        assert np.array_equal(a.tenant_ids, b.tenant_ids)
        assert np.array_equal(a.family_ids, b.family_ids)

    def test_different_seed_differs(self):
        a = generate_trace(_config(seed=7))
        b = generate_trace(_config(seed=8))
        assert not np.array_equal(a.arrivals_s, b.arrivals_s)

    def test_adding_a_tenant_preserves_existing_streams(self):
        """Per-tenant RNG streams: tenant 0's arrivals depend only on its
        own seed and base rate, not on how many tenants share the trace."""
        a = generate_trace(_config(rate_qps=30.0, tenants=(TraceTenant("a"),)))
        b = generate_trace(
            _config(
                rate_qps=60.0,  # equal weights: tenant 0 keeps 30 qps
                tenants=(TraceTenant("a"), TraceTenant("x")),
            )
        )
        assert np.array_equal(a.arrivals_s, b.arrivals_s[b.tenant_ids == 0])


class TestRateCalibration:
    def test_diurnal_rate_integral_matches_request_count(self):
        """Pure-diurnal traces are Poisson with mean = the rate integral."""
        config = _config(
            seed=2,
            duration_s=3600.0,
            rate_qps=30.0,
            diurnal_amplitude=0.5,
            burst_multiplier=1.0,
            churn_idle_s=0.0,
        )
        trace = generate_trace(config)
        expected = expected_requests(config)
        assert len(trace) == pytest.approx(expected, abs=5 * math.sqrt(expected))

    def test_flat_expected_count_is_rate_times_duration(self):
        config = _config(diurnal_amplitude=0.0)
        assert expected_requests(config) == pytest.approx(
            config.rate_qps * config.duration_s
        )

    def test_full_day_diurnal_integral_is_mean_one(self):
        config = _config(duration_s=86400.0, diurnal_amplitude=0.4)
        assert expected_requests(config) == pytest.approx(
            config.rate_qps * config.duration_s, rel=1e-9
        )

    def test_burst_normalization_keeps_long_run_mean(self):
        """Bursty traces keep rate_qps as the long-run mean (within noise)."""
        config = _config(
            seed=5,
            duration_s=7200.0,
            rate_qps=20.0,
            diurnal_amplitude=0.0,
            burst_multiplier=6.0,
            burst_on_s=20.0,
            burst_off_s=80.0,
        )
        trace = generate_trace(config)
        assert len(trace) == pytest.approx(
            config.rate_qps * config.duration_s, rel=0.10
        )

    def test_tenant_weights_split_traffic(self):
        config = _config(
            duration_s=2000.0,
            rate_qps=50.0,
            tenants=(
                TraceTenant("heavy", weight=3.0),
                TraceTenant("light", weight=1.0),
            ),
            burst_multiplier=1.0,
        )
        counts = generate_trace(config).tenant_request_counts()
        assert counts[0] / counts.sum() == pytest.approx(0.75, abs=0.03)


class TestKnobs:
    def test_bursts_increase_variance(self):
        """ON/OFF modulation makes per-second counts over-dispersed."""
        flat = generate_trace(
            _config(seed=3, duration_s=3600.0, diurnal_amplitude=0.0,
                    burst_multiplier=1.0)
        )
        bursty = generate_trace(
            _config(seed=3, duration_s=3600.0, diurnal_amplitude=0.0,
                    burst_multiplier=8.0, burst_on_s=20.0, burst_off_s=180.0)
        )
        bins = np.arange(0.0, 3600.0 + 1.0, 10.0)
        flat_counts = np.histogram(flat.arrivals_s, bins=bins)[0]
        bursty_counts = np.histogram(bursty.arrivals_s, bins=bins)[0]
        flat_index = flat_counts.var() / flat_counts.mean()
        bursty_index = bursty_counts.var() / bursty_counts.mean()
        assert bursty_index > 2.0 * flat_index

    def test_churn_creates_idle_gaps(self):
        """A churning tenant has long spans with no arrivals at all."""
        config = _config(
            seed=9,
            duration_s=3600.0,
            rate_qps=30.0,
            tenants=(TraceTenant("solo"),),
            diurnal_amplitude=0.0,
            burst_multiplier=1.0,
            churn_active_s=300.0,
            churn_idle_s=300.0,
        )
        trace = generate_trace(config)
        gaps = np.diff(trace.arrivals_s)
        # The largest inter-arrival gap spans an idle period — orders of
        # magnitude above the ~1/60 s mean gap while active.
        assert gaps.max() > 60.0

    def test_diurnal_peak_hour_shifts_load(self):
        config = _config(
            seed=4,
            duration_s=86400.0,
            rate_qps=2.0,
            diurnal_amplitude=0.8,
            diurnal_peak_hour=6.0,
            burst_multiplier=1.0,
        )
        trace = generate_trace(config)
        hours = (trace.arrivals_s // 3600).astype(int)
        by_hour = np.bincount(hours, minlength=24)
        peak_window = by_hour[5:8].sum() / 3
        trough_window = (by_hour[17:20]).sum() / 3
        assert peak_window > 2.0 * trough_window

    def test_family_mix_follows_weights(self):
        config = _config(
            duration_s=2000.0,
            families=(
                TraceFamily("small", demand=0.5, weight=0.8),
                TraceFamily("big", demand=4.0, weight=0.2),
            ),
        )
        trace = generate_trace(config)
        share = (trace.family_ids == 0).mean()
        assert share == pytest.approx(0.8, abs=0.03)
        assert set(np.unique(trace.demands)) <= {0.5, 4.0}

    def test_scales_to_a_million_requests(self):
        """The headline scale point: 1M requests generate vectorized."""
        config = _config(
            seed=1, duration_s=86400.0, rate_qps=1_000_000 / 86400.0
        )
        trace = generate_trace(config)
        assert len(trace) == pytest.approx(1_000_000, rel=0.05)
        assert np.all(np.diff(trace.arrivals_s) >= 0)


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            _config(rate_qps=0.0)
        with pytest.raises(ConfigurationError):
            _config(diurnal_amplitude=1.0)
        with pytest.raises(ConfigurationError):
            _config(burst_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            _config(churn_idle_s=-1.0)
        with pytest.raises(ConfigurationError):
            _config(tenants=())
