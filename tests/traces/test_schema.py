"""Trace schema: validation, round-trip fidelity, columnar accessors."""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces import (
    TRACE_SCHEMA,
    Trace,
    TraceFamily,
    TraceGenConfig,
    TraceTenant,
    generate_trace,
    load_trace,
    save_trace,
)


def _tiny_trace(**overrides) -> Trace:
    fields = dict(
        arrivals_s=np.array([0.5, 1.0, 1.0, 3.25]),
        tenant_ids=np.array([0, 1, 0, 1]),
        family_ids=np.array([0, 0, 1, 0]),
        tenants=(TraceTenant("a"), TraceTenant("b", slo_p99_ms=120.0)),
        families=(TraceFamily("nominal"), TraceFamily("long", demand=2.0)),
        duration_s=4.0,
    )
    fields.update(overrides)
    return Trace(**fields)


class TestTraceValidation:
    def test_len_and_columns(self):
        trace = _tiny_trace()
        assert len(trace) == 4
        assert trace.arrivals_s.dtype == np.float64
        assert trace.tenant_ids.dtype == np.int32

    def test_demands_gather_family_table(self):
        trace = _tiny_trace()
        assert trace.demands.tolist() == [1.0, 1.0, 2.0, 1.0]

    def test_tenant_request_counts(self):
        trace = _tiny_trace()
        assert trace.tenant_request_counts().tolist() == [2, 2]

    def test_mean_rate(self):
        assert _tiny_trace().mean_rate_qps() == pytest.approx(1.0)

    def test_rejects_decreasing_arrivals(self):
        with pytest.raises(ConfigurationError):
            _tiny_trace(arrivals_s=np.array([1.0, 0.5, 2.0, 3.0]))

    def test_rejects_arrival_past_duration(self):
        with pytest.raises(ConfigurationError):
            _tiny_trace(duration_s=3.0)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ConfigurationError):
            _tiny_trace(tenant_ids=np.array([0, 1, 0, 2]))
        with pytest.raises(ConfigurationError):
            _tiny_trace(family_ids=np.array([0, 0, 1, 5]))

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ConfigurationError):
            _tiny_trace(tenant_ids=np.array([0, 1, 0]))

    def test_rejects_bad_tenant_and_family_specs(self):
        with pytest.raises(ConfigurationError):
            TraceTenant("")
        with pytest.raises(ConfigurationError):
            TraceTenant("x", slo_p99_ms=0.0)
        with pytest.raises(ConfigurationError):
            TraceFamily("x", demand=0.0)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["trace.jsonl", "trace.jsonl.gz"])
    def test_save_load_bit_exact(self, tmp_path, name):
        trace = generate_trace(
            TraceGenConfig(seed=11, duration_s=30.0, rate_qps=40.0)
        )
        path = tmp_path / name
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(trace.arrivals_s, loaded.arrivals_s)
        assert np.array_equal(trace.tenant_ids, loaded.tenant_ids)
        assert np.array_equal(trace.family_ids, loaded.family_ids)
        assert trace.tenants == loaded.tenants
        assert trace.families == loaded.families
        assert loaded.duration_s == trace.duration_s
        assert dict(loaded.meta) == dict(trace.meta)

    def test_gzip_actually_compresses(self, tmp_path):
        trace = generate_trace(
            TraceGenConfig(seed=1, duration_s=60.0, rate_qps=60.0)
        )
        plain = tmp_path / "t.jsonl"
        packed = tmp_path / "t.jsonl.gz"
        save_trace(trace, plain)
        save_trace(trace, packed)
        with gzip.open(packed, "rt", encoding="utf-8") as fh:
            assert json.loads(fh.readline())["schema"] == TRACE_SCHEMA
        assert packed.stat().st_size < plain.stat().st_size

    def test_header_declares_schema_and_count(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["requests"] == 4
        assert [t["name"] for t in header["tenants"]] == ["a", "b"]

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro.trace/999", "duration_s": 1}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_rejects_count_mismatch(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one row
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        trace = _tiny_trace()
        save_trace(trace, path)
        text = path.read_text().replace("[0.5,0,0]", "not json")
        path.write_text(text)
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_missing_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read trace"):
            load_trace(tmp_path / "absent.jsonl.gz")

    def test_save_creates_parent_directories(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "nested" / "dir" / "t.jsonl"
        save_trace(trace, path)
        assert len(load_trace(path)) == len(trace)
