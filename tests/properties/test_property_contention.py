"""Property-based tests on contention-solver invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.contention import Priority, TrafficSource
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec
from repro.sim import Simulator


def make_solver():
    return Machine(MachineSpec(), Simulator()).solver


demands = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
weights2 = st.tuples(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)


def sources_from(demand_list: list[float]) -> list[TrafficSource]:
    out = []
    for index, demand in enumerate(demand_list):
        core = index % 16
        out.append(
            TrafficSource(
                source_id=f"s{index}",
                task_id=f"s{index}",
                demand_gbps=demand,
                mem_weights={index % 2: 1.0},
                cores=frozenset({core}),
                threads=1,
            )
        )
    return out


class TestSolverInvariants:
    @given(st.lists(demands, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_rate_factors_in_valid_ranges(self, demand_list: list[float]) -> None:
        result = make_solver().solve(sources_from(demand_list))
        for rates in result.source_rates.values():
            assert 0.0 < rates.bw_grant <= 1.0
            assert rates.latency_factor >= 0.5
            assert 0.0 < rates.core_throttle <= 1.0
            assert 0.0 < rates.prefetch_speed <= 1.0
            assert 0.0 <= rates.llc_hit <= 1.0
            assert 0.0 < rates.cpu_share <= 1.0

    @given(st.lists(demands, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_delivered_never_exceeds_peak(self, demand_list: list[float]) -> None:
        result = make_solver().solve(sources_from(demand_list))
        for mc_id, load in result.mc_loads.items():
            spec = MachineSpec().sockets[mc_id // 2].memory_controllers[mc_id % 2]
            assert load.delivered_gbps <= spec.peak_bw_gbps + 1e-9
            assert 0.0 <= load.utilization <= 1.0
            assert 0.0 <= load.saturation <= 1.0

    @given(demands, demands)
    @settings(max_examples=60, deadline=None)
    def test_more_background_demand_never_helps(
        self, victim_demand: float, extra: float
    ) -> None:
        solver = make_solver()
        victim = TrafficSource(
            source_id="v", task_id="v", demand_gbps=max(victim_demand, 0.1),
            mem_weights={0: 1.0}, cores=frozenset({0}), threads=1,
        )
        background_light = TrafficSource(
            source_id="b", task_id="b", demand_gbps=extra,
            mem_weights={0: 1.0}, cores=frozenset({4, 5}), threads=2,
        )
        background_heavy = TrafficSource(
            source_id="b", task_id="b", demand_gbps=extra + 25.0,
            mem_weights={0: 1.0}, cores=frozenset({4, 5}), threads=2,
        )
        light = solver.solve([victim, background_light]).rates_for("v")
        heavy = solver.solve([victim, background_heavy]).rates_for("v")
        assert heavy.bw_grant <= light.bw_grant + 1e-9
        assert heavy.latency_factor >= light.latency_factor - 1e-9
        assert heavy.core_throttle <= light.core_throttle + 1e-9

    @given(st.floats(min_value=1.0, max_value=150.0))
    @settings(max_examples=40, deadline=None)
    def test_priority_mode_never_worse_for_hi(self, lo_demand: float) -> None:
        solver = make_solver()
        hi = TrafficSource(
            source_id="hi", task_id="hi", demand_gbps=5.0,
            mem_weights={0: 0.5, 1: 0.5}, cores=frozenset({0, 1}),
            threads=2, priority=Priority.HIGH,
        )
        lo = TrafficSource(
            source_id="lo", task_id="lo", demand_gbps=lo_demand,
            mem_weights={0: 0.5, 1: 0.5}, cores=frozenset(range(4, 12)),
            threads=8,
        )
        plain = solver.solve([hi, lo]).rates_for("hi")
        solver.priority_mode = True
        shielded = solver.solve([hi, lo]).rates_for("hi")
        assert shielded.bw_grant >= plain.bw_grant - 1e-9
        assert shielded.latency_factor <= plain.latency_factor + 1e-9
