"""Property-based tests on the LLC model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.llc import LlcModel, LlcRequest
from repro.hw.spec import LlcSpec

working_sets = st.lists(
    st.floats(min_value=0.1, max_value=128.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


def requests_from(sizes: list[float]) -> list[LlcRequest]:
    return [
        LlcRequest(task_id=f"t{i}", working_set_mb=ws, clos=0)
        for i, ws in enumerate(sizes)
    ]


class TestLlcProperties:
    @given(working_sets)
    @settings(max_examples=80, deadline=None)
    def test_hit_fractions_in_unit_interval(self, sizes: list[float]) -> None:
        llc = LlcModel(LlcSpec())
        fractions = llc.hit_fractions(requests_from(sizes))
        assert all(0.0 <= f <= 1.0 for f in fractions.values())

    @given(working_sets)
    @settings(max_examples=80, deadline=None)
    def test_resident_bytes_bounded_by_capacity(self, sizes: list[float]) -> None:
        llc = LlcModel(LlcSpec())
        fractions = llc.hit_fractions(requests_from(sizes))
        resident = sum(ws * fractions[f"t{i}"] for i, ws in enumerate(sizes))
        assert resident <= llc.spec.capacity_mb + 1e-6

    @given(working_sets, st.floats(min_value=0.1, max_value=64.0))
    @settings(max_examples=60, deadline=None)
    def test_adding_a_sharer_never_helps(
        self, sizes: list[float], intruder_ws: float
    ) -> None:
        llc = LlcModel(LlcSpec())
        base = llc.hit_fractions(requests_from(sizes))
        crowded = llc.hit_fractions(
            requests_from(sizes)
            + [LlcRequest(task_id="intruder", working_set_mb=intruder_ws, clos=0)]
        )
        for i in range(len(sizes)):
            assert crowded[f"t{i}"] <= base[f"t{i}"] + 1e-9

    @given(st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_cat_partition_is_inviolable(self, intruder_intensity: float) -> None:
        llc = LlcModel(LlcSpec(capacity_mb=32, ways=16))
        llc.set_clos_mask(1, 0b111111)  # 12 MB exclusive
        llc.set_clos_mask(0, 0xFFFF & ~0b111111)
        fractions = llc.hit_fractions(
            [
                LlcRequest(task_id="ml", working_set_mb=10.0, clos=1),
                LlcRequest(
                    task_id="agg", working_set_mb=100.0, clos=0,
                    intensity=intruder_intensity,
                ),
            ]
        )
        assert fractions["ml"] == 1.0
