"""Property-based tests on Algorithm 2's plan invariants.

Whatever sequence of THROTTLE/BOOST/NOP the controller emits, the plans must
stay inside their bounds, prefetchers must never exceed the current core
count... and the procedures must be exactly one-step (no action moves a knob
by more than the algorithm allows).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import (
    Action,
    HiPriorityPlan,
    LoPriorityPlan,
    config_hi_priority,
    config_lo_priority,
)

actions = st.lists(st.sampled_from(list(Action)), min_size=1, max_size=60)


class TestHiPlanProperties:
    @given(actions, st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_stays_in_bounds(self, seq: list[Action], max_cores: int) -> None:
        plan = HiPriorityPlan(
            core_num=max_cores, min_core_num=1, max_core_num=max_cores
        )
        for action in seq:
            plan = config_hi_priority(plan, action)
            assert plan.min_core_num <= plan.core_num <= plan.max_core_num

    @given(actions)
    @settings(max_examples=80, deadline=None)
    def test_single_step_moves(self, seq: list[Action]) -> None:
        plan = HiPriorityPlan(core_num=4, min_core_num=1, max_core_num=8)
        for action in seq:
            before = plan.core_num
            plan = config_hi_priority(plan, action)
            assert abs(plan.core_num - before) <= 1

    @given(actions, st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_zero_floor_allows_full_eviction(
        self, seq: list[Action], max_cores: int
    ) -> None:
        """With ``min_core_num=0`` the plan may reach — but never pass —
        zero, and any later BOOST recovers from the parked state."""
        plan = HiPriorityPlan(
            core_num=max_cores, min_core_num=0, max_core_num=max_cores
        )
        for action in seq:
            before = plan.core_num
            plan = config_hi_priority(plan, action)
            assert 0 <= plan.core_num <= plan.max_core_num
            if before == 0 and action is Action.BOOST:
                assert plan.core_num == 1

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_sustained_throttle_reaches_zero(self, max_cores: int) -> None:
        plan = HiPriorityPlan(
            core_num=max_cores, min_core_num=0, max_core_num=max_cores
        )
        for _ in range(max_cores):
            plan = config_hi_priority(plan, Action.THROTTLE)
        assert plan.core_num == 0
        # Further throttles are absorbed at the floor.
        assert config_hi_priority(plan, Action.THROTTLE).core_num == 0


class TestLoPlanProperties:
    @given(actions, st.integers(min_value=2, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_stays_in_bounds(self, seq: list[Action], cores: int) -> None:
        plan = LoPriorityPlan(
            core_num=cores, prefetcher_num=cores, min_core_num=1,
            max_core_num=cores,
        )
        for action in seq:
            plan = config_lo_priority(plan, action)
            assert plan.min_core_num <= plan.core_num <= plan.max_core_num
            assert 0 <= plan.prefetcher_num <= plan.max_core_num

    @given(actions)
    @settings(max_examples=80, deadline=None)
    def test_throttle_ordering_prefetchers_before_cores(
        self, seq: list[Action]
    ) -> None:
        plan = LoPriorityPlan(
            core_num=8, prefetcher_num=8, min_core_num=1, max_core_num=8
        )
        for action in seq:
            before = plan
            plan = config_lo_priority(plan, action)
            if action is Action.THROTTLE and before.prefetcher_num > 0:
                # Cores are untouched while prefetchers remain.
                assert plan.core_num == before.core_num
                assert plan.prefetcher_num == before.prefetcher_num // 2

    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_boost_from_any_state_reaches_maximum(self, prefetchers: int) -> None:
        plan = LoPriorityPlan(
            core_num=4, prefetcher_num=min(prefetchers, 4),
            min_core_num=1, max_core_num=8,
        )
        for _ in range(40):
            plan = config_lo_priority(plan, Action.BOOST)
        assert plan.core_num == 8
        assert plan.prefetcher_num == 8

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_throttle_from_any_state_reaches_floor(
        self, cores: int, prefetchers: int
    ) -> None:
        plan = LoPriorityPlan(
            core_num=cores, prefetcher_num=min(prefetchers, 8),
            min_core_num=1, max_core_num=8,
        )
        for _ in range(40):
            plan = config_lo_priority(plan, Action.THROTTLE)
        assert plan.core_num == 1
        assert plan.prefetcher_num == 0

    @given(actions)
    @settings(max_examples=60, deadline=None)
    def test_nop_is_identity(self, seq: list[Action]) -> None:
        plan = LoPriorityPlan(
            core_num=5, prefetcher_num=3, min_core_num=1, max_core_num=8
        )
        for action in seq:
            if action is Action.NOP:
                assert config_lo_priority(plan, action) == plan
            plan = config_lo_priority(plan, action)
