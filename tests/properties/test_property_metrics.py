"""Property-based tests on metric invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.percentile import StreamingPercentiles
from repro.metrics.slowdown import arithmetic_mean, geometric_mean, harmonic_mean
from repro.metrics.throughput import ThroughputMeter

positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestMeanInequalities:
    @given(st.lists(positive_floats, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_hm_le_gm_le_am(self, values: list[float]) -> None:
        hm = harmonic_mean(values)
        gm = geometric_mean(values)
        am = arithmetic_mean(values)
        assert hm <= gm * (1 + 1e-9)
        assert gm <= am * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_means_within_range(self, values: list[float]) -> None:
        for mean in (harmonic_mean, geometric_mean, arithmetic_mean):
            assert min(values) - 1e-9 <= mean(values) <= max(values) + 1e-9


class TestPercentileProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_below_cap(self, values: list[float]) -> None:
        p = StreamingPercentiles()
        for v in values:
            p.add(v)
        for q in (0, 25, 50, 95, 100):
            assert p.percentile(q) == np.percentile(values, q)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_quantile(self, values: list[float]) -> None:
        p = StreamingPercentiles()
        for v in values:
            p.add(v)
        quantiles = [p.percentile(q) for q in (5, 25, 50, 75, 95)]
        assert quantiles == sorted(quantiles)


class TestThroughputProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=2.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_units_monotone_in_time(self, segments) -> None:
        meter = ThroughputMeter()
        now = 0.0
        last_units = 0.0
        for dt, rate in segments:
            meter.set_rate(rate, now=now)
            now += dt
            meter.sync(now)
            assert meter.units >= last_units - 1e-9
            last_units = meter.units
