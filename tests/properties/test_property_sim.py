"""Property-based tests on the simulation engine and fluid work."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.work import FluidWork

times = st.lists(
    st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


class TestEngineProperties:
    @given(times)
    @settings(max_examples=60, deadline=None)
    def test_events_dispatch_in_nondecreasing_time(self, schedule: list[float]) -> None:
        sim = Simulator()
        seen: list[float] = []
        for t in schedule:
            sim.at(t, lambda: seen.append(sim.now))
        sim.run_until(max(schedule))
        assert seen == sorted(seen)
        assert len(seen) == len(schedule)

    @given(times)
    @settings(max_examples=60, deadline=None)
    def test_cancelled_events_never_fire(self, schedule: list[float]) -> None:
        sim = Simulator()
        fired: list[int] = []
        handles = [
            sim.at(t, lambda i=i: fired.append(i)) for i, t in enumerate(schedule)
        ]
        for handle in handles[::2]:
            handle.cancel()
        sim.run_until(max(schedule))
        assert all(i % 2 == 1 for i in fired)


class TestFluidWorkProperties:
    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=5.0),   # dt
                st.floats(min_value=0.0, max_value=10.0),    # rate
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservation_of_work(
        self, amount: float, segments: list[tuple[float, float]]
    ) -> None:
        work = FluidWork(amount)
        now = 0.0
        integral = 0.0
        for dt, rate in segments:
            work.set_rate(rate, now=now)
            now += dt
            integral += rate * dt
        work.sync(now)
        expected = max(0.0, amount - integral)
        assert work.remaining <= amount
        assert abs(work.remaining - expected) < 1e-6 or work.remaining == 0.0

    @given(st.floats(min_value=0.1, max_value=50.0), st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_eta_consistency(self, amount: float, rate: float) -> None:
        work = FluidWork(amount)
        work.set_rate(rate, now=0.0)
        eta = work.eta()
        work.sync(eta)
        assert work.done
