"""Tests for the dynamic-churn ablation."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_churn import (
    format_ablation_churn,
    run_ablation_churn,
)


@pytest.fixture(scope="module")
def kelp_churn():
    return run_ablation_churn("KP", quiet=12.0, burst=15.0, recovery=15.0,
                              warmup=4.0)


class TestChurn:
    def test_three_phases(self, kelp_churn) -> None:
        assert [p.name for p in kelp_churn.phases] == [
            "quiet", "burst", "recovered",
        ]

    def test_quiet_phase_unharmed(self, kelp_churn) -> None:
        assert kelp_churn.phase("quiet").ml_perf_norm > 0.95

    def test_controller_throttles_during_burst_only(self, kelp_churn) -> None:
        assert kelp_churn.phase("burst").lo_prefetchers_at_end < 8
        assert kelp_churn.phase("recovered").lo_prefetchers_at_end == 8

    def test_recovery_is_complete(self, kelp_churn) -> None:
        assert kelp_churn.phase("recovered").ml_perf_norm > 0.95

    def test_kelp_beats_baseline_during_burst(self, kelp_churn) -> None:
        bl = run_ablation_churn("BL", quiet=12.0, burst=15.0, recovery=15.0,
                                warmup=4.0)
        assert (
            kelp_churn.phase("burst").ml_perf_norm
            > bl.phase("burst").ml_perf_norm
        )

    def test_unknown_phase_raises(self, kelp_churn) -> None:
        with pytest.raises(KeyError):
            kelp_churn.phase("nope")

    def test_format(self, kelp_churn) -> None:
        assert "dynamic churn" in format_ablation_churn(kelp_churn)
