"""The fleet-serve experiment family: driver, determinism, wiring."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.fleet_serve import (
    format_fleet_serve,
    parse_schedule,
    run_fleet_serve,
)
from repro.experiments.fleet_trace import run_fleet_trace
from repro.experiments.registry import (
    JOBS_AWARE,
    OBS_AWARE,
    experiment_ids,
    run_experiment,
)
from repro.obs import ObsConfig, RunObserver
from repro.serve import AutoscalerConfig
from repro.traces import TraceGenConfig


def _gen(**overrides) -> TraceGenConfig:
    defaults = dict(seed=5, duration_s=20.0, rate_qps=30.0)
    defaults.update(overrides)
    return TraceGenConfig(**defaults)


def _run(**kwargs):
    defaults = dict(gen=_gen(), nodes=2, warmup=1.0, seed=0)
    defaults.update(kwargs)
    return run_fleet_serve(**defaults)


class TestSchedule:
    def test_parses_and_sorts(self):
        schedule = parse_schedule(
            ["20:routing:random", "5:evict:ads", "10:grow", "10:shrink"]
        )
        assert schedule == (
            (5, "evict", "ads"),
            (10, "grow", None),
            (10, "shrink", None),
            (20, "routing", "random"),
        )

    @pytest.mark.parametrize(
        "spec",
        ["x:grow", "5", "-1:grow", "5:reboot", "5:evict", "5:grow:extra"],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ExperimentError):
            parse_schedule([spec])


class TestDriver:
    def test_plain_serve_matches_fleet_trace(self):
        # Command-free, autoscaler-free serving is the same run as
        # fleet-trace: one orchestrator, stepped instead of batch.
        serve = _run()
        replay = run_fleet_trace(gen=_gen(), nodes=2, warmup=1.0, seed=0)
        assert serve.summaries == replay.summaries
        assert serve.commands == ()

    def test_commands_applied_at_epochs(self):
        result = _run(
            commands=["3:evict:search", "8:admit:search", "8:grow"],
            epoch_s=1.0,
        )
        assert result.commands == (
            (3, "evict:search"), (8, "admit:search"), (8, "grow:2"),
        )
        assert result.summaries[0]["requests_dropped"] > 0
        assert result.snapshots[-1]["nodes_built"] == 3

    def test_autoscaler_appears_in_command_log(self):
        result = _run(
            autoscaler=AutoscalerConfig(
                min_nodes=1, max_nodes=4, epochs_down=2, cooldown_epochs=0
            ),
            epoch_s=1.0,
        )
        assert result.autoscaled
        assert any(
            command.startswith("autoscale-") for _, command in result.commands
        )

    def test_epoch_bookkeeping(self):
        result = _run(epoch_s=1.5)
        assert result.epoch_s == 1.5
        assert result.epochs == len(result.snapshots)
        assert result.snapshots[-1]["time_s"] == result.trace_duration_s

    def test_formatter_renders(self):
        result = _run(commands=["3:evict:search"], epoch_s=1.0)
        text = format_fleet_serve(result)
        assert "fleet-serve:" in text
        assert "commands applied" in text
        assert "epoch     3  evict:search" in text
        assert "fleet efficiency" in text

    def test_rejects_bad_arguments(self):
        with pytest.raises(ExperimentError, match="trials"):
            _run(trials=0)
        with pytest.raises(ExperimentError, match="together"):
            _run(save_path="x.bin")
        with pytest.raises(ExperimentError, match="trials == 1"):
            _run(save_path="x.bin", save_at_epoch=2, trials=2)


class TestDeterminism:
    def test_jobs_do_not_change_results(self):
        plan = dict(
            trials=4,
            commands=["3:evict:search", "8:admit:search"],
            autoscaler=AutoscalerConfig(
                min_nodes=1, max_nodes=4, epochs_down=2, cooldown_epochs=0
            ),
            epoch_s=1.0,
        )
        serial = _run(jobs=1, **plan)
        pooled = _run(jobs=4, **plan)
        assert serial.summaries == pooled.summaries
        assert serial.commands == pooled.commands
        assert serial.snapshots == pooled.snapshots

    def test_save_restore_through_driver(self, tmp_path):
        path = str(tmp_path / "ckpt.bin")
        plan = dict(commands=["3:evict:search", "12:admit:search"], epoch_s=1.0)
        saved = _run(save_path=path, save_at_epoch=6, **plan)
        restored = _run(restore_path=path, **plan)
        assert restored.source == f"restored({path})"
        assert saved.summaries == restored.summaries
        assert saved.snapshots == restored.snapshots
        assert saved.commands == restored.commands


class TestWiring:
    def test_registry_entry(self):
        assert "fleet-serve" in experiment_ids()
        assert "fleet-serve" in JOBS_AWARE
        assert "fleet-serve" in OBS_AWARE

    def test_run_experiment_smoke(self):
        result, text = run_experiment(
            "fleet-serve", gen=_gen(duration_s=10.0), nodes=2, warmup=1.0
        )
        assert result.epochs > 0
        assert "fleet-serve:" in text

    def test_observer_rows(self, tmp_path):
        observer = RunObserver(
            ObsConfig(trace_dir=str(tmp_path)), name="serve-test"
        )
        result = _run(
            gen=_gen(duration_s=10.0),
            commands=["2:evict:search"],
            observer=observer,
        )
        kinds = {record["kind"] for record in observer.records}
        assert {"serve_run", "serve_tenant", "serve_epoch",
                "serve_command"} <= kinds
        epochs = [
            r for r in observer.records if r["kind"] == "serve_epoch"
        ]
        assert len(epochs) == result.epochs
