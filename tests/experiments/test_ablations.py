"""Smoke tests for the ablation drivers (small parameterizations)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_infeed_ratio import (
    format_ablation_infeed_ratio,
    run_ablation_infeed_ratio,
)
from repro.experiments.ablation_knee import format_ablation_knee, run_ablation_knee
from repro.experiments.ablation_tail import format_ablation_tail, run_ablation_tail


class TestInfeedRatio:
    def test_mini_sweep(self) -> None:
        result = run_ablation_infeed_ratio(
            "cnn2", duration=10.0, warmup=3.0, ratios=(0.6, 1.2)
        )
        assert len(result.sensitivity) == 2
        assert all(0 < s <= 1.05 for s in result.sensitivity)
        # More host-bound => at least as sensitive.
        assert result.sensitivity[1] <= result.sensitivity[0] + 0.05
        assert "host/accel" in format_ablation_infeed_ratio(result)


class TestKnee:
    def test_mini_sweep(self) -> None:
        result = run_ablation_knee(
            duration=12.0, warmup=3.0, load_fractions=(0.4, 0.9)
        )
        assert result.qps[1] > result.qps[0]
        assert result.p95_latency_ms[1] > result.p95_latency_ms[0]
        assert "knee" in format_ablation_knee(result)

    def test_knee_fraction_fallback(self) -> None:
        result = run_ablation_knee(
            duration=12.0, warmup=3.0, load_fractions=(0.3, 0.4)
        )
        # Latency barely grows at light load: knee reports the last point.
        assert result.knee_fraction() in result.load_fractions


class TestTailAmplification:
    def test_mini_run(self) -> None:
        result = run_ablation_tail(duration=12.0, shard_counts=(1, 8, 32))
        assert result.bl_stretch >= result.kp_stretch >= 1.0
        assert result.bl_slowdown == sorted(result.bl_slowdown)
        assert result.kp_slowdown[-1] <= result.bl_slowdown[-1]
        assert 0.0 < result.interference_probability < 0.5
        assert "tail amplification" in format_ablation_tail(result)


class TestSensorNoise:
    def test_mini_ladder(self) -> None:
        from repro.experiments.ablation_sensor_noise import (
            LEVELS,
            format_ablation_sensor_noise,
            run_ablation_sensor_noise,
        )

        result = run_ablation_sensor_noise(
            duration=6.0, nodes=2, levels=(LEVELS[0], LEVELS[3])
        )
        clean, severe = result.outcomes
        assert clean.level.name == "clean"
        # The clean control plane loses no writes; the degraded one does.
        assert clean.failed_writes == clean.deferred_writes == 0
        assert severe.failed_writes + severe.deferred_writes > 0
        # Degradation costs useful work.
        assert severe.efficiency <= clean.efficiency + 1e-9
        assert "graceful degradation" in format_ablation_sensor_noise(result)

    def test_jobs_do_not_change_results(self) -> None:
        from repro.experiments.ablation_sensor_noise import (
            LEVELS,
            run_ablation_sensor_noise,
        )

        kwargs = dict(duration=4.0, nodes=2, levels=(LEVELS[0], LEVELS[2]))
        serial = run_ablation_sensor_noise(**kwargs)
        pooled = run_ablation_sensor_noise(jobs=2, **kwargs)
        assert [o.result.summary() for o in serial.outcomes] == [
            o.result.summary() for o in pooled.outcomes
        ]
