"""Tests for the experiment registry (cheap experiments run end-to-end)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import experiment_ids, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self) -> None:
        ids = experiment_ids()
        for fig in ("fig02", "fig03", "fig05", "fig07", "fig09", "fig10",
                    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
                    "table1"):
            assert fig in ids
        assert "ablation-hwqos" in ids
        assert "ablation-backfill" in ids
        assert "ablation-mba" in ids
        assert "ablation-infeed-ratio" in ids
        assert "ablation-knee" in ids
        assert "ablation-sensor-noise" in ids

    def test_unknown_experiment_rejected(self) -> None:
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_fig02_runs(self) -> None:
        result, text = run_experiment("fig02", machines=300)
        assert 0.0 < result.fraction_above_70pct < 0.5
        assert "Fig 2" in text

    def test_table1_runs(self) -> None:
        rows, text = run_experiment("table1")
        assert len(rows) == 4
        assert "Table I" in text

    def test_table1_intensities_match_paper(self) -> None:
        rows, _ = run_experiment("table1")
        by_name = {r.name: r for r in rows}
        for name, row in by_name.items():
            assert row.cpu_intensity == row.paper_cpu_intensity, name
            assert row.memory_intensity == row.paper_memory_intensity, name
