"""Tests for the suite orchestrator."""

from __future__ import annotations

from repro.experiments.suite import format_suite, run_suite


class TestSuite:
    def test_subset_runs_and_formats(self) -> None:
        entries = run_suite(experiments=["fig02", "table1"])
        assert [e.exp_id for e in entries] == ["fig02", "table1"]
        text = format_suite(entries)
        assert "## fig02" in text
        assert "Table I" in text

    def test_per_workload_expansion(self) -> None:
        entries = run_suite(experiments=["fig16"], duration=10.0)
        assert [e.exp_id for e in entries] == ["fig16:cnn1", "fig16:cnn2"]

    def test_timings_recorded(self) -> None:
        entries = run_suite(experiments=["fig02"])
        assert entries[0].seconds >= 0.0
