"""Tests for the suite orchestrator."""

from __future__ import annotations

from repro.experiments.suite import format_suite, run_suite
from repro.obs import ObsConfig, RunObserver


class TestSuite:
    def test_subset_runs_and_formats(self) -> None:
        entries = run_suite(experiments=["fig02", "table1"])
        assert [e.exp_id for e in entries] == ["fig02", "table1"]
        text = format_suite(entries)
        assert "## fig02" in text
        assert "Table I" in text

    def test_per_workload_expansion(self) -> None:
        entries = run_suite(experiments=["fig16"], duration=10.0)
        assert [e.exp_id for e in entries] == ["fig16:cnn1", "fig16:cnn2"]

    def test_timings_recorded(self) -> None:
        entries = run_suite(experiments=["fig02"])
        assert entries[0].seconds >= 0.0


class TestSuiteObservability:
    def test_serial_observer_collects_suite_and_experiment_data(
        self, tmp_path
    ) -> None:
        observer = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="report"
        )
        entries = run_suite(experiments=["fig02"], observer=observer)
        assert len(entries) == 1
        kinds = {row["kind"] for row in observer.records}
        # Suite-level roll-up plus fig02's own deep export.
        assert "suite_entry" in kinds
        assert "fleet_cdf" in kinds
        assert observer.metrics.counter("suite.experiments").value == 1
        # Per-experiment wall-clock spans land on the suite lane.
        assert len(observer.trace) >= 1

    def test_parallel_suite_keeps_suite_level_view(self, tmp_path) -> None:
        observer = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="report"
        )
        entries = run_suite(
            experiments=["fig02", "table1"], observer=observer, jobs=2
        )
        assert len(entries) == 2
        kinds = {row["kind"] for row in observer.records}
        # Workers cannot share the parent observer: no deep export...
        assert "fleet_cdf" not in kinds
        # ...but the suite roll-up is intact.
        assert sum(1 for r in observer.records if r["kind"] == "suite_entry") == 2

    def test_disabled_observer_changes_nothing(self) -> None:
        observer = RunObserver(ObsConfig.disabled())
        entries = run_suite(experiments=["fig02"], observer=observer)
        plain = run_suite(experiments=["fig02"])
        assert entries[0].text == plain[0].text
        assert observer.records == []
