"""Tests for the raw sensitivity runner (Figs 5/15/16 substrate)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.sensitivity import run_sensitivity

FAST = dict(duration=12.0, warmup=3.0)


class TestRunSensitivity:
    def test_baseline_positive(self) -> None:
        assert run_sensitivity("cnn1", None, **FAST) > 0

    def test_dram_hurts_more_than_llc(self) -> None:
        base = run_sensitivity("cnn1", None, **FAST)
        llc = run_sensitivity("cnn1", "llc", **FAST)
        dram = run_sensitivity("cnn1", "dram", "H", **FAST)
        assert dram < llc < base

    def test_remote_dram_hurts_more_than_local_on_cloud_tpu(self) -> None:
        local = run_sensitivity("cnn2", "dram", "H", **FAST)
        remote = run_sensitivity(
            "cnn2", "remote-dram", "H",
            remote_data_fraction=1.0, remote_thread_fraction=0.0, **FAST
        )
        assert remote < local

    def test_remote_with_no_cross_traffic_equals_mild(self) -> None:
        # All data and threads remote: traffic never crosses the link and
        # never touches the ML socket.
        base = run_sensitivity("cnn1", None, **FAST)
        remote = run_sensitivity(
            "cnn1", "remote-dram", "H",
            remote_data_fraction=0.0, remote_thread_fraction=0.0, **FAST
        )
        assert remote == pytest.approx(base, rel=0.05)

    def test_fraction_validation(self) -> None:
        with pytest.raises(ExperimentError):
            run_sensitivity("cnn1", "remote-dram", remote_data_fraction=1.5, **FAST)
        with pytest.raises(ExperimentError):
            run_sensitivity("cnn1", "remote-dram", remote_thread_fraction=-0.1, **FAST)
