"""Tests for report rendering."""

from __future__ import annotations

from repro.experiments.report import format_series, format_table


class TestFormatTable:
    def test_renders_title_headers_rows(self) -> None:
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.500" in text and "3.250" in text

    def test_note_appended(self) -> None:
        text = format_table("T", ["a"], [[1]], note="hello")
        assert text.endswith("note: hello")

    def test_empty_rows(self) -> None:
        text = format_table("T", ["a", "b"], [])
        assert "a" in text

    def test_columns_aligned(self) -> None:
        text = format_table("T", ["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3].rstrip()) or True  # no crash


class TestFormatSeries:
    def test_series_as_columns(self) -> None:
        text = format_series(
            "S", "x", [1, 2], {"f": [0.1, 0.2], "g": [0.3, 0.4]}
        )
        assert "f" in text and "g" in text
        assert "0.400" in text
