"""The fleet-sim experiment family: determinism, routing value, wiring."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.fleet_sim import format_fleet_sim, run_fleet_sim
from repro.experiments.registry import (
    JOBS_AWARE,
    OBS_AWARE,
    experiment_ids,
    run_experiment,
)
from repro.obs import ObsConfig, RunObserver


def _run(**kwargs):
    defaults = dict(nodes=2, duration=3.0, warmup=1.0, seed=0)
    defaults.update(kwargs)
    return run_fleet_sim(**defaults)


class TestDeterminism:
    def test_summaries_identical_across_jobs(self):
        """`--jobs` is a pure wall-clock knob: trial results are bit-equal."""
        serial = _run(trials=3, jobs=1)
        parallel = _run(trials=3, jobs=2)
        assert serial.summaries == parallel.summaries
        assert serial.tenant_rows == parallel.tenant_rows
        assert serial.efficiency == parallel.efficiency

    def test_trials_have_distinct_seeds(self):
        result = _run(trials=3)
        seeds = [s["seed"] for s in result.summaries]
        assert len(set(seeds)) == 3


class TestRoutingValue:
    """The checked-in claim: interference-aware beats random routing."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        kwargs = dict(
            nodes=4,
            policy="BL",
            batch_jobs=3,
            batch_intensity=8,
            batch_eviction=False,
            duration=6.0,
            warmup=2.0,
            seed=0,
        )
        return {
            routing: run_fleet_sim(routing=routing, **kwargs)
            for routing in ("interference-aware", "random")
        }

    def test_better_p99_per_tenant(self, outcomes):
        aware = outcomes["interference-aware"].tenant_rows
        random_ = outcomes["random"].tenant_rows
        for aware_row, random_row in zip(aware, random_):
            assert aware_row.name == random_row.name
            assert aware_row.p99_ms < random_row.p99_ms

    def test_no_worse_slo_attainment(self, outcomes):
        aware = outcomes["interference-aware"].tenant_rows
        random_ = outcomes["random"].tenant_rows
        for aware_row, random_row in zip(aware, random_):
            assert aware_row.attainment >= random_row.attainment
        assert (
            outcomes["interference-aware"].serving_yield
            >= outcomes["random"].serving_yield
        )


class TestAggregation:
    def test_tenant_rows_pool_trials(self):
        result = _run(trials=2)
        assert [row.name for row in result.tenant_rows] == ["search", "assist"]
        for index, row in enumerate(result.tenant_rows):
            per_trial_offered = [
                s["tenants"][index]["offered"] for s in result.summaries
            ]
            assert row.offered == sum(per_trial_offered)
            per_trial_p99 = [
                s["tenants"][index]["p99_ms"] for s in result.summaries
            ]
            # Summary rows round to 3 decimals; compare at that precision.
            assert row.p99_ms == pytest.approx(max(per_trial_p99), abs=1e-3)

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            _run(trials=0)

    def test_short_duration_scales_warmup(self):
        """`repro report --duration 1` style invocations stay valid."""
        result = run_fleet_sim(nodes=1, duration=1.0, warmup=2.0, trials=1)
        assert result.results[0].config.warmup == pytest.approx(0.25)

    def test_load_override_scales_tenants(self):
        light = _run(load=0.25)
        tenants = light.results[0].config.tenants
        assert sum(t.load_fraction for t in tenants) == pytest.approx(0.25)
        # The 70/30-ish tenant split is preserved.
        assert tenants[0].load_fraction > tenants[1].load_fraction


class TestFormatting:
    def test_table_shape(self):
        result = _run(trials=1)
        text = format_fleet_sim(result)
        assert "fleet-sim: 2 nodes x KP" in text
        assert "search" in text and "assist" in text
        assert "fleet efficiency" in text
        assert "batch evictions" in text


class TestWiring:
    def test_registered(self):
        assert "fleet-sim" in experiment_ids()
        assert "fleet-sim" in JOBS_AWARE
        assert "fleet-sim" in OBS_AWARE

    def test_run_experiment_formats(self):
        result, text = run_experiment(
            "fleet-sim", nodes=1, duration=2.0, warmup=0.5, trials=1
        )
        assert result.nodes == 1
        assert text.startswith("fleet-sim: 1 nodes")

    def test_observer_records(self, tmp_path):
        observer = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="fleet-sim"
        )
        _run(trials=2, observer=observer)
        kinds = {record["kind"] for record in observer.records}
        assert {"fleet_run", "fleet_tenant", "fleet_telemetry"} <= kinds
        runs = [r for r in observer.records if r["kind"] == "fleet_run"]
        assert [r["trial"] for r in runs] == [0, 1]
        paths = observer.finalize(command="test")
        assert (tmp_path / "m.jsonl").exists()
        assert paths
