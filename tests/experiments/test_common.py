"""Tests for the colocation harness."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import (
    MixConfig,
    run_colocation,
    standalone_performance,
)

#: Short horizons keep these integration-ish tests quick.
FAST = dict(duration=12.0, warmup=3.0)


class TestStandalone:
    def test_standalone_is_cached(self) -> None:
        a = standalone_performance("cnn1", **_fast())
        b = standalone_performance("cnn1", **_fast())
        assert a == b

    def test_training_standalone_matches_spec(self) -> None:
        perf, tail = standalone_performance("cnn1", **_fast())
        from repro.workloads.ml.catalog import ml_workload

        expected = 1.0 / ml_workload("cnn1").spec.standalone_step_time()
        assert perf == pytest.approx(expected, rel=0.05)
        assert tail is None

    def test_inference_standalone_has_tail(self) -> None:
        perf, tail = standalone_performance("rnn1", **_fast())
        assert perf > 0
        assert tail is not None and tail > 0


def _fast() -> dict:
    return dict(duration=FAST["duration"], warmup=FAST["warmup"])


class TestRunColocation:
    def test_baseline_colocation_degrades_ml(self) -> None:
        result = run_colocation(
            MixConfig(ml="cnn1", policy="BL", cpu="dram", intensity="H", **FAST)
        )
        assert result.ml_perf_norm < 0.7
        assert result.cpu_throughput > 0
        assert result.params == []

    def test_kelp_records_params(self) -> None:
        result = run_colocation(
            MixConfig(ml="cnn1", policy="KP", cpu="stitch", intensity=4, **FAST)
        )
        assert result.params
        assert result.params[0].lo_cores >= 1

    def test_no_cpu_workload(self) -> None:
        result = run_colocation(MixConfig(ml="cnn2", policy="BL", **FAST))
        assert result.cpu_throughput == 0.0

    def test_inference_reports_tail_norm(self) -> None:
        result = run_colocation(
            MixConfig(ml="rnn1", policy="BL", cpu="cpuml", intensity=14, **FAST)
        )
        assert result.ml_tail_norm is not None
        assert result.ml_tail_norm > 1.0

    def test_duration_must_exceed_warmup(self) -> None:
        with pytest.raises(ExperimentError):
            run_colocation(MixConfig(ml="cnn1", duration=2.0, warmup=3.0))
