"""Miniature end-to-end runs of the sweep drivers.

Full-size sweeps live in ``benchmarks/``; these smoke tests run each driver
at reduced scope so the driver plumbing (point bookkeeping, normalization,
formatting) is exercised in the unit suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig07_backpressure import format_fig07, run_fig07
from repro.experiments.fig09_cnn1_stitch import format_fig09, run_fig09
from repro.experiments.fig10_rnn1_cpuml import format_fig10, run_fig10
from repro.experiments.fig11_params_cnn1 import (
    _steady_state,
    format_params,
    run_param_sweep,
)
from repro.core.policies.base import ParameterSample


class TestFig07Driver:
    def test_mini_sweep(self) -> None:
        result = run_fig07("cnn2", duration=10.0, warmup=3.0, fractions=(0.0, 1.0))
        assert len(result.points) == 6  # 2 fractions x 3 levels
        worst = result.point("H", 0.0)
        best = result.point("H", 1.0)
        assert best.ml_perf_norm >= worst.ml_perf_norm
        assert best.saturation <= worst.saturation
        assert "Fig 7" in format_fig07(result)

    def test_missing_point_raises(self) -> None:
        result = run_fig07("cnn2", duration=10.0, warmup=3.0, fractions=(0.0,))
        with pytest.raises(KeyError):
            result.point("H", 0.75)


class TestFig09Driver:
    def test_mini_sweep(self) -> None:
        result = run_fig09(instances=(1, 4), policies=("BL", "KP"), duration=12.0)
        assert result.ml_perf["BL"][1] < result.ml_perf["KP"][1]
        # Normalization anchor: BL @ first instance count == 1.0.
        assert result.cpu_throughput["BL"][0] == pytest.approx(1.0)
        assert "Fig 9a" in format_fig09(result)


class TestFig10Driver:
    def test_mini_sweep(self) -> None:
        result = run_fig10(threads=(4, 16), policies=("BL", "KP-SD"), duration=12.0)
        assert result.qps["KP-SD"][1] > result.qps["BL"][1]
        assert result.cpu_throughput["BL"][0] == pytest.approx(1.0)
        assert "Fig 10c" in format_fig10(result)


class TestParamSweep:
    def test_steady_state_uses_second_half(self) -> None:
        params = [
            ParameterSample(time=float(i), lo_cores=c, lo_prefetchers=0,
                            backfill_cores=0)
            for i, c in enumerate([10, 9, 8, 4, 4, 4])
        ]
        assert _steady_state(params, "lo_cores") == pytest.approx(4.0)

    def test_steady_state_empty(self) -> None:
        assert _steady_state([], "lo_cores") == 0.0

    def test_mini_param_sweep(self) -> None:
        result = run_param_sweep("cnn1", "stitch", (1, 5), duration=10.0)
        assert len(result.ct_cores) == 2
        assert max(result.ct_cores) == 1.0  # normalized
        assert "runtime parameters" in format_params(result, "Fig 11")
