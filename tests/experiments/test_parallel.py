"""Tests for the deterministic process-pool sweep runner.

The engine's contract: results are returned in point order and are
bit-identical regardless of the worker count, because each point runs under
a deterministic ``(base_seed, index)`` re-seed and fixed work partitioning.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cluster.fleet import FLEET_BLOCK_MACHINES, FleetSurvey
from repro.errors import ExperimentError
from repro.experiments.suite import run_suite
from repro.parallel import point_seed, resolve_jobs, run_points


def _square(x: int) -> int:
    return x * x


def _draw(x: int) -> tuple[int, float, float]:
    """Uses both global RNGs: exercises the per-point re-seeding."""
    return (x, random.random(), float(np.random.random()))


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit beats the env

    def test_bad_env_raises(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ExperimentError):
            resolve_jobs()

    def test_non_positive_raises(self) -> None:
        with pytest.raises(ExperimentError):
            resolve_jobs(0)


class TestPointSeed:
    def test_deterministic(self) -> None:
        assert point_seed(7, 3) == point_seed(7, 3)

    def test_distinct_across_indices_and_seeds(self) -> None:
        seeds = {point_seed(s, i) for s in range(4) for i in range(16)}
        assert len(seeds) == 64

    def test_32bit_range(self) -> None:
        for i in range(100):
            assert 0 <= point_seed(12345, i) < 2**32


class TestRunPoints:
    def test_serial_order(self) -> None:
        assert run_points(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_equals_serial(self) -> None:
        points = list(range(8))
        serial = run_points(_square, points)
        parallel = run_points(_square, points, jobs=2)
        assert serial == parallel

    def test_rng_reseeding_is_jobs_invariant(self) -> None:
        points = list(range(6))
        serial = run_points(_draw, points, base_seed=11)
        parallel = run_points(_draw, points, jobs=3, base_seed=11)
        assert serial == parallel

    def test_base_seed_changes_draws(self) -> None:
        a = run_points(_draw, [0, 1], base_seed=1)
        b = run_points(_draw, [0, 1], base_seed=2)
        assert a != b

    def test_empty_points(self) -> None:
        assert run_points(_square, []) == []


class TestFleetParallel:
    def test_block_partition_covers_fleet(self) -> None:
        survey = FleetSurvey(machines=FLEET_BLOCK_MACHINES + 10, seed=3)
        assert survey.num_blocks() == 2
        assert len(survey.machine_p99()) == survey.machines

    def test_jobs_invariant(self) -> None:
        survey = FleetSurvey(machines=600, seed=7)
        serial = survey.machine_p99()
        parallel = survey.machine_p99(jobs=2)
        assert np.array_equal(serial, parallel)


class TestSuiteParallel:
    def test_parallel_suite_equals_serial(self) -> None:
        subset = ["fig02", "table1"]
        serial = run_suite(experiments=subset, duration=10.0)
        parallel = run_suite(experiments=subset, duration=10.0, jobs=2)
        assert [e.exp_id for e in serial] == [e.exp_id for e in parallel]
        assert [e.text for e in serial] == [e.text for e in parallel]
