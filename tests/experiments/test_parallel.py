"""Tests for the deterministic process-pool sweep runner.

The engine's contract: results are returned in point order and are
bit-identical regardless of the worker count, because each point runs under
a deterministic ``(base_seed, index)`` re-seed and fixed work partitioning.
"""

from __future__ import annotations

import os
import pstats
import random
from concurrent.futures import Future

import numpy as np
import pytest

from repro.fleet.survey import FLEET_BLOCK_MACHINES, FleetSurvey
from repro.errors import ExperimentError
from repro.experiments.suite import run_suite
from repro.parallel import (
    CHUNK_ENV,
    PROFILE_DIR_ENV,
    PROFILE_ENV,
    SweepPool,
    get_pool,
    maybe_profiled,
    point_seed,
    profiling_enabled,
    resolve_jobs,
    run_points,
    shutdown_pool,
    sweep_context,
)


def _square(x: int) -> int:
    return x * x


def _draw(x: int) -> tuple[int, float, float]:
    """Uses both global RNGs: exercises the per-point re-seeding."""
    return (x, random.random(), float(np.random.random()))


def _read_context(x: int) -> tuple[int, object]:
    """Returns the worker-visible shared sweep context."""
    return (x, sweep_context())


def _getpid(_: int) -> int:
    return os.getpid()


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit beats the env

    def test_bad_env_raises(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ExperimentError):
            resolve_jobs()

    def test_non_positive_raises(self) -> None:
        with pytest.raises(ExperimentError):
            resolve_jobs(0)


class TestPointSeed:
    def test_deterministic(self) -> None:
        assert point_seed(7, 3) == point_seed(7, 3)

    def test_distinct_across_indices_and_seeds(self) -> None:
        seeds = {point_seed(s, i) for s in range(4) for i in range(16)}
        assert len(seeds) == 64

    def test_32bit_range(self) -> None:
        for i in range(100):
            assert 0 <= point_seed(12345, i) < 2**32


class TestRunPoints:
    def test_serial_order(self) -> None:
        assert run_points(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_equals_serial(self) -> None:
        points = list(range(8))
        serial = run_points(_square, points)
        parallel = run_points(_square, points, jobs=2)
        assert serial == parallel

    def test_rng_reseeding_is_jobs_invariant(self) -> None:
        points = list(range(6))
        serial = run_points(_draw, points, base_seed=11)
        parallel = run_points(_draw, points, jobs=3, base_seed=11)
        assert serial == parallel

    def test_base_seed_changes_draws(self) -> None:
        a = run_points(_draw, [0, 1], base_seed=1)
        b = run_points(_draw, [0, 1], base_seed=2)
        assert a != b

    def test_empty_points(self) -> None:
        assert run_points(_square, []) == []


class TestChunkedDeterminism:
    """Results must not depend on worker count or chunk geometry.

    23 points is prime, so none of the tried chunk sizes divides it evenly —
    every configuration ends on a ragged final chunk. ``force_pool`` makes
    the pool path run even on single-CPU hosts (where ``run_points`` would
    otherwise fall back to serial, making the test vacuous).
    """

    def test_results_invariant_across_jobs_and_chunks(self) -> None:
        points = list(range(23))
        serial = run_points(_draw, points, jobs=1, base_seed=17)
        try:
            for jobs in (2, 7):
                for chunk in (1, 3, 5, None):
                    got = run_points(
                        _draw,
                        points,
                        jobs=jobs,
                        base_seed=17,
                        chunk_size=chunk,
                        force_pool=True,
                    )
                    assert got == serial, f"jobs={jobs} chunk={chunk}"
        finally:
            shutdown_pool()


class TestPointSeedStatistics:
    def test_no_collisions_over_a_grid(self) -> None:
        seeds = {point_seed(s, i) for s in range(4) for i in range(4096)}
        assert len(seeds) == 4 * 4096

    def test_adjacent_indices_are_uncorrelated(self) -> None:
        xs = np.array([point_seed(123, i) for i in range(512)], dtype=float)
        r = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert abs(r) < 0.1, f"lag-1 correlation {r}"

    def test_adjacent_base_seeds_are_uncorrelated(self) -> None:
        a = np.array([point_seed(9, i) for i in range(512)], dtype=float)
        b = np.array([point_seed(10, i) for i in range(512)], dtype=float)
        r = np.corrcoef(a, b)[0, 1]
        assert abs(r) < 0.1, f"cross-seed correlation {r}"

    def test_avalanche_between_neighbours(self) -> None:
        # A well-mixed hash flips about half of the 32 output bits between
        # consecutive indices.
        flips = [
            bin(point_seed(5, i) ^ point_seed(5, i + 1)).count("1")
            for i in range(256)
        ]
        mean = sum(flips) / len(flips)
        assert 13.0 <= mean <= 19.0, f"mean bit flips {mean}"


class _TrackedFuture(Future):
    """A completed future that reports consumption back to its executor."""

    def __init__(self, owner: "_RecordingExecutor", value: object) -> None:
        super().__init__()
        self._owner = owner
        self.set_result(value)

    def result(self, timeout: float | None = None) -> object:
        self._owner.outstanding -= 1
        return super().result(timeout)


class _RecordingExecutor:
    """Stand-in executor measuring how many futures are pending at once."""

    def __init__(self) -> None:
        self.outstanding = 0
        self.max_outstanding = 0
        self.submissions = 0

    def submit(self, fn, *args) -> Future:
        self.submissions += 1
        self.outstanding += 1
        self.max_outstanding = max(self.max_outstanding, self.outstanding)
        return _TrackedFuture(self, fn(*args))

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pass


class TestBackpressure:
    def test_inflight_chunks_are_bounded(self) -> None:
        """At most ``2 x workers`` chunks may be pending at any moment."""
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 3
        pool.context = None
        recorder = _RecordingExecutor()
        pool._pool = recorder
        points = list(range(40))
        results = pool.map_points(_square, points, chunk_size=1)
        assert results == [x * x for x in points]
        assert recorder.submissions == 40
        assert recorder.max_outstanding == 3 * 2

    def test_short_sweeps_never_overfill(self) -> None:
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 4
        pool.context = None
        recorder = _RecordingExecutor()
        pool._pool = recorder
        assert pool.map_points(_square, [1, 2, 3], chunk_size=1) == [1, 4, 9]
        assert recorder.max_outstanding == 3


class TestSweepPoolLifecycle:
    def test_close_is_idempotent_and_observable(self) -> None:
        pool = SweepPool(workers=1)
        assert not pool.closed
        pool.close()
        pool.close()
        assert pool.closed

    def test_map_after_close_raises(self) -> None:
        pool = SweepPool(workers=1)
        pool.close()
        with pytest.raises(ExperimentError):
            pool.map_points(_square, [1])

    def test_context_manager_closes(self) -> None:
        with SweepPool(workers=1) as pool:
            assert pool.map_points(_square, [2, 3]) == [4, 9]
        assert pool.closed

    def test_get_pool_reuses_then_recreates(self) -> None:
        try:
            first = get_pool(2)
            assert get_pool(2) is first  # same shape: same warm pool
            third = get_pool(3)
            assert third is not first
            assert first.closed  # the replaced pool was shut down
        finally:
            shutdown_pool()

    def test_invalid_worker_count(self) -> None:
        with pytest.raises(ExperimentError):
            SweepPool(workers=0)


class TestSweepContext:
    def test_serial_path_installs_and_restores(self) -> None:
        context = ("trace", 42)
        results = run_points(_read_context, [0, 1], jobs=1, context=context)
        assert results == [(0, context), (1, context)]
        assert sweep_context() is None  # restored after the sweep

    def test_pool_workers_see_context(self) -> None:
        context = ("trace", 42)
        try:
            results = run_points(
                _read_context, list(range(6)), jobs=2, context=context,
                force_pool=True,
            )
            assert [value for _, value in results] == [context] * 6
        finally:
            shutdown_pool()


class TestChunkSizing:
    def test_env_override(self, monkeypatch: pytest.MonkeyPatch) -> None:
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 2
        monkeypatch.setenv(CHUNK_ENV, "9")
        assert pool._resolve_chunk_size(100, None) == 9
        # An explicit argument beats the environment.
        assert pool._resolve_chunk_size(100, 5) == 5

    def test_bad_env_raises(self, monkeypatch: pytest.MonkeyPatch) -> None:
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 2
        monkeypatch.setenv(CHUNK_ENV, "lots")
        with pytest.raises(ExperimentError):
            pool._resolve_chunk_size(100, None)

    def test_non_positive_chunk_raises(self) -> None:
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 2
        with pytest.raises(ExperimentError):
            pool._resolve_chunk_size(100, 0)

    def test_auto_sizing(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv(CHUNK_ENV, raising=False)
        pool = SweepPool.__new__(SweepPool)
        pool.workers = 2
        # ~4 chunks per worker, capped at 64, floor of 1.
        assert pool._resolve_chunk_size(10, None) == 2
        assert pool._resolve_chunk_size(1000, None) == 64
        assert pool._resolve_chunk_size(3, None) == 1


class TestProfilingHook:
    def test_disabled_by_default(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()

    def test_dumps_loadable_profile(
        self, monkeypatch: pytest.MonkeyPatch, tmp_path
    ) -> None:
        monkeypatch.setenv(PROFILE_ENV, "1")
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        with maybe_profiled("unit_probe"):
            sum(range(1000))
        out = tmp_path / "unit_probe.prof"
        assert out.exists()
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_profiling_forces_serial(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        monkeypatch.setenv(PROFILE_ENV, "1")
        pids = run_points(_getpid, [0, 1, 2], jobs=7, force_pool=True)
        assert pids == [os.getpid()] * 3


class TestFleetParallel:
    def test_block_partition_covers_fleet(self) -> None:
        survey = FleetSurvey(machines=FLEET_BLOCK_MACHINES + 10, seed=3)
        assert survey.num_blocks() == 2
        assert len(survey.machine_p99()) == survey.machines

    def test_jobs_invariant(self) -> None:
        survey = FleetSurvey(machines=600, seed=7)
        serial = survey.machine_p99()
        parallel = survey.machine_p99(jobs=2)
        assert np.array_equal(serial, parallel)


class TestSuiteParallel:
    def test_parallel_suite_equals_serial(self) -> None:
        subset = ["fig02", "table1"]
        serial = run_suite(experiments=subset, duration=10.0)
        parallel = run_suite(experiments=subset, duration=10.0, jobs=2)
        assert [e.exp_id for e in serial] == [e.exp_id for e in parallel]
        assert [e.text for e in serial] == [e.text for e in parallel]
