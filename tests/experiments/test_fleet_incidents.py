"""fleet-incidents experiment family: determinism, scenarios, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.fleet_incidents import (
    format_fleet_incidents,
    run_fleet_incidents,
)
from repro.incidents.faults import default_schedule, save_scenario
from repro.traces import TraceGenConfig

_GEN = TraceGenConfig(
    seed=3, duration_s=1200.0, rate_qps=2.0, burst_multiplier=1.0
)
_KW = dict(
    gen=_GEN,
    nodes=3,
    routing="random",
    interval=10.0,
    warmup=20.0,
    seed=7,
    incident_seed=5,
    classes=("node-death", "noisy-neighbor"),
)


@pytest.fixture(scope="module")
def serial_result():
    return run_fleet_incidents(**_KW)


class TestDeterminism:
    def test_jobs_sweep_is_bit_identical(self, serial_result) -> None:
        parallel = run_fleet_incidents(jobs=4, **_KW)
        assert json.dumps(
            serial_result.artifact(), sort_keys=True
        ) == json.dumps(parallel.artifact(), sort_keys=True)

    def test_rerun_is_bit_identical(self, serial_result) -> None:
        again = run_fleet_incidents(**_KW)
        assert serial_result.artifact() == again.artifact()

    def test_artifact_is_json_clean(self, serial_result) -> None:
        artifact = serial_result.artifact()
        assert json.loads(json.dumps(artifact)) == artifact


class TestOutcome:
    def test_offered_identical_across_modes(self, serial_result) -> None:
        for by_mode in serial_result.exports:
            offered = {
                mode: export["ticks"][-1][1]
                for mode, export in by_mode.items()
            }
            assert len(set(offered.values())) == 1

    def test_remediation_strictly_helps(self, serial_result) -> None:
        card = serial_result.scorecards[0]
        assert card.total_damage_rem < card.total_damage_norem
        for score in card.incidents:
            assert score.detection_latency_s is not None
            assert score.localization_correct

    def test_formatter_renders(self, serial_result) -> None:
        text = format_fleet_incidents(serial_result)
        assert "fleet-incidents:" in text
        assert "node-death" in text
        assert "damage avoided" in text


class TestScenarioResolution:
    def test_scenario_file_round_trips_through_runner(
        self, serial_result, tmp_path
    ) -> None:
        path = tmp_path / "scenario.json"
        save_scenario(serial_result.schedule, str(path))
        kwargs = {
            k: v for k, v in _KW.items()
            if k not in ("incident_seed", "classes")
        }
        from_file = run_fleet_incidents(scenario_path=str(path), **kwargs)
        assert from_file.scenario_source == str(path)
        assert from_file.artifact() == serial_result.artifact()

    def test_schedule_and_scenario_path_conflict(self, tmp_path) -> None:
        schedule = default_schedule(1200.0, nodes=3, seed=5)
        with pytest.raises(ExperimentError):
            run_fleet_incidents(
                schedule=schedule,
                scenario_path=str(tmp_path / "x.json"),
                **{k: v for k, v in _KW.items() if k != "classes"},
            )

    def test_incident_beyond_fleet_rejected(self) -> None:
        from repro.incidents.faults import IncidentSchedule, IncidentSpec

        schedule = IncidentSchedule(
            incidents=(
                IncidentSpec(
                    kind="node-death", start_s=100.0, duration_s=50.0, node=7
                ),
            ),
            seed=5,
        )
        kwargs = {
            k: v for k, v in _KW.items()
            if k not in ("incident_seed", "classes")
        }
        with pytest.raises(ExperimentError, match="node"):
            run_fleet_incidents(schedule=schedule, **kwargs)

    def test_incident_beyond_horizon_rejected(self) -> None:
        schedule = default_schedule(86400.0, nodes=3, seed=5)
        kwargs = {
            k: v for k, v in _KW.items()
            if k not in ("incident_seed", "classes")
        }
        with pytest.raises(ExperimentError, match="horizon"):
            run_fleet_incidents(schedule=schedule, **kwargs)

    def test_trials_validated(self) -> None:
        with pytest.raises(ExperimentError):
            run_fleet_incidents(trials=0, **_KW)
