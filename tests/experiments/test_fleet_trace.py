"""The fleet-trace experiment family: replay, determinism, wiring."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.fleet_trace import format_fleet_trace, run_fleet_trace
from repro.experiments.registry import (
    JOBS_AWARE,
    OBS_AWARE,
    experiment_ids,
    run_experiment,
)
from repro.obs import ObsConfig, RunObserver
from repro.traces import TraceGenConfig, generate_trace, save_trace


def _gen(**overrides) -> TraceGenConfig:
    defaults = dict(seed=5, duration_s=20.0, rate_qps=30.0)
    defaults.update(overrides)
    return TraceGenConfig(**defaults)


def _run(**kwargs):
    defaults = dict(gen=_gen(), nodes=2, warmup=1.0, seed=0)
    defaults.update(kwargs)
    return run_fleet_trace(**defaults)


class TestReplay:
    def test_offered_matches_post_warmup_trace_volume(self):
        trace = generate_trace(_gen())
        result = _run(trace=trace, gen=None)
        post_warmup = int((trace.arrivals_s >= 1.0).sum())
        # Every post-warmup trace arrival is offered exactly once (arrivals
        # in the final instant may still be queued, but offered is counted
        # at admission).
        assert result.summaries[0]["offered"] == post_warmup

    def test_time_of_day_curves_present(self):
        result = _run(window_s=5.0)
        assert result.window_fleet
        starts = [row["start_s"] for row in result.window_fleet]
        assert starts == sorted(starts)
        for row in result.windows:
            assert 0.0 <= row["attainment"] <= 1.0

    def test_tenants_come_from_trace_header(self):
        result = _run()
        assert [t.name for t in result.tenant_rows] == [
            "search", "ads", "assist",
        ]

    def test_trace_path_source(self, tmp_path):
        path = tmp_path / "day.jsonl.gz"
        save_trace(generate_trace(_gen()), path)
        result = run_fleet_trace(
            trace_path=str(path), nodes=2, warmup=1.0, seed=0
        )
        assert result.source == str(path)
        assert result.requests > 0

    def test_duration_prefix_replay(self):
        full = _run()
        prefix = _run(duration=10.0)
        assert prefix.summaries[0]["offered"] < full.summaries[0]["offered"]

    def test_rejects_conflicting_sources(self):
        trace = generate_trace(_gen())
        with pytest.raises(ExperimentError):
            run_fleet_trace(trace=trace, gen=_gen())

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            _run(trials=0)


class TestDeterminism:
    def test_summaries_identical_across_jobs(self):
        """`--jobs` is a pure wall-clock knob: trial results are bit-equal."""
        serial = _run(trials=3, jobs=1)
        parallel = _run(trials=3, jobs=4)
        assert serial.summaries == parallel.summaries
        assert serial.tenant_rows == parallel.tenant_rows
        assert serial.efficiency == parallel.efficiency

    def test_repeat_invocation_bit_identical(self):
        assert _run(trials=2).summaries == _run(trials=2).summaries

    def test_trials_have_distinct_seeds(self):
        result = _run(trials=3)
        seeds = [s["seed"] for s in result.summaries]
        assert len(set(seeds)) == 3


class TestFormatting:
    def test_table_shape(self):
        result = _run()
        text = format_fleet_trace(result)
        assert text.startswith("fleet-trace:")
        assert "time-of-day curve" in text
        assert "search" in text
        assert "fleet efficiency" in text


class TestWiring:
    def test_registered(self):
        assert "fleet-trace" in experiment_ids()
        assert "fleet-trace" in JOBS_AWARE
        assert "fleet-trace" in OBS_AWARE

    def test_run_experiment_formats(self):
        result, text = run_experiment("fleet-trace", duration=10.0)
        assert result.requests > 0
        assert text.startswith("fleet-trace:")

    def test_observer_records(self, tmp_path):
        observer = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="fleet-trace"
        )
        _run(trials=1, observer=observer)
        kinds = {record["kind"] for record in observer.records}
        assert {"fleet_run", "fleet_tenant", "fleet_window"} <= kinds
        windows = [r for r in observer.records if r["kind"] == "fleet_window"]
        assert {"tenant", "fleet"} == {r["scope"] for r in windows}
        config = observer._run_config
        assert config["trace_requests"] > 0
        assert config["trace_tenants"] == ["search", "ads", "assist"]
        assert config["trace_window_s"] > 0
        paths = observer.finalize(command="test")
        assert paths
