"""The seed-era ``repro.cluster`` / ``repro.distributed`` shims.

Each shim package warns exactly once per process (module caching does the
de-duplication: the warning lives in the package ``__init__``) and
re-exports the moved symbols by identity. Subprocesses give each test a
clean import state — in-process the shims may already be imported.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"


def _run(code: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
    )


_COUNT_TEMPLATE = """
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
{imports}
hits = [
    w for w in caught
    if issubclass(w.category, DeprecationWarning)
    and "{package}" in str(w.message)
]
assert len(hits) == {expected}, [str(w.message) for w in hits]
print("ok")
"""


@pytest.mark.parametrize(
    "package, imports",
    [
        ("repro.cluster", ["import repro.cluster"]),
        (
            "repro.cluster",
            [
                "import repro.cluster.node",
                "import repro.cluster.fleet",
                "from repro.cluster import Node",
            ],
        ),
        ("repro.distributed", ["import repro.distributed"]),
        (
            "repro.distributed",
            [
                "import repro.distributed.sync",
                "import repro.distributed.parameter_server",
                "import repro.distributed.worker",
                "import repro.distributed.service",
            ],
        ),
    ],
)
def test_shim_warns_exactly_once(package: str, imports: list[str]) -> None:
    code = _COUNT_TEMPLATE.format(
        imports="\n".join(f"    {line}" for line in imports),
        package=package,
        expected=1,
    )
    proc = _run(code)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_modern_homes_do_not_warn() -> None:
    code = _COUNT_TEMPLATE.format(
        imports=(
            "    import repro.node\n"
            "    import repro.fleet.survey\n"
            "    import repro.fleet.validate\n"
            "    import repro.workloads.ml.distributed\n"
            "    import repro.serve"
        ),
        package="deprecated",
        expected=0,
    )
    proc = _run(code)
    assert proc.returncode == 0, proc.stderr


def test_shims_reexport_by_identity() -> None:
    code = """
import warnings
warnings.simplefilter("ignore", DeprecationWarning)
import repro.cluster, repro.cluster.node, repro.cluster.fleet
import repro.distributed.sync, repro.distributed.parameter_server
import repro.distributed.worker, repro.distributed.service
from repro.node import Node
from repro.fleet.survey import FleetSurvey, fleet_bandwidth_cdf
from repro.fleet.validate import TailAmplificationModel
from repro.workloads.ml.distributed import (
    LockStepBarrier, PsUpdateModel, WorkerModel,
)
assert repro.cluster.Node is Node
assert repro.cluster.node.Node is Node
assert repro.cluster.FleetSurvey is FleetSurvey
assert repro.cluster.fleet.fleet_bandwidth_cdf is fleet_bandwidth_cdf
assert repro.distributed.sync.LockStepBarrier is LockStepBarrier
assert repro.distributed.parameter_server.PsUpdateModel is PsUpdateModel
assert repro.distributed.worker.WorkerModel is WorkerModel
assert repro.distributed.service.TailAmplificationModel is TailAmplificationModel
print("ok")
"""
    proc = _run(code)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
