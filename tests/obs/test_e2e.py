"""End-to-end: a small fig13 run exports parseable, consistent artifacts.

The observability contract the docs promise: every observed experiment run
yields (a) a JSONL stream where each row parses and carries a ``kind``,
(b) a Chrome trace whose events Perfetto would accept (ph/ts/pid/tid all
present, metadata lanes named), and (c) a manifest linking back to the
outputs. This exercises the full path CLI users take with ``--trace-out``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.fig13_overall import run_fig13
from repro.obs import ObsConfig, RunObserver

KNOWN_KINDS = {"run", "solver_stats", "tick", "telemetry", "metric", "actuation"}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One small observed fig13 run shared by every assertion below."""
    out = tmp_path_factory.mktemp("obs-e2e")
    observer = RunObserver(
        ObsConfig(trace_dir=out, metrics_path=out / "metrics.jsonl"),
        name="fig13",
    )
    result = run_fig13(
        duration=10.0,
        policies=("BL", "KP"),
        ml_workloads=("cnn1",),
        mixes=(("stitch", 2),),
        observer=observer,
    )
    written = observer.finalize(command="pytest e2e")
    return out, result, written


class TestEndToEndArtifacts:
    def test_all_three_outputs_written(self, artifacts) -> None:
        out, _, written = artifacts
        names = sorted(p.name for p in written)
        assert names == ["fig13.manifest.json", "metrics.jsonl", "trace.json"]
        for path in written:
            assert path.exists() and path.stat().st_size > 0

    def test_metrics_stream_parses_and_is_typed(self, artifacts) -> None:
        out, _, _ = artifacts
        rows = [json.loads(line) for line in (out / "metrics.jsonl").open()]
        assert rows, "stream must not be empty"
        kinds = {row["kind"] for row in rows}
        assert kinds <= KNOWN_KINDS
        # One run row per (policy, mix) cell of the reduced matrix.
        assert sum(1 for r in rows if r["kind"] == "run") == 2
        # The KP cell must have produced controller ticks.
        assert any(
            r["kind"] == "tick" and r["label"].endswith(":KP") for r in rows
        )

    def test_metric_rows_cover_fig13_rollups(self, artifacts) -> None:
        out, _, _ = artifacts
        rows = [json.loads(line) for line in (out / "metrics.jsonl").open()]
        metric_names = {r["name"] for r in rows if r["kind"] == "metric"}
        assert "fig13.ml_slowdown_avg" in metric_names
        assert "fig13.cpu_throughput_hmean" in metric_names
        assert "colocation.runs" in metric_names

    def test_trace_is_perfetto_loadable_shape(self, artifacts) -> None:
        out, _, _ = artifacts
        trace = json.loads((out / "trace.json").read_text())
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in {"X", "C", "i", "M"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] != "M":
                assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        processes = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert any(p.startswith("fig13:") for p in processes)

    def test_tick_rows_match_trace_counters(self, artifacts) -> None:
        out, _, _ = artifacts
        rows = [json.loads(line) for line in (out / "metrics.jsonl").open()]
        trace = json.loads((out / "trace.json").read_text())
        ticks = [r for r in rows if r["kind"] == "tick"]
        knob_samples = [
            e for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == "controller knobs"
        ]
        assert len(knob_samples) == len(ticks)

    def test_manifest_links_outputs(self, artifacts) -> None:
        out, _, _ = artifacts
        manifest = json.loads((out / "fig13.manifest.json").read_text())
        assert manifest["schema"] == "repro.obs.manifest/1"
        assert manifest["run_id"] == "fig13"
        assert manifest["config"]["fig13_policies"] == ["BL", "KP"]
        outputs = [json.loads(json.dumps(o)) for o in manifest["outputs"]]
        assert str(out / "metrics.jsonl") in outputs
        assert str(out / "trace.json") in outputs

    def test_observed_run_matches_unobserved(self, artifacts) -> None:
        _, observed, _ = artifacts
        plain = run_fig13(
            duration=10.0,
            policies=("BL", "KP"),
            ml_workloads=("cnn1",),
            mixes=(("stitch", 2),),
        )
        for cell, ref in zip(observed.cells, plain.cells):
            assert cell.ml_slowdown == pytest.approx(ref.ml_slowdown)
            assert cell.cpu_norm_throughput == pytest.approx(
                ref.cpu_norm_throughput
            )
