"""Tests for run manifests."""

from __future__ import annotations

import json

from repro.obs.manifest import build_manifest, git_revision, write_manifest


class TestGitRevision:
    def test_inside_repo(self) -> None:
        info = git_revision()
        # The test suite runs inside the project checkout.
        if info is not None:
            assert len(info["revision"]) == 40
            assert isinstance(info["dirty"], bool) or info["dirty"] is None

    def test_outside_repo(self, tmp_path) -> None:
        assert git_revision(cwd=str(tmp_path)) is None


class TestBuildManifest:
    def test_required_fields(self) -> None:
        manifest = build_manifest(run_id="fig13", command="repro run fig13")
        assert manifest["schema"] == "repro.obs.manifest/1"
        assert manifest["run_id"] == "fig13"
        assert manifest["command"] == "repro run fig13"
        assert manifest["config"] == {}
        assert manifest["seeds"] == {}
        assert "python" in manifest and "platform" in manifest

    def test_optional_fields(self) -> None:
        manifest = build_manifest(
            run_id="r", command="c",
            config={"duration": 8.0}, seeds={"fleet.seed": 42},
            wall_s=1.23456, outputs=["a.json"], extra={"note": "x"},
        )
        assert manifest["wall_s"] == 1.235
        assert manifest["outputs"] == ["a.json"]
        assert manifest["seeds"]["fleet.seed"] == 42
        assert manifest["extra"]["note"] == "x"

    def test_write_round_trips(self, tmp_path) -> None:
        path = tmp_path / "run.manifest.json"
        write_manifest(path, build_manifest(run_id="r", command="c"))
        loaded = json.loads(path.read_text())
        assert loaded["run_id"] == "r"
