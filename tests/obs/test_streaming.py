"""The buffered streaming JSONL writer vs the in-memory default."""

from __future__ import annotations

import json

from repro.obs import ObsConfig, RunObserver


def _emit(obs: RunObserver, rows: int) -> None:
    for i in range(rows):
        obs.record("tick", seq=i, value=i * 0.5)
    obs.metrics.counter("ticks").inc(rows)


class TestStreamingWriter:
    def test_file_identical_to_buffered_path(self, tmp_path) -> None:
        buffered = RunObserver(
            ObsConfig(metrics_path=tmp_path / "buffered.jsonl"), name="a"
        )
        streamed = RunObserver(
            ObsConfig(metrics_path=tmp_path / "streamed.jsonl"),
            name="b",
            flush_every=7,
        )
        for obs in (buffered, streamed):
            _emit(obs, 100)
            obs.finalize()
        assert (
            (tmp_path / "buffered.jsonl").read_bytes()
            == (tmp_path / "streamed.jsonl").read_bytes()
        )

    def test_rows_reach_disk_before_finalize(self, tmp_path) -> None:
        path = tmp_path / "m.jsonl"
        obs = RunObserver(
            ObsConfig(metrics_path=path), name="s", flush_every=10
        )
        _emit(obs, 25)
        # Two full batches flushed; the 5-row tail is still pending.
        assert sum(1 for _ in path.open()) == 20
        assert obs.records == []  # streamed rows are not retained
        obs.finalize()
        rows = [json.loads(line) for line in path.open()]
        assert sum(1 for r in rows if r["kind"] == "tick") == 25
        assert rows[-1]["kind"] == "metric"

    def test_row_order_preserved(self, tmp_path) -> None:
        path = tmp_path / "m.jsonl"
        obs = RunObserver(
            ObsConfig(metrics_path=path), name="s", flush_every=3
        )
        _emit(obs, 11)
        obs.finalize()
        ticks = [
            json.loads(line)
            for line in path.open()
            if json.loads(line)["kind"] == "tick"
        ]
        assert [row["seq"] for row in ticks] == list(range(11))

    def test_no_metrics_path_ignores_flush_every(self, tmp_path) -> None:
        obs = RunObserver(
            ObsConfig(trace_dir=tmp_path), name="t", flush_every=4
        )
        obs.record("tick", seq=0)
        assert obs.records  # in-memory path still active
        obs.finalize()

    def test_empty_stream_still_writes_file(self, tmp_path) -> None:
        path = tmp_path / "m.jsonl"
        obs = RunObserver(
            ObsConfig(metrics_path=path), name="e", flush_every=4
        )
        obs.finalize()
        assert path.exists()
