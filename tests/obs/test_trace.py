"""Tests for the Chrome trace-event builder."""

from __future__ import annotations

import json

from repro.core.actions import Action
from repro.core.kelp import KelpTickRecord
from repro.core.measurements import KelpMeasurements
from repro.obs.trace import ChromeTraceBuilder
from repro.sim.tracing import TimelineTracer


def make_tick(
    time: float = 1.0,
    action_hi: Action = Action.NOP,
    action_lo: Action = Action.THROTTLE,
) -> KelpTickRecord:
    return KelpTickRecord(
        time=time,
        measurements=KelpMeasurements(
            socket_bw=10.0, socket_latency=1.2, saturation=0.05,
            hipri_bw=5.0, elapsed=1.0,
        ),
        action_hi=action_hi,
        action_lo=action_lo,
        backfill_cores=2,
        lo_cores=8,
        lo_prefetchers=4,
    )


class TestChromeTraceBuilder:
    def test_complete_event_microseconds(self) -> None:
        builder = ChromeTraceBuilder()
        builder.add_complete("p", "t", "work", 1.0, 0.5)
        events = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "X"]
        (event,) = events
        assert event["ts"] == 1_000_000.0
        assert event["dur"] == 500_000.0

    def test_lane_metadata_emitted_once(self) -> None:
        builder = ChromeTraceBuilder()
        builder.add_complete("p", "t", "a", 0.0, 1.0)
        builder.add_complete("p", "t", "b", 1.0, 1.0)
        meta = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "M"]
        names = sorted(e["name"] for e in meta)
        assert names == ["process_name", "thread_name"]

    def test_distinct_processes_get_distinct_pids(self) -> None:
        builder = ChromeTraceBuilder()
        builder.add_complete("p1", "t", "a", 0.0, 1.0)
        builder.add_complete("p2", "t", "a", 0.0, 1.0)
        events = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert events[0]["pid"] != events[1]["pid"]

    def test_len_excludes_metadata(self) -> None:
        builder = ChromeTraceBuilder()
        builder.add_complete("p", "t", "a", 0.0, 1.0)
        assert len(builder) == 1

    def test_add_intervals_preserves_detail(self) -> None:
        tracer = TimelineTracer()
        tracer.record("ml", "cpu", 0.0, 1.0)
        tracer.begin("ml", "tpu", 1.0)
        tracer.flush(2.0)
        builder = ChromeTraceBuilder()
        assert builder.add_intervals("run", tracer.intervals) == 2
        events = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "X"]
        truncated = [
            e for e in events
            if "truncated" in e.get("args", {}).get("detail", "")
        ]
        assert len(truncated) == 1

    def test_tick_records_become_counters_and_markers(self) -> None:
        builder = ChromeTraceBuilder()
        added = builder.add_tick_records(
            "run", [make_tick(action_lo=Action.THROTTLE)]
        )
        assert added == 1
        events = builder.to_dict()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in counters} == {
            "controller knobs", "measurements"
        }
        assert [e["name"] for e in instants] == ["lo:throttle"]

    def test_nop_actions_emit_no_markers(self) -> None:
        builder = ChromeTraceBuilder()
        builder.add_tick_records(
            "run", [make_tick(action_hi=Action.NOP, action_lo=Action.NOP)]
        )
        events = builder.to_dict()["traceEvents"]
        assert not [e for e in events if e["ph"] == "i"]

    def test_write_round_trips(self, tmp_path) -> None:
        builder = ChromeTraceBuilder()
        builder.add_complete("p", "t", "a", 0.0, 1.0)
        builder.add_counter("p", "series", 0.5, {"x": 1.0})
        path = tmp_path / "trace.json"
        builder.write(path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == len(builder.to_dict()["traceEvents"])
