"""Tests for ObsConfig and RunObserver."""

from __future__ import annotations

import json

from repro.obs import ObsConfig, RunObserver, TRACE_ENV
from repro.sim.tracing import TimelineTracer


class TestObsConfig:
    def test_disabled_by_default(self) -> None:
        assert not ObsConfig.disabled().enabled
        assert not ObsConfig.from_env().enabled

    def test_enabled_with_either_output(self, tmp_path) -> None:
        assert ObsConfig.from_env(trace_out=tmp_path).enabled
        assert ObsConfig.from_env(metrics_out=tmp_path / "m.jsonl").enabled

    def test_env_fallback(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        config = ObsConfig.from_env()
        assert config.enabled
        assert config.trace_dir == tmp_path

    def test_explicit_flag_beats_env(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv(TRACE_ENV, "/nonexistent")
        config = ObsConfig.from_env(trace_out=tmp_path)
        assert config.trace_dir == tmp_path

    def test_empty_env_is_disabled(self, monkeypatch) -> None:
        monkeypatch.setenv(TRACE_ENV, "")
        assert not ObsConfig.from_env().enabled


class TestDisabledObserver:
    def test_every_method_is_a_noop(self) -> None:
        obs = RunObserver(ObsConfig.disabled())
        obs.record("tick", x=1)
        obs.note_seed("s", 1)
        obs.note_config(a=2)
        obs.add_span("p", "t", "n", 0.0, 1.0)
        tracer = TimelineTracer()
        tracer.record("t", "cpu", 0.0, 1.0)
        assert obs.observe_tracer("p", tracer) == 0
        assert obs.records == []
        assert len(obs.metrics) == 0
        assert len(obs.trace) == 0
        assert obs.finalize() == []


class TestEnabledObserver:
    def test_records_carry_kind(self, tmp_path) -> None:
        obs = RunObserver(ObsConfig(metrics_path=tmp_path / "m.jsonl"))
        obs.record("tick", time=1.0, action="nop")
        assert obs.records == [{"kind": "tick", "time": 1.0, "action": "nop"}]

    def test_record_cleans_non_json_values(self, tmp_path) -> None:
        obs = RunObserver(ObsConfig(metrics_path=tmp_path / "m.jsonl"))
        obs.record("run", cores=frozenset({2, 1}), path=tmp_path)
        row = obs.records[0]
        assert sorted(row["cores"]) == [1, 2]
        assert isinstance(row["path"], str)
        json.dumps(row)

    def test_finalize_writes_all_outputs(self, tmp_path) -> None:
        obs = RunObserver(
            ObsConfig(trace_dir=tmp_path / "out", metrics_path=tmp_path / "m.jsonl"),
            name="unit",
        )
        obs.record("tick", time=0.0)
        obs.metrics.counter("c").inc()
        obs.add_span("p", "t", "n", 0.0, 1.0)
        written = obs.finalize(command="unit test")
        names = sorted(p.name for p in written)
        assert names == ["m.jsonl", "trace.json", "unit.manifest.json"]
        rows = [json.loads(line) for line in (tmp_path / "m.jsonl").open()]
        kinds = {row["kind"] for row in rows}
        assert kinds == {"tick", "metric"}
        manifest = json.loads((tmp_path / "out" / "unit.manifest.json").read_text())
        assert manifest["command"] == "unit test"
        assert str(tmp_path / "m.jsonl") in manifest["outputs"]

    def test_finalize_is_idempotent(self, tmp_path) -> None:
        obs = RunObserver(ObsConfig(metrics_path=tmp_path / "m.jsonl"))
        first = obs.finalize()
        assert obs.finalize() == first

    def test_metrics_only_manifest_lands_next_to_metrics(self, tmp_path) -> None:
        obs = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="solo"
        )
        written = obs.finalize()
        assert tmp_path / "solo.manifest.json" in written

    def test_context_manager_finalizes(self, tmp_path) -> None:
        with RunObserver(ObsConfig(metrics_path=tmp_path / "m.jsonl")) as obs:
            obs.record("tick", time=0.0)
        assert (tmp_path / "m.jsonl").exists()

    def test_observe_tracer_counts_intervals(self, tmp_path) -> None:
        obs = RunObserver(ObsConfig(trace_dir=tmp_path))
        tracer = TimelineTracer()
        tracer.record("ml", "cpu", 0.0, 1.0)
        tracer.record("ml", "tpu", 1.0, 2.0)
        assert obs.observe_tracer("run", tracer) == 2
        assert len(obs.trace) == 2

    def test_note_seed_reaches_manifest(self, tmp_path) -> None:
        obs = RunObserver(ObsConfig(trace_dir=tmp_path), name="seeded")
        obs.note_seed("fleet.seed", 42)
        obs.note_config(machines=100)
        obs.finalize()
        manifest = json.loads((tmp_path / "seeded.manifest.json").read_text())
        assert manifest["seeds"] == {"fleet.seed": 42}
        assert manifest["config"]["machines"] == 100


class TestColocationExport:
    def test_record_colocation_emits_streams(self, tmp_path) -> None:
        from repro.experiments.common import MixConfig, run_colocation

        obs = RunObserver(
            ObsConfig(metrics_path=tmp_path / "m.jsonl"), name="mix"
        )
        run_colocation(
            MixConfig(ml="cnn1", policy="KP", cpu="stitch", intensity=2,
                      duration=10.0, warmup=3.0),
            observer=obs,
            label="unit-mix",
        )
        kinds: dict[str, int] = {}
        for row in obs.records:
            kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
        assert kinds.get("run") == 1
        assert kinds.get("solver_stats") == 1
        assert kinds.get("tick", 0) > 0
        assert kinds.get("telemetry", 0) > 0
        tick = next(r for r in obs.records if r["kind"] == "tick")
        assert {"time", "action_hi", "action_lo", "backfill_cores",
                "lo_cores", "lo_prefetchers"} <= set(tick)
        assert obs.metrics.counter("colocation.controller_ticks").value > 0
