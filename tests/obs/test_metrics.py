"""Tests for the metrics primitives and registry."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
)


class TestLabelKey:
    def test_sorted_and_stringified(self) -> None:
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty(self) -> None:
        assert label_key({}) == ()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self) -> None:
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self) -> None:
        with pytest.raises(MeasurementError):
            Counter().inc(-1.0)

    def test_sample(self) -> None:
        c = Counter()
        c.inc(4)
        assert c.sample() == {"value": 4.0}


class TestGauge:
    def test_last_write_wins(self) -> None:
        g = Gauge()
        g.set(1.0)
        g.set(7.0)
        assert g.sample() == {"value": 7.0}


class TestHistogram:
    def test_empty_sample(self) -> None:
        assert Histogram().sample() == {"count": 0}

    def test_statistics(self) -> None:
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        fields = h.sample()
        assert fields["count"] == 100
        assert fields["min"] == 1.0
        assert fields["max"] == 100.0
        assert fields["mean"] == pytest.approx(50.5)
        assert fields["p50"] == pytest.approx(50.0, abs=1.5)
        assert fields["p99"] == pytest.approx(99.0, abs=1.5)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self) -> None:
        reg = MetricsRegistry()
        a = reg.counter("runs", policy="KP")
        b = reg.counter("runs", policy="KP")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_metrics(self) -> None:
        reg = MetricsRegistry()
        reg.counter("runs", policy="KP").inc()
        reg.counter("runs", policy="BL").inc(2)
        rows = reg.snapshot()
        assert len(rows) == 2
        by_label = {row["labels"]["policy"]: row["value"] for row in rows}
        assert by_label == {"BL": 2.0, "KP": 1.0}

    def test_type_mismatch_raises(self) -> None:
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MeasurementError):
            reg.gauge("x")

    def test_snapshot_rows_are_jsonl_ready(self) -> None:
        import json

        reg = MetricsRegistry()
        reg.gauge("g", host="a").set(1.5)
        reg.histogram("h").observe(2.0)
        for row in reg.snapshot():
            assert row["kind"] == "metric"
            assert row["type"] in {"counter", "gauge", "histogram"}
            json.dumps(row)  # must not raise

    def test_snapshot_sorted_by_name_then_labels(self) -> None:
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", z="2").inc()
        reg.counter("a", z="1").inc()
        names = [(r["name"], r["labels"]) for r in reg.snapshot()]
        assert names == [("a", {"z": "1"}), ("a", {"z": "2"}), ("b", {})]
