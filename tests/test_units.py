"""Tests for unit helpers."""

from __future__ import annotations

import pytest

from repro import units


class TestConversions:
    def test_ms(self) -> None:
        assert units.ms(8) == pytest.approx(8e-3)

    def test_us(self) -> None:
        assert units.us(250) == pytest.approx(250e-6)

    def test_roundtrips(self) -> None:
        assert units.to_ms(units.ms(7.5)) == pytest.approx(7.5)
        assert units.to_us(units.us(42)) == pytest.approx(42)

    def test_seconds_identity(self) -> None:
        assert units.seconds(3) == 3.0

    def test_gib_to_gb(self) -> None:
        assert units.gib_to_gb(1.0) == pytest.approx(1.073741824)


class TestClamp:
    def test_clamps(self) -> None:
        assert units.clamp(5.0, 0.0, 1.0) == 1.0
        assert units.clamp(-5.0, 0.0, 1.0) == 0.0
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_empty_interval_rejected(self) -> None:
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)
