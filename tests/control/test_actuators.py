"""Actuator facade: journaling, dedup, and fault injection."""

from __future__ import annotations

import pytest

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig, HostControlPlane
from repro.errors import ConfigurationError
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.stream import stream_profile


@pytest.fixture
def task(node: Node) -> BatchTask:
    placement = Placement(cores=frozenset(range(4, 8)), mem_weights={0: 1.0})
    task = BatchTask("lo", node.machine, placement, stream_profile(4))
    task.start()
    return task


class TestDedupAndJournal:
    def test_cpuset_write_journaled_once(self, node: Node, task: BatchTask) -> None:
        plane = HostControlPlane(node)
        assert plane.set_task_cpus(task, {4, 5}) == 1
        assert task.placement.cores == frozenset({4, 5})
        # Re-writing the in-effect mask is dropped before the machine.
        assert plane.set_task_cpus(task, {4, 5}) == 0
        assert len(plane.journal) == 1
        record = plane.journal[0]
        assert (record.kind, record.target, record.value, record.status) == (
            "cpuset", "lo", "4-5", "applied"
        )

    def test_park_dedup(self, node: Node, task: BatchTask) -> None:
        plane = HostControlPlane(node)
        assert plane.set_task_cpus(task, frozenset()) == 1
        assert task.parked
        assert plane.set_task_cpus(task, frozenset()) == 0
        assert [r.value for r in plane.journal] == ["parked"]

    def test_prefetcher_writes_only_changed_cores(self, node: Node) -> None:
        plane = HostControlPlane(node)
        cores = node.lo_subdomain_cores()
        # All cores start enabled: disabling all but 2 writes len-2 MSRs.
        assert plane.set_lo_prefetchers(2) == len(cores) - 2
        assert plane.set_lo_prefetchers(2) == 0  # already in effect
        assert plane.set_lo_prefetchers(3) == 1  # one core flips back on
        assert all(r.kind == "msr" for r in plane.journal)

    def test_mba_dedup_reads_live_state(self, node: Node) -> None:
        plane = HostControlPlane(node)
        plane.create_clos_group(2)
        assert plane.set_mb_percent(2, 60) == 1
        assert plane.set_mb_percent(2, 60) == 0
        # A write that bypassed the plane is still seen by the dedup.
        node.resctrl.set_mb_percent(2, 30)
        assert plane.set_mb_percent(2, 30) == 0
        assert plane.set_mb_percent(2, 60) == 1

    def test_writes_this_tick_resets_at_begin_tick(
        self, node: Node, task: BatchTask
    ) -> None:
        plane = HostControlPlane(node)
        plane.begin_tick()
        plane.set_task_cpus(task, {4, 5})
        assert plane.writes_this_tick == 1
        plane.begin_tick()
        assert plane.writes_this_tick == 0


class TestFaultInjection:
    def test_config_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ActuationFaultConfig(fail_prob=1.0)
        with pytest.raises(ConfigurationError):
            ActuationFaultConfig(defer_prob=-0.1)
        with pytest.raises(ConfigurationError):
            ActuationFaultConfig(max_retries=-1)
        assert not ActuationFaultConfig().active
        assert ActuationFaultConfig(fail_prob=0.1).active

    def test_failed_write_leaves_knob_unchanged(
        self, node: Node, task: BatchTask
    ) -> None:
        faults = ActuationFaultConfig(fail_prob=0.999, max_retries=2, seed=1)
        plane = HostControlPlane(node, faults)
        plane.set_task_cpus(task, {4, 5})
        record = plane.journal[-1]
        assert record.status == "failed"
        assert record.attempts == 3  # first try + 2 retries
        assert task.placement.cores == frozenset(range(4, 8))

    def test_deferred_write_lands_at_next_tick(
        self, node: Node, task: BatchTask
    ) -> None:
        faults = ActuationFaultConfig(defer_prob=0.999, seed=2)
        plane = HostControlPlane(node, faults)
        plane.begin_tick()
        plane.set_task_cpus(task, {4, 5})
        assert plane.journal[-1].status == "deferred"
        assert task.placement.cores == frozenset(range(4, 8))  # not yet
        plane.begin_tick()  # the deferred write lands before the decision
        assert task.placement.cores == frozenset({4, 5})
        assert plane.journal[-1].status == "applied"

    def test_setup_writes_never_faulted(self, node: Node) -> None:
        faults = ActuationFaultConfig(fail_prob=0.999, max_retries=0, seed=3)
        plane = HostControlPlane(node, faults)
        plane.create_clos_group(1)
        plane.dedicate_llc_ways(1, 6)
        plane.setup_mb_percent(1, 100)
        assert [r.status for r in plane.journal] == ["applied"] * 3

    def test_window_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ActuationFaultConfig(windows=((5.0, 5.0),))
        with pytest.raises(ConfigurationError):
            ActuationFaultConfig(windows=((10.0, 5.0),))
        windows_only = ActuationFaultConfig(windows=((1.0, 2.0),))
        assert windows_only.active
        assert not windows_only.stochastic

    def test_writes_fail_only_inside_window(
        self, node: Node, task: BatchTask
    ) -> None:
        faults = ActuationFaultConfig(windows=((5.0, 10.0),))
        plane = HostControlPlane(node, faults)
        plane.set_task_cpus(task, {4, 5})
        assert plane.journal[-1].status == "applied"
        node.sim.run_until(5.0)  # window start is inclusive
        plane.set_task_cpus(task, {4, 6})
        assert plane.journal[-1].status == "failed"
        assert task.placement.cores == frozenset({4, 5})  # knob unchanged
        node.sim.run_until(10.0)  # window stop is exclusive
        plane.set_task_cpus(task, {4, 6})
        assert plane.journal[-1].status == "applied"
        assert task.placement.cores == frozenset({4, 6})

    def test_live_windows_are_mutable(self, node: Node, task: BatchTask) -> None:
        plane = HostControlPlane(node)
        assert plane.fault_windows == []
        plane.fault_windows.append((0.0, 1.0))
        plane.set_task_cpus(task, {4, 5})
        assert plane.journal[-1].status == "failed"
        plane.fault_windows.clear()
        plane.set_task_cpus(task, {4, 5})
        assert plane.journal[-1].status == "applied"

    def test_windows_never_touch_the_stochastic_stream(
        self, node: Node
    ) -> None:
        def stochastic_statuses(with_window: bool) -> list[str]:
            placement = Placement(
                cores=frozenset(range(4, 8)), mem_weights={0: 1.0}
            )
            task = BatchTask("w", node.machine, placement, stream_profile(4))
            task.start()
            start = node.sim.now
            windows = ((start, start + 0.5),) if with_window else ()
            plane = HostControlPlane(
                node,
                ActuationFaultConfig(
                    fail_prob=0.4, max_retries=0, seed=11, windows=windows
                ),
            )
            if with_window:
                # In-window writes fail deterministically and must not
                # advance the RNG the flat-rate stream draws from.
                for _ in range(5):
                    plane.set_task_cpus(task, frozenset({4}))
                    assert plane.journal[-1].status == "failed"
                node.sim.run_until(start + 0.5)  # window expires
            out = []
            for width in (2, 3, 2, 3, 2, 3, 2, 3):
                plane.set_task_cpus(task, frozenset(range(4, 4 + width)))
                out.append(plane.journal[-1].status)
            task.stop()
            return out

        with_window = stochastic_statuses(True)
        without = stochastic_statuses(False)
        assert with_window == without
        assert "failed" in without  # the flat rate actually bites

    def test_fault_stream_is_deterministic(self, node: Node) -> None:
        def statuses() -> list[str]:
            placement = Placement(
                cores=frozenset(range(4, 8)), mem_weights={0: 1.0}
            )
            task = BatchTask("d", node.machine, placement, stream_profile(4))
            task.start()
            plane = HostControlPlane(
                node,
                ActuationFaultConfig(fail_prob=0.4, max_retries=0, seed=11),
            )
            out = []
            for width in (2, 3, 2, 3, 2, 3, 2, 3):
                plane.set_task_cpus(task, frozenset(range(4, 4 + width)))
                out.append(plane.journal[-1].status)
            task.stop()
            return out

        first, second = statuses(), statuses()
        assert first == second
        assert "failed" in first  # the fault rate actually bites
