"""Sensor-suite layer: perfect reads and composable degradations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.node import Node
from repro.control.sensors import (
    DropoutSensors,
    NoisySensors,
    PerfectSensors,
    SensorConfig,
    StaleSensors,
    build_sensor_suite,
)
from repro.core.measurements import KelpMeasurements, measure_node
from repro.errors import ConfigurationError


class StubSensors:
    """A scripted inner suite: returns successive canned samples."""

    def __init__(self, samples: list[KelpMeasurements]) -> None:
        self._samples = samples
        self.reads = 0

    def sample(self) -> KelpMeasurements:
        sample = self._samples[min(self.reads, len(self._samples) - 1)]
        self.reads += 1
        return sample


def _m(bw: float) -> KelpMeasurements:
    return KelpMeasurements(
        socket_bw=bw, socket_latency=1.2, saturation=0.1, hipri_bw=bw / 2,
        elapsed=1.0,
    )


class TestPerfectSensors:
    def test_matches_direct_measure_node(self, node: Node) -> None:
        suite = PerfectSensors(node, reader="t1")
        node.sim.run_until(1.0)
        direct = measure_node(node, reader="t2")
        via_suite = suite.sample()
        assert via_suite == direct


class TestStaleSensors:
    def test_holds_sample_for_period(self) -> None:
        clock = {"now": 0.0}
        stub = StubSensors([_m(10.0), _m(20.0), _m(30.0)])
        suite = StaleSensors(stub, period=2.0, now_fn=lambda: clock["now"])
        assert suite.sample().socket_bw == 10.0
        clock["now"] = 1.0  # inside the hold window: same sample, no read
        assert suite.sample().socket_bw == 10.0
        assert stub.reads == 1
        clock["now"] = 2.0  # hold elapsed: refresh
        assert suite.sample().socket_bw == 20.0
        assert stub.reads == 2

    def test_rejects_nonpositive_period(self) -> None:
        with pytest.raises(ConfigurationError):
            StaleSensors(StubSensors([_m(1.0)]), period=0.0, now_fn=lambda: 0.0)


class TestNoisySensors:
    def test_noise_is_deterministic_and_clamped(self) -> None:
        def build() -> KelpMeasurements:
            stub = StubSensors([_m(10.0)])
            rng = np.random.default_rng(np.random.SeedSequence(7))
            return NoisySensors(stub, sigma=0.5, rng=rng).sample()

        a, b = build(), build()
        assert a == b  # same seed, same noise
        assert a.socket_bw != 10.0  # noise actually applied
        assert 0.0 <= a.saturation <= 1.0
        assert a.socket_latency >= 0.0
        assert a.elapsed == 1.0  # the window length is not a counter

    def test_zero_sigma_is_identity(self) -> None:
        stub = StubSensors([_m(10.0)])
        rng = np.random.default_rng(0)
        assert NoisySensors(stub, sigma=0.0, rng=rng).sample() == _m(10.0)


class TestDropoutSensors:
    def test_first_sample_never_dropped(self) -> None:
        stub = StubSensors([_m(10.0), _m(20.0)])
        rng = np.random.default_rng(0)
        suite = DropoutSensors(stub, probability=0.9, rng=rng)
        assert suite.sample().socket_bw == 10.0
        assert suite.dropped == 0

    def test_dropped_samples_deliver_last_good(self) -> None:
        stub = StubSensors([_m(float(i)) for i in range(1, 40)])
        rng = np.random.default_rng(3)
        suite = DropoutSensors(stub, probability=0.5, rng=rng)
        values = [suite.sample().socket_bw for _ in range(30)]
        assert suite.dropped > 0
        # A dropped read repeats the previous delivery.
        repeats = sum(1 for a, b in zip(values, values[1:]) if a == b)
        assert repeats == suite.dropped
        # The fresh reads still advance in order.
        assert values == sorted(values)


class TestBuildSensorSuite:
    def test_none_and_zero_config_build_perfect(self, node: Node) -> None:
        assert isinstance(build_sensor_suite(node, "a", None), PerfectSensors)
        assert isinstance(
            build_sensor_suite(node, "b", SensorConfig()), PerfectSensors
        )

    def test_full_stack_order(self, node: Node) -> None:
        config = SensorConfig(
            staleness_period=2.0, noise_sigma=0.1, dropout_prob=0.1, seed=5
        )
        assert config.degraded
        suite = build_sensor_suite(node, "c", config)
        # Outside in: dropout(stale(noisy(perfect))).
        assert isinstance(suite, DropoutSensors)
        assert isinstance(suite._inner, StaleSensors)
        assert isinstance(suite._inner._inner, NoisySensors)
        assert isinstance(suite._inner._inner._inner, PerfectSensors)

    def test_config_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            SensorConfig(staleness_period=-1.0)
        with pytest.raises(ConfigurationError):
            SensorConfig(noise_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            SensorConfig(dropout_prob=1.0)
