"""Control-loop behaviour: NOP dedup, journal accounting, degraded modes."""

from __future__ import annotations

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.core.actions import Action
from repro.core.policies import make_policy
from repro.sim.engine import PRIORITY_CONTROL
from repro.workloads.cpu.base import BatchTask
from repro.workloads.cpu.catalog import cpu_workload


def build(node: Node, policy_name: str = "KP", **kwargs):
    """A prepared policy with a registered stitch workload, ready to tick."""
    policy = make_policy(policy_name, node, ml_cores=4, **kwargs)
    policy.prepare()
    roles: dict[str, list] = {}
    for plan in policy.plan_cpu(cpu_workload("stitch", 6)):
        task = BatchTask(plan.task_id, node.machine, plan.placement, plan.profile)
        task.start()
        roles.setdefault(plan.role, []).append(task)
    policy.register(roles)
    return policy


def drive(node: Node, policy, seconds: float) -> None:
    node.sim.every(policy.interval, policy.tick, priority=PRIORITY_CONTROL)
    node.sim.run_until(node.sim.now + seconds)


class TestNopDedup:
    def test_nop_nop_ticks_perform_zero_writes(self, node: Node) -> None:
        """Regression: a quiescent tick must not touch the machine.

        Before the control-plane refactor the runtime re-wrote cpuset masks
        and prefetcher MSRs every tick regardless of whether the decision
        changed anything; the journaled facade dedups writes whose value is
        already in effect, so NOP/NOP ticks leave the journal untouched.
        """
        policy = build(node, "KP")
        drive(node, policy, 20.0)
        history = policy.tick_history()
        nop_ticks = [
            r for r in history[1:]
            if r.action_hi is Action.NOP and r.action_lo is Action.NOP
        ]
        assert nop_ticks, "expected at least one quiescent tick"
        assert all(r.writes == 0 for r in nop_ticks)
        # Non-NOP ticks are the only ones allowed to actuate.
        writers = [r for r in history if r.writes > 0]
        assert all(
            r.action_hi is not Action.NOP or r.action_lo is not Action.NOP
            for r in writers[1:]
        )

    def test_journal_accounts_for_every_tick_write(self, node: Node) -> None:
        policy = build(node, "KP")
        setup_writes = len(policy.actuation_journal())
        assert setup_writes > 0  # CAT partitioning is journaled too
        drive(node, policy, 16.0)
        history = policy.tick_history()
        runtime_writes = len(policy.actuation_journal()) - setup_writes
        assert runtime_writes == sum(r.writes for r in history)

    def test_noop_ticks_skip_the_resolve_entirely(self, node: Node) -> None:
        """A zero-write tick must not trigger a contention re-solve.

        Enforcement runs under ``hold_recompute``; when every knob already
        holds its decided value the control plane dedups all writes, the
        machine is never notified, and the loop counts the tick in
        ``noop_ticks`` — the event-engine no-op fast path.
        """
        policy = build(node, "KP")
        drive(node, policy, 20.0)
        loop = policy.loop
        assert loop is not None
        zero_write_ticks = sum(
            1 for r in loop.history if r.writes == 0
        )
        assert loop.noop_ticks == zero_write_ticks
        assert loop.noop_ticks > 0, "expected at least one no-op tick"

    def test_noop_tick_solver_is_untouched(self, node: Node) -> None:
        policy = build(node, "KP")
        drive(node, policy, 20.0)
        solver = node.machine.solver
        before = solver.stats.solves + solver.stats.signature_short_circuits
        # Re-run one tick at an instant where the previous decision already
        # holds: with no time advanced and no knob moved, enforcement dedups
        # every write and the solver sees no traffic at all.
        noop_before = policy.loop.noop_ticks
        policy.tick()
        if policy.loop.noop_ticks > noop_before:
            after = solver.stats.solves + solver.stats.signature_short_circuits
            assert after == before

    def test_ct_nop_ticks_are_quiescent_too(self, node: Node) -> None:
        policy = build(node, "CT")
        drive(node, policy, 20.0)
        nop_ticks = [
            r for r in policy.tick_history()[1:]
            if r.action_hi is Action.NOP and r.action_lo is Action.NOP
        ]
        assert nop_ticks
        assert all(r.writes == 0 for r in nop_ticks)


class TestDegradedModes:
    def test_degraded_sensors_run_is_deterministic(self, node: Node) -> None:
        config = SensorConfig(
            staleness_period=2.0, noise_sigma=0.2, dropout_prob=0.2, seed=9
        )
        policy = build(node, "KP", sensors=config)
        drive(node, policy, 16.0)
        trail = [
            (r.lo_cores, r.lo_prefetchers, r.backfill_cores)
            for r in policy.tick_history()
        ]
        assert trail  # the loop ran

    def test_actuation_faults_surface_in_journal(self, node: Node) -> None:
        faults = ActuationFaultConfig(fail_prob=0.3, defer_prob=0.3, seed=4)
        policy = build(node, "KP", faults=faults)
        drive(node, policy, 24.0)
        statuses = {r.status for r in policy.actuation_journal()}
        assert "applied" in statuses
        # With 30 %/30 % rates over a 24 s run at least one write must have
        # been lost or delayed (deterministic under the fixed seed).
        assert statuses & {"failed", "deferred"}

    def test_perfect_config_matches_default_run(self, node: Node, spec) -> None:
        from repro.node import Node as NodeCls
        from repro.sim import Simulator

        def trail(sensors, faults):
            sim = Simulator()
            fresh = NodeCls.create(spec, sim)
            policy = build(fresh, "KP", sensors=sensors, faults=faults)
            drive(fresh, policy, 12.0)
            return [r.as_dict() for r in policy.tick_history()]

        baseline = trail(None, None)
        explicit = trail(SensorConfig(), ActuationFaultConfig())
        assert baseline == explicit
