"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys) -> None:
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table1" in out

    def test_run_fig02(self, capsys) -> None:
        assert main(["run", "fig02"]) == 0
        assert "Fig 2" in capsys.readouterr().out

    def test_mix(self, capsys) -> None:
        code = main([
            "mix", "--ml", "cnn1", "--policy", "KP",
            "--cpu", "stitch", "--intensity", "2", "--duration", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ml_perf_norm" in out
        assert "controller" in out

    def test_mix_without_cpu(self, capsys) -> None:
        assert main(["mix", "--ml", "cnn2", "--duration", "12"]) == 0
        assert "cpu_throughput   0.000" in capsys.readouterr().out

    def test_missing_command_errors(self) -> None:
        with pytest.raises(SystemExit):
            main([])
