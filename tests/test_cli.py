"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys) -> None:
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table1" in out

    def test_run_fig02(self, capsys) -> None:
        assert main(["run", "fig02"]) == 0
        assert "Fig 2" in capsys.readouterr().out

    def test_mix(self, capsys) -> None:
        code = main([
            "mix", "--ml", "cnn1", "--policy", "KP",
            "--cpu", "stitch", "--intensity", "2", "--duration", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ml_perf_norm" in out
        assert "controller" in out

    def test_mix_without_cpu(self, capsys) -> None:
        assert main(["mix", "--ml", "cnn2", "--duration", "12"]) == 0
        assert "cpu_throughput   0.000" in capsys.readouterr().out

    def test_fleet_sim(self, capsys) -> None:
        code = main([
            "fleet-sim", "--nodes", "2", "--policy", "KP",
            "--routing", "least-loaded", "--duration", "3",
            "--warmup", "1", "--batch-jobs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet-sim: 2 nodes x KP (least-loaded routing)" in out
        assert "fleet efficiency" in out

    def test_missing_command_errors(self) -> None:
        with pytest.raises(SystemExit):
            main([])


class TestCliObservability:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys) -> None:
        out_dir = tmp_path / "out"
        code = main([
            "run", "fig03",
            "--trace-out", str(out_dir),
            "--metrics-out", str(out_dir / "m.jsonl"),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "wrote" in stdout
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "m.jsonl").exists()
        assert (out_dir / "fig03.manifest.json").exists()

    def test_mix_with_trace_out(self, tmp_path, capsys) -> None:
        import json

        out_dir = tmp_path / "out"
        code = main([
            "mix", "--ml", "rnn1", "--policy", "KP",
            "--cpu", "cpuml", "--intensity", "2", "--duration", "10",
            "--trace-out", str(out_dir),
        ])
        assert code == 0
        trace = json.loads((out_dir / "trace.json").read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        # Phase intervals, counters, metadata all present.
        assert {"X", "C", "M"} <= phases

    def test_trace_env_var_default(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "envout"))
        assert main(["run", "fig03"]) == 0
        assert (tmp_path / "envout" / "trace.json").exists()

    def test_no_flags_writes_nothing(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["run", "fig03"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_fleet_sim_with_outputs(self, tmp_path, capsys) -> None:
        import json

        out_dir = tmp_path / "out"
        code = main([
            "fleet-sim", "--nodes", "2", "--duration", "3", "--warmup", "1",
            "--trials", "2", "--jobs", "2",
            "--trace-out", str(out_dir),
            "--metrics-out", str(out_dir / "m.jsonl"),
        ])
        assert code == 0
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "fleet-sim.manifest.json").exists()
        rows = [
            json.loads(line)
            for line in (out_dir / "m.jsonl").read_text().splitlines()
        ]
        kinds = {row.get("kind") for row in rows}
        assert "fleet_run" in kinds and "fleet_tenant" in kinds
        manifest = json.loads((out_dir / "fleet-sim.manifest.json").read_text())
        assert manifest["config"]["fleet_nodes"] == 2
        assert "fleet.seed" in manifest["seeds"]

    def test_fleet_serve_smoke(self, tmp_path, capsys) -> None:
        import json

        summary = tmp_path / "serve.json"
        code = main([
            "fleet-serve", "--trace-duration", "20", "--trace-rate", "12",
            "--trace-seed", "11", "--nodes", "2", "--seed", "5",
            "--epoch", "1", "--no-telemetry",
            "--command", "3:evict:search", "--command", "8:admit:search",
            "--summary-json", str(summary),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet-serve:" in out
        assert "evict:search" in out
        payload = json.loads(summary.read_text())
        assert payload["epochs"] == 20
        assert len(payload["snapshots"]) == 20
        assert ["3", "evict:search"] != payload["commands"][0]  # ints kept
        assert payload["commands"][0] == [3, "evict:search"]

    def test_fleet_serve_save_restore_identical(self, tmp_path, capsys) -> None:
        ckpt = tmp_path / "ckpt.bin"
        base = [
            "fleet-serve", "--trace-duration", "20", "--trace-rate", "12",
            "--trace-seed", "11", "--nodes", "2", "--seed", "5",
            "--epoch", "1", "--no-telemetry", "--command", "3:evict:search",
        ]
        assert main(base + ["--save", str(ckpt), "--save-at", "6"]) == 0
        saved = capsys.readouterr().out
        assert ckpt.exists()
        assert main(base + ["--restore", str(ckpt)]) == 0
        restored = capsys.readouterr().out
        # Identical apart from the provenance line and the "wrote" echo.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if "trace source" not in line and not line.startswith("wrote ")
        ]
        assert strip(restored) == strip(saved)

    def test_fleet_serve_bad_command_spec(self, capsys) -> None:
        code = main([
            "fleet-serve", "--trace-duration", "10",
            "--command", "5:reboot",
        ])
        assert code == 2
        assert "verb" in capsys.readouterr().err

    def test_fleet_incidents_smoke(self, tmp_path, capsys) -> None:
        scenario = tmp_path / "scenario.json"
        code = main([
            "fleet-incidents", "--trace-duration", "300", "--trace-rate", "2",
            "--trace-seed", "3", "--nodes", "2", "--routing", "random",
            "--interval", "10", "--warmup", "20", "--seed", "7",
            "--incident-seed", "5", "--classes", "node-death",
            "--save-scenario", str(scenario),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet-incidents:" in out
        assert "node-death" in out
        assert scenario.exists()
        # Replaying the saved scenario must be accepted and identical.
        code = main([
            "fleet-incidents", "--trace-duration", "300", "--trace-rate", "2",
            "--trace-seed", "3", "--nodes", "2", "--routing", "random",
            "--interval", "10", "--warmup", "20", "--seed", "7",
            "--scenario", str(scenario),
        ])
        assert code == 0
        replay = capsys.readouterr().out
        assert replay.splitlines()[3:] == out.splitlines()[3:-1]

    def test_fleet_incidents_scenario_conflicts(self, tmp_path, capsys) -> None:
        for extra in (["--classes", "node-death"], ["--incident-seed", "9"]):
            code = main([
                "fleet-incidents", "--scenario", str(tmp_path / "s.json"),
                *extra,
            ])
            assert code == 2
            assert "cannot be combined" in capsys.readouterr().err

    def test_fleet_incidents_missing_scenario(self, capsys) -> None:
        code = main(["fleet-incidents", "--scenario", "/does/not/exist.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert "scenario file not found" in err
