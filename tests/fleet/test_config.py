"""FleetConfig / TenantSpec / BatchJobSpec validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fleet.config import (
    BatchJobSpec,
    FleetConfig,
    ROUTING_NAMES,
    TenantSpec,
    default_tenants,
    uniform_batch_jobs,
)


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec(name="t")
        assert spec.load_fraction == pytest.approx(0.30)
        assert spec.slo_p99_s == pytest.approx(0.060)
        assert not spec.deterministic

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "load_fraction": 0.0},
            {"name": "t", "load_fraction": -0.1},
            {"name": "t", "slo_p99_s": 0.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSpec(**kwargs)


class TestBatchJobSpec:
    def test_requires_workload(self):
        with pytest.raises(ConfigurationError):
            BatchJobSpec(workload="")

    def test_uniform_batch_jobs(self):
        jobs = uniform_batch_jobs(3, workload="stitch", intensity=2)
        assert len(jobs) == 3
        assert all(j == BatchJobSpec("stitch", 2) for j in jobs)
        assert uniform_batch_jobs(0) == ()
        with pytest.raises(ConfigurationError):
            uniform_batch_jobs(-1)


class TestFleetConfig:
    def test_defaults_are_valid(self):
        config = FleetConfig()
        assert config.nodes == 8
        assert config.routing in ROUTING_NAMES
        assert config.tenants == default_tenants()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"routing": "round-robin"},
            {"tenants": ()},
            {"duration": 2.0, "warmup": 2.0},
            {"interval": 0.0},
            {"max_jobs_per_node": 0},
            {"eviction_patience": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetConfig(**kwargs)

    def test_scaled_load(self):
        config = FleetConfig()
        scaled = config.scaled_load(2.0)
        assert scaled.total_load_fraction() == pytest.approx(
            2.0 * config.total_load_fraction()
        )
        # The tenant split is preserved.
        assert [t.name for t in scaled.tenants] == [
            t.name for t in config.tenants
        ]
        with pytest.raises(ConfigurationError):
            config.scaled_load(0.0)

    def test_total_load_fraction_default_mix(self):
        assert FleetConfig().total_load_fraction() == pytest.approx(0.50)
