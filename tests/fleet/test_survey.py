"""Tests for the fleet bandwidth survey (Fig 2 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet.survey import FleetSurvey, fleet_bandwidth_cdf
from repro.errors import ConfigurationError


class TestFleetSurvey:
    def test_p99_in_unit_interval(self) -> None:
        p99 = FleetSurvey(machines=200, seed=1).machine_p99()
        assert len(p99) == 200
        assert np.all((0 <= p99) & (p99 <= 1))

    def test_deterministic_by_seed(self) -> None:
        a = FleetSurvey(machines=100, seed=5).machine_p99()
        b = FleetSurvey(machines=100, seed=5).machine_p99()
        assert np.array_equal(a, b)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            FleetSurvey(machines=0)


class TestFleetCdf:
    def test_cdf_monotone(self) -> None:
        cdf = fleet_bandwidth_cdf(FleetSurvey(machines=500, seed=2))
        assert np.all(np.diff(cdf.utilization) >= 0)
        assert np.all(np.diff(cdf.fraction_of_machines) > 0)
        assert cdf.fraction_of_machines[-1] == pytest.approx(1.0)

    def test_headline_statistic_near_paper(self) -> None:
        cdf = fleet_bandwidth_cdf()
        # The paper reports 16% of machines above 70% of peak.
        assert cdf.fraction_above_70pct == pytest.approx(0.16, abs=0.05)
