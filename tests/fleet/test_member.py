"""FleetMember: node assembly, request attribution, batch-job slots."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.fleet.member import FleetMember, NodeSignals
from repro.sim import Simulator
from repro.workloads.cpu.catalog import cpu_workload
from repro.workloads.ml.base import InferenceServerTask
from repro.workloads.ml.catalog import ml_workload


@pytest.fixture
def factory():
    return ml_workload("rnn1")


def _member(sim, factory, on_complete=None, **kwargs) -> FleetMember:
    return FleetMember(
        index=kwargs.pop("index", 0),
        sim=sim,
        factory=factory,
        policy_name=kwargs.pop("policy_name", "KP"),
        interval=0.5,
        warmup=0.0,
        seed=123,
        on_complete=on_complete,
        **kwargs,
    )


class TestAssembly:
    def test_builds_node_policy_and_server(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        assert isinstance(member.server, InferenceServerTask)
        assert member.node.accel_socket == 0
        assert member.load == 0
        assert member.last_signals is None
        # load_fraction=0: arrivals come from the fleet, not a loadgen.
        assert member.instance.loadgen is None

    def test_heterogeneous_accel_socket(self, factory):
        """Fleet nodes may host the accelerator on the second socket."""
        sim = Simulator()
        member = _member(sim, factory, accel_socket=1)
        node = member.node
        assert node.accel_socket == 1
        subdomains = node.machine.topology.subdomains_of_socket(1)
        assert node.hi_subdomain in subdomains
        assert node.lo_subdomain in subdomains
        member.start()
        sim.at(0.10, lambda: member.submit(0))
        sim.at(0.30, lambda: member.submit(0))
        sim.run_until(1.0)
        signals = member.sample()
        # Telemetry reads the accelerator's socket, not socket 0.
        assert signals.node_index == 0
        assert signals.socket_bw_gbps > 0.0


class TestAttribution:
    def test_completion_attributed_to_submitting_tenant(self, factory):
        sim = Simulator()
        seen: list[tuple[int, bool, float, float]] = []

        def on_complete(member, tenant, counted, start, end):
            seen.append((tenant, counted, start, end))

        member = _member(sim, factory, on_complete=on_complete)
        member.start()
        sim.at(0.10, lambda: member.submit(3))
        sim.at(0.20, lambda: member.submit(7, counted=False))
        sim.run_until(2.0)
        assert [(tenant, counted) for tenant, counted, _, _ in seen] == [
            (3, True),
            (7, False),
        ]
        for _, _, start, end in seen:
            assert end > start
        # The owner map drains as requests complete.
        assert not member._owners

    def test_stop_detaches_listener(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        member.start()
        assert member._complete in member.server.completion_listeners
        member.stop()
        assert member._complete not in member.server.completion_listeners


class TestTelemetry:
    def test_sample_fields(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        member.start()
        sim.at(0.10, lambda: member.submit(0))
        sim.run_until(1.0)
        signals = member.sample()
        assert isinstance(signals, NodeSignals)
        assert member.last_signals is signals
        assert signals.time == pytest.approx(1.0)
        assert signals.socket_bw_gbps > 0.0
        assert 0.0 <= signals.saturation <= 1.0
        assert signals.latency_factor >= 1.0
        assert signals.batch_jobs == 0
        assert signals.pressure() >= 0.0

    def test_hot_streak_counts_consecutive_hot_samples(self, factory):
        sim = Simulator()
        member = _member(sim, factory, policy_name="BL")
        member.start()
        sim.run_until(0.5)
        member.sample()
        # An idle node is never hot; the streak stays at zero.
        assert member.hot_streak == 0


class TestBatchJobs:
    def test_place_and_remove_job_cleans_role_lists(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        member.start()
        sim.run_until(0.5)
        profile = cpu_workload("stream", 2)
        member.place_job("jobA", profile, warmup=0.0)
        assert member.job_count == 1
        assert member.job_ids == ("jobA",)
        tasks = list(member._jobs["jobA"])
        assert tasks
        role_resident = member.node.lo_tasks + member.node.backfill_tasks
        assert all(task in role_resident for task in tasks)

        sim.run_until(1.5)
        member.remove_job("jobA")
        assert member.job_count == 0
        for task in tasks:
            assert task not in member.node.lo_tasks
            assert task not in member.node.backfill_tasks

    def test_duplicate_and_missing_job_ids_raise(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        member.start()
        profile = cpu_workload("stream", 2)
        member.place_job("jobA", profile, warmup=0.0)
        with pytest.raises(SchedulingError):
            member.place_job("jobA", profile, warmup=0.0)
        with pytest.raises(SchedulingError):
            member.remove_job("jobB")

    def test_evicted_job_throughput_freezes(self, factory):
        """A removed job must not extrapolate phantom units to run end."""
        sim = Simulator()
        member = _member(sim, factory)
        member.start()
        member.place_job("jobA", cpu_workload("stream", 2), warmup=0.0)
        sim.run_until(2.0)
        member.remove_job("jobA")
        at_eviction = member.batch_throughput(2.0) * 2.0
        assert at_eviction > 0.0
        sim.run_until(6.0)
        # Units accrued stay what they were at the eviction instant.
        assert member.batch_throughput(6.0) * 6.0 == pytest.approx(
            at_eviction, rel=1e-9
        )

    def test_rng_stream_determinism(self, factory):
        sim = Simulator()
        member = _member(sim, factory)
        a = member.rng_stream(42, 7).integers(0, 1 << 30, size=4)
        b = member.rng_stream(42, 7).integers(0, 1 << 30, size=4)
        c = member.rng_stream(42, 8).integers(0, 1 << 30, size=4)
        assert list(a) == list(b)
        assert list(a) != list(c)
