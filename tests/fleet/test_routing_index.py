"""The incremental routing index vs the reference O(N) scan.

The index's whole contract is *choice identity*: for any sequence of
member events (admissions, completions, telemetry samples, rotation
flips) it must pick exactly the member ``min(members, key=...)`` would —
including ties, which both sides break on the lowest member index. The
property test drives randomized event sequences over stub members
(including pressure values parked exactly on ``PRESSURE_BUCKET``
boundaries, where quantized keys tie); the golden test replays a real
trace fleet with the index enabled and disabled and compares summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.index import (
    INDEX_ENV,
    RoutingIndex,
    index_enabled,
    make_routing_index,
)
from repro.fleet.member import NodeSignals
from repro.fleet.routing import (
    PRESSURE_BUCKET,
    InterferenceAwareRouter,
    LeastLoadedRouter,
    make_router,
)


def _signals(index: int, saturation: float) -> NodeSignals:
    """A telemetry snapshot whose pressure equals ``saturation``."""
    return NodeSignals(
        node_index=index,
        time=0.0,
        socket_bw_gbps=0.0,
        latency_factor=1.0,
        saturation=saturation,
        hipri_bw_gbps=0.0,
        inflight=0,
        queued=0,
        batch_jobs=0,
        saturated=False,
        hot=False,
    )


@dataclass
class StubMember:
    """The member surface the routers and the index actually touch."""

    index: int
    load: int = 0
    in_rotation: bool = True
    last_signals: NodeSignals | None = None
    on_state_change: object = field(default=None, repr=False)

    def notify(self, kind: str) -> None:
        if self.on_state_change is not None:
            self.on_state_change(self, kind)


def _reference_choose(router, members):
    eligible = [m for m in members if m.in_rotation]
    return router.choose(eligible) if eligible else None


#: One member event: (op, member index, value). Pressure values are
#: multiples of PRESSURE_BUCKET/2, so half of them sit exactly on bucket
#: boundaries — the quantized-key tie cases the scan breaks on index.
def _ops(n_members: int):
    return st.tuples(
        st.sampled_from(["admit", "complete", "signals", "rotation"]),
        st.integers(min_value=0, max_value=n_members - 1),
        st.integers(min_value=0, max_value=8),
    )


class TestIndexMatchesScan:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=5),
        ops=st.lists(_ops(5), max_size=120),
    )
    @pytest.mark.parametrize("routing", ["least-loaded", "interference-aware"])
    def test_randomized_event_sequences(self, routing, n, ops) -> None:
        router = make_router(routing)
        members = [StubMember(index=i) for i in range(n)]
        index = make_routing_index(router, members)
        assert index is not None
        for member in members:
            member.on_state_change = index.on_member_event

        assert index.choose() is _reference_choose(router, members)
        for op, raw_idx, value in ops:
            member = members[raw_idx % n]
            if op == "admit":
                member.load += 1
                member.notify("load")
            elif op == "complete":
                if member.load:
                    member.load -= 1
                member.notify("load")
            elif op == "signals":
                member.last_signals = _signals(
                    member.index, value * PRESSURE_BUCKET / 2
                )
                member.notify("signals")
            elif op == "rotation":
                member.in_rotation = value % 2 == 0
                member.notify("rotation")
            assert index.choose() is _reference_choose(router, members)

    def test_pressure_bucket_boundary_tie_breaks_on_index(self) -> None:
        """Pressures one bucket apart vs inside the same bucket."""
        router = InterferenceAwareRouter()
        members = [StubMember(index=i) for i in range(3)]
        index = RoutingIndex(members, router._key, load_only=False)
        for member in members:
            member.on_state_change = index.on_member_event
        # All three in the same bucket: quantized keys tie, lowest index
        # wins on both sides.
        for member, saturation in zip(members, [0.049, 0.0, 0.02]):
            member.last_signals = _signals(member.index, saturation)
            member.notify("signals")
        assert index.choose() is members[0]
        assert _reference_choose(router, members) is members[0]
        # Nudge member 0 exactly onto the boundary: one bucket up, so it
        # loses to the still-clean members despite the tiny raw delta.
        members[0].last_signals = _signals(0, PRESSURE_BUCKET)
        members[0].notify("signals")
        assert index.choose() is members[1]
        assert _reference_choose(router, members) is members[1]

    def test_compaction_keeps_choices_identical(self) -> None:
        """Push far past the compaction threshold; choices never drift."""
        router = LeastLoadedRouter()
        members = [StubMember(index=i) for i in range(2)]
        index = make_routing_index(router, members)
        for member in members:
            member.on_state_change = index.on_member_event
        for step in range(500):
            member = members[step % 2]
            member.load = (step * 7) % 11
            member.notify("load")
            assert index.choose() is _reference_choose(router, members)
        assert len(index._heap) <= index._compact_at

    def test_empty_rotation_returns_none(self) -> None:
        router = LeastLoadedRouter()
        members = [StubMember(index=i) for i in range(3)]
        index = make_routing_index(router, members)
        for member in members:
            member.on_state_change = index.on_member_event
            member.in_rotation = False
            member.notify("rotation")
        assert index.choose() is None
        # Rejoining re-inserts via the rotation mark.
        members[2].in_rotation = True
        members[2].notify("rotation")
        assert index.choose() is members[2]


class TestMakeRoutingIndex:
    def test_random_router_is_not_indexed(self) -> None:
        import numpy as np

        router = make_router("random", rng=np.random.default_rng(0))
        assert make_routing_index(router, []) is None

    def test_env_knob_disables(self, monkeypatch) -> None:
        monkeypatch.setenv(INDEX_ENV, "0")
        assert not index_enabled()
        assert make_routing_index(LeastLoadedRouter(), []) is None
        monkeypatch.setenv(INDEX_ENV, "1")
        assert index_enabled()


class TestGoldenEquivalence:
    """A real trace fleet, index on vs off: summaries are bit-identical."""

    @pytest.mark.parametrize("routing", ["least-loaded", "interference-aware"])
    def test_trace_replay_summary_identical(self, routing, monkeypatch) -> None:
        from repro.fleet.orchestrator import (
            FleetOrchestrator,
            fleet_config_for_trace,
        )
        from repro.traces import TraceGenConfig, generate_trace

        trace = generate_trace(
            TraceGenConfig(seed=13, duration_s=120.0, rate_qps=8.0)
        )
        config = fleet_config_for_trace(trace, nodes=3, routing=routing)
        summaries = {}
        for knob in ("1", "0"):
            monkeypatch.setenv(INDEX_ENV, knob)
            orch = FleetOrchestrator(config, trace=trace)
            result = orch.run()
            expected = knob == "1"
            assert (orch._routing_index is not None) is expected
            summaries[knob] = result.summary()
        assert summaries["1"] == summaries["0"]
