"""Replay hot-path regression pins: lazy views and deferred accounting.

A plain fleet replay — no hooks, empty incident surface — must not pay
for observability it was never asked for: no per-tick telemetry dict
rows, no fleet-view snapshots, no per-arrival accounting in trace mode.
These tests pin the fast path so a future refactor cannot quietly
reintroduce the per-tick costs this PR removed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet.member import NodeSignals
from repro.fleet.orchestrator import (
    FleetOrchestrator,
    fleet_config_for_trace,
)
from repro.traces import TraceGenConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        TraceGenConfig(seed=21, duration_s=90.0, rate_qps=6.0)
    )


class _CountingList(list):
    """A list that counts appends (per-tick allocation witness)."""

    appends = 0

    def append(self, item) -> None:  # noqa: A003 - list API
        type(self).appends += 1
        super().append(item)


class TestLazyTelemetry:
    def test_telemetry_off_means_zero_per_tick_appends(self, trace) -> None:
        config = fleet_config_for_trace(trace, nodes=2)
        orch = FleetOrchestrator(config, collect_telemetry=False, trace=trace)
        _CountingList.appends = 0
        orch._telemetry_signals = _CountingList()
        result = orch.run()
        assert _CountingList.appends == 0
        assert result.telemetry == ()
        assert result.controller == ()
        assert result.actuation == ()

    def test_per_tick_storage_holds_signals_not_dicts(self, trace) -> None:
        """The lazy-view contract: ticks store the frozen NodeSignals the
        members produced anyway; JSON rows exist only after finalize."""
        config = fleet_config_for_trace(trace, nodes=2)
        orch = FleetOrchestrator(config, trace=trace)
        result = orch.run()
        assert orch._telemetry_signals
        assert all(
            isinstance(s, NodeSignals) for s in orch._telemetry_signals
        )
        # The finalize rows are exactly the signals, field for field, in
        # tick order — same shape the inline dicts used to have.
        assert len(result.telemetry) == len(orch._telemetry_signals)
        first_row = result.telemetry[0]
        first_signals = orch._telemetry_signals[0]
        assert list(first_row) == [
            "time", "node", "socket_bw_gbps", "latency_factor",
            "saturation", "hipri_bw_gbps", "inflight", "queued",
            "batch_jobs", "saturated", "hot",
        ]
        assert first_row["time"] == first_signals.time
        assert first_row["node"] == first_signals.node_index
        assert first_row["saturation"] == first_signals.saturation

    def test_no_hooks_builds_no_fleet_views(self, trace, monkeypatch) -> None:
        """A hook-free replay never touches the incident view machinery."""
        from repro.incidents import detect

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("FleetView built on the no-hook path")

        monkeypatch.setattr(detect.FleetView, "__init__", boom)
        config = fleet_config_for_trace(trace, nodes=2)
        result = FleetOrchestrator(
            config, collect_telemetry=False, trace=trace
        ).run()
        assert result.completed_total > 0


class TestDeferredTraceAccounting:
    def test_trace_offered_precompute_matches_live_counters(
        self, trace
    ) -> None:
        """The precomputed offered chain equals what live accounting saw.

        The non-trace (live) accounting path still runs for open-loop
        fleets; here the same orchestrator is run in trace mode and its
        deferred offered totals must equal replaying the admission rule
        over the actual arrival event times.
        """
        config = fleet_config_for_trace(trace, nodes=2)
        orch = FleetOrchestrator(config, trace=trace)
        result = orch.run()
        assert orch._counted_arrivals is not None
        # Every counted arrival fires inside [warmup, duration].
        assert (orch._counted_arrivals >= config.warmup).all()
        assert (orch._counted_arrivals <= config.duration).all()
        offered_total = int(np.sum(orch._offered_by_tenant))
        assert result.offered_total == offered_total
        # Per-window offered sums to the same total (a counted arrival
        # lands in exactly one window).
        assert sum(orch._offered_by_window.values()) == offered_total
        # Windows were materialized at finalize, offered side included.
        assert result.windows
        assert (
            sum(row["offered"] for row in result.windows) == offered_total
        )

    def test_live_counters_monotonic_during_replay(self, trace) -> None:
        """counters() mid-run reflects arrivals fired so far, not totals."""
        from repro.fleet.orchestrator import FleetHooks

        seen: list[tuple[float, int]] = []

        class Probe(FleetHooks):
            def on_tick(self, orchestrator, now):
                offered, completed, good, _ = orchestrator.counters()
                seen.append((now, offered))
                assert completed <= offered
                assert good <= completed

        config = fleet_config_for_trace(trace, nodes=2)
        orch = FleetOrchestrator(
            config, collect_telemetry=False, trace=trace, hooks=Probe()
        )
        result = orch.run()
        assert seen
        offered_values = [offered for _, offered in seen]
        assert offered_values == sorted(offered_values)
        assert 0 < offered_values[-1] <= result.offered_total

    def test_phase_walls_recorded(self, trace) -> None:
        config = fleet_config_for_trace(trace, nodes=2)
        orch = FleetOrchestrator(config, collect_telemetry=False, trace=trace)
        orch.run()
        assert set(orch.phase_walls) == {"replay_s", "accounting_s"}
        assert orch.phase_walls["replay_s"] > 0.0
        assert orch.phase_walls["accounting_s"] > 0.0
