"""BatchQueue: bin-packing, watermark eviction, backfill (stub members)."""

from __future__ import annotations

import pytest

from repro.fleet.batch import BatchQueue, PENDING, RUNNING
from repro.fleet.config import BatchJobSpec, uniform_batch_jobs
from repro.fleet.member import NodeSignals


def _signals(
    index: int, saturation: float = 0.0, hot: bool = False
) -> NodeSignals:
    return NodeSignals(
        node_index=index,
        time=1.0,
        socket_bw_gbps=0.0,
        latency_factor=1.0,
        saturation=saturation,
        hipri_bw_gbps=0.0,
        inflight=0,
        queued=0,
        batch_jobs=0,
        saturated=False,
        hot=hot,
    )


class StubMember:
    """The member surface the queue drives: slots plus telemetry."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.hot_streak = 0
        self.last_signals: NodeSignals | None = None
        self.placed: list[str] = []
        self.removed: list[str] = []

    @property
    def job_count(self) -> int:
        return len(self.placed)

    def place_job(self, job_id: str, profile, warmup: float) -> None:
        self.placed.append(job_id)

    def remove_job(self, job_id: str) -> None:
        self.placed.remove(job_id)
        self.removed.append(job_id)


def _queue(specs, **kwargs) -> BatchQueue:
    defaults = dict(max_jobs_per_node=1, eviction=True, patience=2, warmup=0.0)
    defaults.update(kwargs)
    return BatchQueue(specs, **defaults)


class TestPlacement:
    def test_bin_packs_fewest_jobs_first(self):
        members = [StubMember(0), StubMember(1), StubMember(2)]
        queue = _queue(uniform_batch_jobs(3), max_jobs_per_node=2)
        queue.tick(members)
        assert [m.job_count for m in members] == [1, 1, 1]
        assert queue.running == 3
        assert queue.pending == 0
        assert queue.stats.placements == 3
        assert all(job.state == RUNNING for job in queue.jobs)

    def test_respects_per_node_cap(self):
        members = [StubMember(0)]
        queue = _queue(uniform_batch_jobs(3), max_jobs_per_node=2)
        queue.tick(members)
        assert members[0].job_count == 2
        assert queue.pending == 1
        assert queue.stats.pending_at_end == 1
        pending = [job for job in queue.jobs if job.state == PENDING]
        assert len(pending) == 1

    def test_pressure_breaks_slot_ties(self):
        cool, warm = StubMember(0), StubMember(1)
        cool.last_signals = _signals(0, saturation=0.0)
        warm.last_signals = _signals(1, saturation=0.5)
        queue = _queue([BatchJobSpec()])
        # Put the pressured node first so index order alone would pick it.
        queue.tick([warm, cool])
        assert cool.job_count == 1
        assert warm.job_count == 0


class TestEviction:
    def test_evicts_after_patience_and_requeues(self):
        members = [StubMember(0), StubMember(1)]
        queue = _queue(uniform_batch_jobs(1), patience=2)
        queue.tick(members)
        host = members[0] if members[0].placed else members[1]
        other = members[1] if host is members[0] else members[0]

        host.hot_streak = 1
        host.last_signals = _signals(host.index, hot=True)
        queue.tick(members)
        assert not host.removed  # below patience: nothing happens

        host.hot_streak = 2
        queue.tick(members)
        # Evicted off the hot node and backfilled onto the other in the
        # same interval — batch work is delayed, never lost.
        assert host.removed == ["job0"]
        assert other.placed == ["job0"]
        assert host.hot_streak == 0  # re-measure before shedding again
        assert queue.stats.evictions == 1
        assert queue.stats.placements == 2
        assert queue.jobs[0].evictions == 1
        assert queue.jobs[0].node_index == other.index

    def test_eviction_disabled_pins_jobs(self):
        members = [StubMember(0)]
        queue = _queue(uniform_batch_jobs(1), eviction=False)
        queue.tick(members)
        members[0].hot_streak = 99
        queue.tick(members)
        assert members[0].removed == []
        assert queue.stats.evictions == 0

    def test_hot_node_not_used_for_backfill(self):
        members = [StubMember(0)]
        queue = _queue(uniform_batch_jobs(1), patience=1)
        queue.tick(members)
        members[0].hot_streak = 1
        members[0].last_signals = _signals(0, hot=True)
        queue.tick(members)
        # The only node is hot: the job waits in the queue instead of
        # bouncing straight back onto the node that just shed it.
        assert members[0].job_count == 0
        assert queue.pending == 1
        assert queue.stats.pending_at_end == 1

    def test_one_eviction_per_node_per_interval(self):
        members = [StubMember(0)]
        queue = _queue(uniform_batch_jobs(2), max_jobs_per_node=2, patience=1)
        queue.tick(members)
        assert members[0].job_count == 2
        members[0].hot_streak = 1
        members[0].last_signals = _signals(0, hot=True)
        queue.tick(members)
        assert len(members[0].removed) == 1
        assert members[0].job_count == 1


class TestAccounting:
    def test_nominal_rate_total(self):
        queue = _queue(uniform_batch_jobs(2, intensity=4))
        per_job = queue.jobs[0].nominal_rate()
        assert per_job > 0.0
        assert queue.nominal_rate_total() == pytest.approx(2 * per_job)
