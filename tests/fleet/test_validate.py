"""Tail-amplification cross-check: analytic model vs empirical fleet run.

The fleet run used here is engineered to split the fleet: three of four BL
nodes carry a pinned high-intensity batch job (saturated), one runs clean.
Fitting Section II-D's :class:`TailAmplificationModel` from that run and
Monte-Carlo-ing shard placements over the *measured* per-node latencies
must agree — this is the emergent-behavior validation the fleet subsystem
promises.
"""

from __future__ import annotations

import pytest

from repro.fleet.validate import TailAmplificationModel
from repro.errors import ExperimentError
from repro.fleet.config import FleetConfig, uniform_batch_jobs
from repro.fleet.orchestrator import FleetResult, NodeStats, run_fleet
from repro.fleet.validate import (
    empirical_probability_any_interfered,
    empirical_slowdown,
    interference_profile,
)


@pytest.fixture(scope="module")
def split_fleet() -> FleetResult:
    """4 BL nodes, 3 pinned stream jobs: 3 saturated nodes + 1 clean."""
    return run_fleet(
        FleetConfig(
            nodes=4,
            policy="BL",
            routing="random",
            batch_jobs=uniform_batch_jobs(3, intensity=8),
            batch_eviction=False,
            duration=8.0,
            warmup=2.0,
            seed=1,
        )
    )


def _stats(index, mean_latency_s, saturated_fraction):
    return NodeStats(
        index=index,
        completed=100,
        mean_latency_s=mean_latency_s,
        saturated_fraction=saturated_fraction,
        batch_jobs=0,
    )


def _result(node_stats) -> FleetResult:
    return FleetResult(
        config=FleetConfig(nodes=len(node_stats)),
        tenants=(),
        fraction_saturated=0.0,
        serving_yield=0.0,
        batch_yield=0.0,
        efficiency=0.0,
        offered_total=0,
        completed_total=0,
        good_total=0,
        batch_placements=0,
        batch_evictions=0,
        batch_pending_at_end=0,
        node_stats=tuple(node_stats),
        events_dispatched=0,
    )


class TestProfileFitting:
    def test_classification_and_stretch(self):
        profile = interference_profile(
            _result([_stats(0, 0.010, 0.0), _stats(1, 0.013, 1.0)])
        )
        assert profile.interference_probability == pytest.approx(0.5)
        assert profile.interfered_stretch == pytest.approx(1.3)
        assert profile.clean_nodes == (0,)
        assert profile.interfered_nodes == (1,)
        assert profile.normalized_latencies == pytest.approx((1.0, 1.3))

    def test_no_interference_gives_stretch_one(self):
        profile = interference_profile(
            _result([_stats(0, 0.010, 0.0), _stats(1, 0.010, 0.0)])
        )
        assert profile.interference_probability == 0.0
        assert profile.interfered_stretch == 1.0

    def test_rejects_unserved_fleet(self):
        with pytest.raises(ExperimentError):
            interference_profile(_result([_stats(0, None, 0.0)]))

    def test_rejects_fully_saturated_fleet(self):
        with pytest.raises(ExperimentError):
            interference_profile(
                _result([_stats(0, 0.013, 1.0), _stats(1, 0.014, 1.0)])
            )

    def test_model_construction(self):
        profile = interference_profile(
            _result([_stats(0, 0.010, 0.0), _stats(1, 0.013, 1.0)])
        )
        model = profile.model()
        assert isinstance(model, TailAmplificationModel)
        assert model.interference_probability == pytest.approx(0.5)
        assert model.interfered_stretch == pytest.approx(1.3)


class TestEmergentAgreement:
    """The analytic model reproduces the simulated fleet's tail behavior."""

    def test_fleet_splits_as_engineered(self, split_fleet):
        profile = interference_profile(split_fleet)
        assert profile.interference_probability == pytest.approx(0.75)
        assert profile.interfered_stretch > 1.1
        assert len(profile.interfered_nodes) == 3
        assert len(profile.clean_nodes) == 1

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_expected_slowdown_matches(self, split_fleet, shards):
        profile = interference_profile(split_fleet)
        model = profile.model(latency_cv=0.0)
        analytic = model.expected_slowdown(shards, samples=4000, seed=0)
        empirical = empirical_slowdown(profile, shards, samples=4000, seed=0)
        assert empirical == pytest.approx(analytic, rel=0.10)

    @pytest.mark.parametrize("shards", [1, 2, 4, 8, 16])
    def test_probability_any_interfered_matches(self, split_fleet, shards):
        profile = interference_profile(split_fleet)
        model = profile.model()
        empirical = empirical_probability_any_interfered(
            profile, shards, samples=8000, seed=0
        )
        assert empirical == pytest.approx(
            model.probability_any_interfered(shards), abs=0.02
        )

    def test_amplification_grows_with_fanout(self, split_fleet):
        profile = interference_profile(split_fleet)
        slowdowns = [
            empirical_slowdown(profile, shards, seed=0)
            for shards in (1, 2, 4, 8)
        ]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > slowdowns[0]

    def test_shard_validation(self, split_fleet):
        profile = interference_profile(split_fleet)
        with pytest.raises(ExperimentError):
            empirical_slowdown(profile, 0)
        with pytest.raises(ExperimentError):
            empirical_probability_any_interfered(profile, 0)
