"""Tests for the tail-amplification model."""

from __future__ import annotations

import pytest

from repro.fleet.validate import TailAmplificationModel
from repro.errors import ConfigurationError


class TestTailAmplificationModel:
    def test_single_clean_shard_near_one(self) -> None:
        model = TailAmplificationModel(0.0, 2.0, latency_cv=0.0)
        assert model.expected_slowdown(1) == pytest.approx(1.0)

    def test_always_interfered_hits_full_stretch(self) -> None:
        model = TailAmplificationModel(1.0, 2.0, latency_cv=0.0)
        assert model.expected_slowdown(4) == pytest.approx(2.0)

    def test_slowdown_monotone_in_fanout(self) -> None:
        model = TailAmplificationModel(0.16, 1.8)
        values = [model.expected_slowdown(k) for k in (1, 4, 16, 64)]
        assert values == sorted(values)

    def test_wide_fanout_approaches_stretch(self) -> None:
        model = TailAmplificationModel(0.16, 1.8, latency_cv=0.0)
        assert model.expected_slowdown(64) == pytest.approx(1.8, rel=0.02)

    def test_probability_any_interfered(self) -> None:
        model = TailAmplificationModel(0.16, 1.8)
        assert model.probability_any_interfered(1) == pytest.approx(0.16)
        assert model.probability_any_interfered(64) > 0.99

    def test_deterministic_by_seed(self) -> None:
        model = TailAmplificationModel(0.16, 1.8)
        assert model.expected_slowdown(8, seed=3) == model.expected_slowdown(
            8, seed=3
        )

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            TailAmplificationModel(1.5, 2.0)
        with pytest.raises(ConfigurationError):
            TailAmplificationModel(0.1, 0.9)
        model = TailAmplificationModel(0.1, 1.5)
        with pytest.raises(ConfigurationError):
            model.expected_slowdown(0)
