"""FleetOrchestrator integration: small runs, determinism, accounting."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.fleet.config import FleetConfig, TenantSpec, uniform_batch_jobs
from repro.fleet.orchestrator import FleetOrchestrator, run_fleet


def _config(**kwargs) -> FleetConfig:
    defaults = dict(nodes=2, duration=3.0, warmup=1.0, seed=0)
    defaults.update(kwargs)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def small_run():
    """One shared small KP fleet run (module-scoped: it is the slow part)."""
    return run_fleet(_config())


class TestSmallRun:
    def test_serves_and_accounts(self, small_run):
        result = small_run
        assert result.offered_total > 0
        assert result.completed_total > 0
        assert result.good_total <= result.completed_total
        assert 0.0 <= result.serving_yield <= 1.0
        assert 0.0 <= result.fraction_saturated <= 1.0
        assert result.events_dispatched > 0

    def test_tenant_rows(self, small_run):
        tenants = small_run.tenants
        assert [t.name for t in tenants] == ["search", "assist"]
        for tenant in tenants:
            assert tenant.completed > 0
            assert tenant.p99_s is not None and tenant.p99_s > 0
            assert tenant.p50_s <= tenant.p99_s
            assert 0.0 <= tenant.attainment <= 1.0
            row = tenant.as_dict()
            assert row["tenant"] == tenant.name
            assert row["p99_ms"] == pytest.approx(tenant.p99_s * 1e3, abs=1e-3)

    def test_every_node_served(self, small_run):
        # Both routers' default (interference-aware) spreads a light load.
        assert all(s.completed > 0 for s in small_run.node_stats)
        assert sum(s.completed for s in small_run.node_stats) == (
            small_run.completed_total
        )

    def test_no_batch_tier_reports_zero(self, small_run):
        assert small_run.batch_yield == 0.0
        assert small_run.batch_placements == 0
        # Efficiency collapses to the serving yield without a batch tier.
        assert small_run.efficiency == pytest.approx(small_run.serving_yield)

    def test_telemetry_rows(self, small_run):
        result = small_run
        config = result.config
        intervals = int(config.duration / config.interval)
        assert len(result.telemetry) == pytest.approx(
            intervals * config.nodes, abs=config.nodes
        )
        row = result.telemetry[0]
        assert {"time", "node", "socket_bw_gbps", "saturation"} <= set(row)


class TestDeterminism:
    def test_same_config_same_summary(self):
        config = _config(batch_jobs=uniform_batch_jobs(1, intensity=4))
        assert run_fleet(config).summary() == run_fleet(config).summary()

    def test_seed_changes_outcome(self):
        base = run_fleet(_config()).summary()
        other = run_fleet(_config(seed=1)).summary()
        assert base != other

    def test_deterministic_tenant_offered_count(self):
        """Evenly spaced arrivals make the offered count predictable."""
        tenant = TenantSpec(name="t", load_fraction=0.30, deterministic=True)
        config = _config(nodes=1, tenants=(tenant,))
        result = run_fleet(config)
        # rate = 0.30 * standalone capacity (166.67 qps) * 1 node = 50 qps
        window = config.duration - config.warmup
        assert result.offered_total == pytest.approx(50.0 * window, abs=2)


class TestWarmupAccounting:
    """The admission-epoch fix: attainment can never exceed 1.0."""

    def test_attainment_bounded_by_one(self):
        """Regression: completions whose admission preceded warmup must not
        be recorded — a completed count above offered breaks attainment."""
        # A warmup long enough that many pre-warmup admissions complete
        # after the boundary — the case that used to inflate completions.
        result = run_fleet(_config(nodes=1, duration=4.0, warmup=2.0))
        assert result.completed_total <= result.offered_total
        for tenant in result.tenants:
            assert tenant.completed <= tenant.offered
            assert tenant.attainment <= 1.0

    def test_pre_warmup_admissions_not_counted(self):
        """A run whose horizon barely clears warmup still balances: every
        recorded completion maps to a post-warmup admission."""
        result = run_fleet(_config(nodes=2, duration=2.5, warmup=2.0))
        assert result.completed_total <= result.offered_total
        assert result.good_total <= result.completed_total

    def test_windowed_accounting_rows(self):
        result = run_fleet(_config(window_s=0.5))
        assert result.windows
        assert result.window_fleet
        offered = 0
        for row in result.windows:
            assert 0.0 <= row["attainment"] <= 1.0
            assert row["completed"] <= row["offered"]
            # Windows bucket by admission time, which is post-warmup only.
            assert row["start_s"] + 0.5 > result.config.warmup
            offered += row["offered"]
        assert offered == result.offered_total
        fleet_offered = sum(row["offered"] for row in result.window_fleet)
        assert fleet_offered == result.offered_total
        for row in result.window_fleet:
            assert 0.0 <= row["fraction_saturated"] <= 1.0
        summary = result.summary()
        assert summary["windows"] == list(result.windows)
        assert summary["window_fleet"] == list(result.window_fleet)

    def test_no_window_config_emits_no_rows(self, small_run):
        assert small_run.windows == ()
        assert small_run.window_fleet == ()
        assert "windows" not in small_run.summary()


class TestOptions:
    def test_collect_telemetry_off(self):
        result = FleetOrchestrator(_config(), collect_telemetry=False).run()
        assert result.telemetry == ()
        assert result.completed_total > 0

    def test_rejects_non_inference_workload(self):
        with pytest.raises(WorkloadError):
            FleetOrchestrator(_config(ml="cnn1"))

    def test_batch_jobs_are_conserved(self):
        config = _config(
            nodes=2,
            batch_jobs=uniform_batch_jobs(3, intensity=4),
            max_jobs_per_node=2,
        )
        result = run_fleet(config)
        assert result.batch_placements >= 3
        assert result.batch_yield > 0.0
        resident = sum(s.batch_jobs for s in result.node_stats)
        assert resident + result.batch_pending_at_end == 3

    def test_summary_is_json_clean(self, small_run):
        import json

        text = json.dumps(small_run.summary())
        assert "search" in text
