"""bucket_window_completions vs the sequential per-completion reference."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.slo import WindowAccount, bucket_window_completions

WINDOW_S = 5.0
SLOS = [0.02, 0.1, 1.0]


def _reference(windows, starts, tenants, latencies, window_s, slo_p99_s):
    """The exact loop the live per-completion path used to run."""
    for start, tenant, latency in zip(starts, tenants, latencies):
        account = windows.get((int(start // window_s), tenant))
        if account is not None:
            account.record(latency, slo_p99_s[tenant])


completion = st.tuples(
    # Admission times parked on and around window boundaries too.
    st.one_of(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        st.sampled_from([0.0, WINDOW_S, 2 * WINDOW_S, 3 * WINDOW_S - 1e-12]),
    ),
    st.integers(min_value=0, max_value=len(SLOS) - 1),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)


class TestBucketWindowCompletions:
    @settings(max_examples=100, deadline=None)
    @given(
        completions=st.lists(completion, max_size=60),
        offered_keys=st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=len(SLOS) - 1),
            ),
            max_size=20,
        ),
    )
    def test_bit_identical_to_sequential_reference(
        self, completions, offered_keys
    ) -> None:
        starts = [c[0] for c in completions]
        tenants = [c[1] for c in completions]
        latencies = [c[2] for c in completions]
        # Only offered-side buckets exist; completions for other buckets
        # must be dropped by both paths.
        reference = {key: WindowAccount(offered=1) for key in offered_keys}
        vectorized = {key: WindowAccount(offered=1) for key in offered_keys}
        _reference(reference, starts, tenants, latencies, WINDOW_S, SLOS)
        bucket_window_completions(
            vectorized, starts, tenants, latencies, WINDOW_S, SLOS
        )
        assert set(reference) == set(vectorized)
        for key, expected in reference.items():
            got = vectorized[key]
            assert got.completed == expected.completed
            assert got.good == expected.good
            # Bit-identical, not approximately equal: bincount accumulates
            # weights per bucket in input order, same as sequential +=.
            assert got.latency_sum_s == expected.latency_sum_s

    def test_empty_input_is_a_noop(self) -> None:
        windows = {(0, 0): WindowAccount(offered=3)}
        bucket_window_completions(windows, [], [], [], WINDOW_S, SLOS)
        assert windows[(0, 0)].completed == 0

    def test_slo_boundary_counts_as_good(self) -> None:
        windows = {(0, 1): WindowAccount(offered=1)}
        bucket_window_completions(
            windows, [1.0], [1], [SLOS[1]], WINDOW_S, SLOS
        )
        account = windows[(0, 1)]
        assert account.completed == 1
        assert account.good == 1  # latency == SLO is within SLO
