"""Admission routing strategies (unit level, stub members)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.member import NodeSignals
from repro.fleet.routing import (
    InterferenceAwareRouter,
    LeastLoadedRouter,
    PRESSURE_BUCKET,
    PRESSURE_WEIGHT,
    RandomRouter,
    make_router,
)


def _signals(
    index: int, saturation: float = 0.0, latency_factor: float = 1.0
) -> NodeSignals:
    return NodeSignals(
        node_index=index,
        time=1.0,
        socket_bw_gbps=0.0,
        latency_factor=latency_factor,
        saturation=saturation,
        hipri_bw_gbps=0.0,
        inflight=0,
        queued=0,
        batch_jobs=0,
        saturated=False,
        hot=False,
    )


@dataclass
class StubMember:
    """The slice of FleetMember the routers consume."""

    index: int
    load: int
    last_signals: NodeSignals | None = None


class TestMakeRouter:
    def test_instantiates_by_name(self):
        rng = np.random.default_rng(0)
        assert make_router("random", rng).name == "random"
        assert make_router("least-loaded").name == "least-loaded"
        assert make_router("interference-aware").name == "interference-aware"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_router("round-robin")

    def test_random_requires_rng(self):
        with pytest.raises(ConfigurationError):
            make_router("random")


class TestRandomRouter:
    def test_seeded_stream_is_deterministic(self):
        members = [StubMember(index=i, load=0) for i in range(5)]
        picks_a = [
            RandomRouter(np.random.default_rng(7)).choose(members).index
            for _ in range(1)
        ]
        router_a = RandomRouter(np.random.default_rng(7))
        router_b = RandomRouter(np.random.default_rng(7))
        seq_a = [router_a.choose(members).index for _ in range(20)]
        seq_b = [router_b.choose(members).index for _ in range(20)]
        assert seq_a == seq_b
        assert picks_a[0] == seq_a[0]
        # It actually spreads over the fleet.
        assert len(set(seq_a)) > 1


class TestLeastLoadedRouter:
    def test_picks_shortest_queue(self):
        members = [
            StubMember(index=0, load=3),
            StubMember(index=1, load=1),
            StubMember(index=2, load=2),
        ]
        assert LeastLoadedRouter().choose(members).index == 1

    def test_ties_break_by_index(self):
        members = [
            StubMember(index=1, load=2),
            StubMember(index=0, load=2),
        ]
        assert LeastLoadedRouter().choose(members).index == 0


class TestInterferenceAwareRouter:
    def test_avoids_pressured_node_at_equal_load(self):
        members = [
            StubMember(index=0, load=2, last_signals=_signals(0, saturation=0.4)),
            StubMember(index=1, load=2, last_signals=_signals(1, saturation=0.0)),
        ]
        assert InterferenceAwareRouter().choose(members).index == 1

    def test_no_signals_degrades_to_least_loaded(self):
        members = [
            StubMember(index=0, load=4),
            StubMember(index=1, load=2),
        ]
        assert InterferenceAwareRouter().choose(members).index == 1

    def test_latency_factor_contributes_to_pressure(self):
        hot = _signals(0, latency_factor=1.8)
        assert hot.pressure() == pytest.approx(0.4)
        members = [
            StubMember(index=0, load=1, last_signals=hot),
            StubMember(index=1, load=1, last_signals=_signals(1)),
        ]
        assert InterferenceAwareRouter().choose(members).index == 1

    def test_bias_is_capacity_safe_not_a_blacklist(self):
        """A pressured node still wins once the clean node queues enough.

        The multiplicative handicap means pressure can only inflate a
        node's effective load by a bounded factor — a clean node is never
        asked to absorb the whole fleet (the failure mode of absolute
        avoidance rules).
        """
        pressured = _signals(0, saturation=0.5)
        bucket = int(pressured.pressure() / PRESSURE_BUCKET)
        multiplier = 1.0 + PRESSURE_WEIGHT * bucket
        # Clean node loaded beyond the handicap factor: pressured node wins.
        clean_load = int(multiplier * 3) + 2
        members = [
            StubMember(index=0, load=2, last_signals=pressured),
            StubMember(index=1, load=clean_load, last_signals=_signals(1)),
        ]
        assert InterferenceAwareRouter().choose(members).index == 0

    def test_stale_float_jitter_cannot_reorder(self):
        """Pressures inside one bucket quantum do not override load order."""
        members = [
            StubMember(index=0, load=1, last_signals=_signals(0, saturation=0.04)),
            StubMember(index=1, load=2, last_signals=_signals(1, saturation=0.0)),
        ]
        # 0.04 < PRESSURE_BUCKET: node 0 still reads as clean.
        assert InterferenceAwareRouter().choose(members).index == 0
