"""A member dying mid-run: accounting, batch requeue, routing updates."""

from __future__ import annotations

import pytest

from repro.fleet.config import FleetConfig, uniform_batch_jobs
from repro.fleet.orchestrator import FleetHooks, run_fleet


class _KillAt(FleetHooks):
    """Kill one member through the orchestrator at a fixed control tick."""

    def __init__(self, victim: int, at_tick: int) -> None:
        self.victim = victim
        self.at_tick = at_tick
        self._ticks = 0
        self.killed_at: float | None = None
        self.dropped = 0

    def on_tick(self, orchestrator, now: float) -> None:
        self._ticks += 1
        if self._ticks == self.at_tick and self.killed_at is None:
            self.dropped = orchestrator.kill_member(self.victim)
            self.killed_at = now


def _config(**kwargs) -> FleetConfig:
    defaults = dict(
        nodes=2,
        duration=6.0,
        warmup=1.0,
        seed=0,
        routing="least-loaded",
        batch_jobs=uniform_batch_jobs(4, workload="stream", intensity=4),
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def death_run():
    hooks = _KillAt(victim=0, at_tick=4)
    result = run_fleet(_config(), hooks=hooks)
    return hooks, result


@pytest.fixture(scope="module")
def clean_run():
    return run_fleet(_config())


class TestOrchestratedDeath:
    def test_kill_happened_mid_trace(self, death_run) -> None:
        hooks, result = death_run
        assert hooks.killed_at is not None
        assert 0.0 < hooks.killed_at < result.config.duration

    def test_inflight_counted_requests_become_misses(
        self, death_run, clean_run
    ) -> None:
        hooks, result = death_run
        # Offered accounting is admission-epoch: identical streams.
        assert result.offered_total == clean_run.offered_total
        # The in-flight drops are accounted and each one is an SLO miss.
        assert result.requests_dropped == hooks.dropped > 0
        assert result.good_total < clean_run.good_total
        assert (
            clean_run.good_total - result.good_total
            >= result.requests_dropped
        )
        assert "requests_dropped" in result.summary()

    def test_batch_work_requeued_onto_survivors(self, death_run) -> None:
        _, result = death_run
        assert result.batch_requeues > 0
        # Jobs live on the survivor at the end, none on the corpse.
        assert result.node_stats[0].batch_jobs == 0
        assert result.node_stats[1].batch_jobs > 0

    def test_routing_updated_immediately(self, death_run, clean_run) -> None:
        hooks, result = death_run
        # The victim stops completing after the kill...
        assert (
            result.node_stats[0].completed
            < clean_run.node_stats[0].completed
        )
        # ...and the survivor absorbs the re-routed traffic.
        assert (
            result.node_stats[1].completed
            > clean_run.node_stats[1].completed
        )

    def test_deterministic(self, death_run) -> None:
        _, result = death_run
        again = run_fleet(_config(), hooks=_KillAt(victim=0, at_tick=4))
        assert result.summary() == again.summary()


class TestSilentDeath:
    def test_silent_crash_black_holes_until_noticed(self, clean_run) -> None:
        class _SilentFail(FleetHooks):
            def __init__(self) -> None:
                self._ticks = 0

            def on_tick(self, orchestrator, now: float) -> None:
                self._ticks += 1
                if self._ticks == 4:
                    member = orchestrator.members[0]
                    orchestrator.requests_dropped += member.fail()

        silent = run_fleet(_config(), hooks=_SilentFail())
        # Nothing pulled the node from rotation: the router keeps feeding
        # the corpse, so a silent crash hurts more than a clean kill.
        clean_kill = run_fleet(_config(), hooks=_KillAt(victim=0, at_tick=4))
        assert silent.offered_total == clean_kill.offered_total
        assert silent.good_total < clean_kill.good_total
