PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench report

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) scripts/bench_smoke.py

report:
	$(PYTHON) -m repro report --jobs $(or $(JOBS),4)
