PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench report lint layering check

test:
	$(PYTHON) -m pytest -x -q

# Import-layering rules of the control-plane architecture
# (docs/architecture.md): hw !-> core/control, control !-> experiments/fleet,
# hostif !-> core.
layering:
	$(PYTHON) scripts/check_layering.py

bench:
	$(PYTHON) scripts/bench_smoke.py

report:
	$(PYTHON) -m repro report --jobs $(or $(JOBS),4)

# Lint with ruff when it is installed; skip (with a notice) otherwise so
# `make check` works in minimal environments without extra installs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts; \
	elif $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests scripts; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff to enable)"; \
	fi

check: lint layering test
