PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench report lint check

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) scripts/bench_smoke.py

report:
	$(PYTHON) -m repro report --jobs $(or $(JOBS),4)

# Lint with ruff when it is installed; skip (with a notice) otherwise so
# `make check` works in minimal environments without extra installs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts; \
	elif $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests scripts; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff to enable)"; \
	fi

check: lint test
