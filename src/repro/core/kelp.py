"""Algorithm 1: the Kelp node-level resource-management loop.

Every control interval the runtime samples the four measurements, decides a
THROTTLE/BOOST/NOP action per subdomain by comparing against the loaded QoS
profile, updates the resource plans via the Algorithm 2 procedures, and
enforces them through cpusets (core counts) and MSR writes (prefetchers).

Since the control-plane refactor this module is a thin facade: the decision
kernel lives in :class:`~repro.control.governors.KelpGovernor`, sensing in a
:class:`~repro.control.sensors.SensorSuite`, enforcement in the
:class:`~repro.control.actuators.HostControlPlane`, and the tick skeleton in
:class:`~repro.control.loop.ControlLoop`. :class:`KelpRuntime` wires the
four together with the historical constructor signature and per-tick
behaviour (under perfect sensors and no actuation faults it is bit-identical
to the pre-refactor implementation), and ``KelpTickRecord`` is now an alias
of the unified :class:`~repro.control.records.ControlTickRecord`.
"""

from __future__ import annotations

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig, HostControlPlane
from repro.control.governors import KelpGovernor
from repro.control.loop import ControlLoop
from repro.control.records import ControlTickRecord
from repro.control.sensors import SensorSuite, build_sensor_suite
from repro.core.actions import HiPriorityPlan, LoPriorityPlan
from repro.core.watermarks import QosProfile

#: Backwards-compatible name for the unified control tick record.
KelpTickRecord = ControlTickRecord


class KelpRuntime:
    """The Kelp controller for one node (a facade over the control plane)."""

    def __init__(
        self,
        node: Node,
        profile: QosProfile,
        manage_lo_cores: bool = True,
        manage_backfill: bool = True,
        manage_prefetchers: bool = True,
        sensors: SensorSuite | None = None,
        plane: HostControlPlane | None = None,
        faults: ActuationFaultConfig | None = None,
    ) -> None:
        self.node = node
        self._governor = KelpGovernor(
            node,
            profile,
            manage_lo_cores=manage_lo_cores,
            manage_backfill=manage_backfill,
            manage_prefetchers=manage_prefetchers,
        )
        if sensors is None:
            sensors = build_sensor_suite(node, reader="kelp", config=None)
        if plane is None:
            plane = HostControlPlane(node, faults)
        self.loop = ControlLoop(node, self._governor, sensors, plane)

    # ------------------------------------------------------------ access
    @property
    def profile(self) -> QosProfile:
        """The QoS profile the governor compares against (swappable)."""
        return self._governor.profile

    @profile.setter
    def profile(self, value: QosProfile) -> None:
        self._governor.profile = value

    @property
    def governor(self) -> KelpGovernor:
        """The Algorithm 1/2 decision kernel."""
        return self._governor

    @property
    def plane(self) -> HostControlPlane:
        """The journaled actuator facade all writes go through."""
        return self.loop.plane

    @property
    def history(self) -> list[ControlTickRecord]:
        """One record per tick, in time order (the loop's live history)."""
        return self.loop.history

    @property
    def hi_plan(self) -> HiPriorityPlan:
        """Current backfill resource plan."""
        return self._governor.hi_plan

    @property
    def lo_plan(self) -> LoPriorityPlan:
        """Current low-priority resource plan."""
        return self._governor.lo_plan

    # -------------------------------------------------------------- tick
    def tick(self) -> ControlTickRecord:
        """One pass of Algorithm 1: measure, decide, configure, enforce."""
        record = self.loop.tick()
        assert record is not None  # the Kelp governor is never dormant
        return record
