"""Algorithm 1: the Kelp node-level resource-management loop.

Every control interval the runtime samples the four measurements, decides a
THROTTLE/BOOST/NOP action per subdomain by comparing against the loaded QoS
profile, updates the resource plans via the Algorithm 2 procedures, and
enforces them through cpusets (core counts) and MSR writes (prefetchers).

The runtime is deliberately mechanism-complete but policy-light: which plans
it manages (only prefetchers for KP-SD; prefetchers + low cores + backfill
cores for full Kelp) is chosen by the constructing policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Node
from repro.core.actions import (
    Action,
    HiPriorityPlan,
    LoPriorityPlan,
    config_hi_priority,
    config_lo_priority,
)
from repro.core.measurements import KelpMeasurements, measure_node
from repro.core.watermarks import QosProfile


@dataclass
class KelpTickRecord:
    """What the controller saw and decided on one tick (Figs 11-12 data)."""

    time: float
    measurements: KelpMeasurements
    action_hi: Action
    action_lo: Action
    backfill_cores: int
    lo_cores: int
    lo_prefetchers: int

    def as_dict(self) -> dict[str, float | str]:
        """A flat JSON-clean row (the ``tick`` record of the JSONL export)."""
        m = self.measurements
        return {
            "time": self.time,
            "socket_bw_gbps": m.socket_bw,
            "socket_latency": m.socket_latency,
            "saturation": m.saturation,
            "hipri_bw_gbps": m.hipri_bw,
            "window_s": m.elapsed,
            "action_hi": self.action_hi.value,
            "action_lo": self.action_lo.value,
            "backfill_cores": self.backfill_cores,
            "lo_cores": self.lo_cores,
            "lo_prefetchers": self.lo_prefetchers,
        }


@dataclass
class KelpRuntime:
    """The Kelp controller for one node."""

    node: Node
    profile: QosProfile
    #: Manage the core count of the low-priority subdomain's tasks.
    manage_lo_cores: bool = True
    #: Manage backfilled tasks in the high-priority subdomain.
    manage_backfill: bool = True
    #: Manage low-priority prefetchers (always on in the paper's Kelp).
    manage_prefetchers: bool = True
    history: list[KelpTickRecord] = field(default_factory=list)
    _hi_plan: HiPriorityPlan = field(init=False)
    _lo_plan: LoPriorityPlan = field(init=False)

    def __post_init__(self) -> None:
        lo_cores = len(self.node.lo_subdomain_cores())
        self._hi_plan = HiPriorityPlan(
            core_num=self.profile.max_backfill_cores,
            min_core_num=self.profile.min_backfill_cores,
            max_core_num=self.profile.max_backfill_cores,
        )
        self._lo_plan = LoPriorityPlan(
            core_num=lo_cores,
            prefetcher_num=lo_cores,
            min_core_num=self.profile.min_lo_cores,
            max_core_num=lo_cores,
        )

    # ------------------------------------------------------------ access
    @property
    def hi_plan(self) -> HiPriorityPlan:
        """Current backfill resource plan."""
        return self._hi_plan

    @property
    def lo_plan(self) -> LoPriorityPlan:
        """Current low-priority resource plan."""
        return self._lo_plan

    # -------------------------------------------------------------- tick
    def tick(self) -> KelpTickRecord:
        """One pass of Algorithm 1: measure, decide, configure, enforce."""
        m = measure_node(self.node)
        profile = self.profile

        # Lines 4-9: high-priority-subdomain (backfill) decision.
        if profile.hipri_bw.above(m.hipri_bw) or profile.socket_latency.above(
            m.socket_latency
        ):
            action_hi = Action.THROTTLE
        elif profile.hipri_bw.below(m.hipri_bw) and profile.socket_latency.below(
            m.socket_latency
        ):
            action_hi = Action.BOOST
        else:
            action_hi = Action.NOP

        # Lines 10-15: low-priority-subdomain decision.
        if (
            profile.socket_bw.above(m.socket_bw)
            or profile.socket_latency.above(m.socket_latency)
            or profile.saturation.above(m.saturation)
        ):
            action_lo = Action.THROTTLE
        elif (
            profile.socket_bw.below(m.socket_bw)
            and profile.socket_latency.below(m.socket_latency)
            and profile.saturation.below(m.saturation)
        ):
            action_lo = Action.BOOST
        else:
            action_lo = Action.NOP

        # Lines 16-18: configure and enforce.
        if self.manage_backfill:
            self._hi_plan = config_hi_priority(self._hi_plan, action_hi)
        new_lo = config_lo_priority(self._lo_plan, action_lo)
        if not self.manage_lo_cores and new_lo.core_num != self._lo_plan.core_num:
            new_lo = self._lo_plan  # cores frozen; prefetcher move only
        if not self.manage_prefetchers:
            new_lo = LoPriorityPlan(
                core_num=new_lo.core_num,
                prefetcher_num=self._lo_plan.prefetcher_num,
                min_core_num=new_lo.min_core_num,
                max_core_num=new_lo.max_core_num,
            )
        self._lo_plan = new_lo
        self._enforce()

        record = KelpTickRecord(
            time=self.node.sim.now,
            measurements=m,
            action_hi=action_hi,
            action_lo=action_lo,
            backfill_cores=self._hi_plan.core_num,
            lo_cores=self._lo_plan.core_num,
            lo_prefetchers=self._lo_plan.prefetcher_num,
        )
        self.history.append(record)
        return record

    # ----------------------------------------------------------- enforce
    def _enforce(self) -> None:
        lo_cores = self.node.lo_subdomain_cores()
        mask = frozenset(lo_cores[: self._lo_plan.core_num])
        if self.manage_lo_cores:
            for task in self.node.lo_tasks:
                self.node.cpuset.set_cpus(task, mask)
        if self.manage_prefetchers:
            self.node.set_lo_prefetchers_enabled(self._lo_plan.prefetcher_num)
        if self.manage_backfill and self.node.backfill_tasks:
            spare = list(self.node.hi_subdomain_cores())
            # Backfill occupies the *highest* hi-subdomain core ids so the
            # ML task keeps the lowest ones. The plan invariant already
            # guarantees ``core_num >= min_core_num``; a plan throttled all
            # the way to zero must yield an *empty* cpuset (parked tasks),
            # not a lingering one-core mask stealing hi-subdomain bandwidth.
            count = self._hi_plan.core_num
            backfill_mask = frozenset(spare[-count:]) if count > 0 else frozenset()
            for task in self.node.backfill_tasks:
                self.node.cpuset.set_cpus(task, backfill_mask)
