"""QoS watermark profiles (Section IV-D).

When an application is scheduled onto the server, Kelp loads its profile:
high and low watermarks for each of the four measurements. Comparing a
measurement against its watermark yields the predicates of Algorithm 1
(``HiBW``, ``LoBW``, ``HiLat``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.spec import MachineSpec


@dataclass(frozen=True)
class Watermark:
    """A (low, high) threshold pair for one measurement."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ConfigurationError(f"watermark lo {self.lo} > hi {self.hi}")

    def above(self, value: float) -> bool:
        """The ``Hi*`` predicate: measurement exceeds the high watermark."""
        return value > self.hi

    def below(self, value: float) -> bool:
        """The ``Lo*`` predicate: measurement is under the low watermark."""
        return value < self.lo


@dataclass(frozen=True)
class QosProfile:
    """Per-application watermark set, plus controller core bounds.

    Thresholds are configured conservatively to prioritize the accelerated
    task (Section IV-D).
    """

    #: Socket-level memory bandwidth, GB/s.
    socket_bw: Watermark
    #: Socket-level loaded-latency factor (1.0 = unloaded).
    socket_latency: Watermark
    #: Socket-level memory saturation (FAST_ASSERTED fraction).
    saturation: Watermark
    #: High-priority-subdomain bandwidth, GB/s.
    hipri_bw: Watermark
    #: Bounds on cores granted to backfilled tasks in the hi subdomain.
    min_backfill_cores: int = 0
    max_backfill_cores: int = 4
    #: Bounds on cores granted to low-priority tasks.
    min_lo_cores: int = 1

    def __post_init__(self) -> None:
        if self.min_backfill_cores < 0 or self.min_lo_cores < 1:
            raise ConfigurationError("invalid core bounds")
        if self.max_backfill_cores < self.min_backfill_cores:
            raise ConfigurationError("max_backfill_cores < min_backfill_cores")


def default_profile(spec: MachineSpec, ml_cores: int = 4) -> QosProfile:
    """The conservative default profile used by the evaluation.

    Watermarks are expressed relative to the platform's peak bandwidths so
    the same profile works on all three hosts.
    """
    socket_peak = spec.sockets[0].peak_bw_gbps
    subdomain_peak = spec.sockets[0].memory_controllers[0].peak_bw_gbps
    half_cores = spec.sockets[0].cores // 2
    return QosProfile(
        socket_bw=Watermark(lo=0.55 * socket_peak, hi=0.80 * socket_peak),
        socket_latency=Watermark(lo=1.20, hi=1.60),
        saturation=Watermark(lo=0.03, hi=0.10),
        hipri_bw=Watermark(lo=0.40 * subdomain_peak, hi=0.58 * subdomain_peak),
        min_backfill_cores=1,
        max_backfill_cores=max(1, half_cores - ml_cores),
        min_lo_cores=1,
    )
