"""The four runtime measurements Kelp samples each interval (Section IV-D).

``MeasureSocket`` and ``MeasureHiPriority`` of Algorithm 1 map to one
windowed perf read: socket bandwidth and latency from the IMC counters,
saturation from the ``FAST_ASSERTED`` uncore event, and the high-priority
subdomain's bandwidth from that channel group's CAS counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.node import Node


@dataclass(frozen=True)
class KelpMeasurements:
    """One control-interval sample on the accelerator-local socket."""

    #: ``bw_s``: socket memory bandwidth, GB/s.
    socket_bw: float
    #: ``lat_s``: loaded-latency factor (1.0 = unloaded).
    socket_latency: float
    #: ``sat_s``: fraction of cycles the distress signal was asserted.
    saturation: float
    #: ``bw_h``: high-priority-subdomain bandwidth, GB/s.
    hipri_bw: float
    #: Window length, simulated seconds.
    elapsed: float


def measure_node(node: Node, reader: str = "kelp") -> KelpMeasurements:
    """Sample all four measurements since this reader's previous call."""
    socket_bw, socket_latency, saturation, hipri_bw, elapsed = (
        node.perf.read_kelp(reader, node.accel_socket, node.hi_subdomain)
    )
    return KelpMeasurements(
        socket_bw=socket_bw,
        socket_latency=socket_latency,
        saturation=saturation,
        hipri_bw=hipri_bw,
        elapsed=elapsed,
    )
