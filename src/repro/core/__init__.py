"""Kelp: the paper's runtime (Section IV).

This package is the primary contribution of the reproduction:

* :mod:`repro.core.watermarks` — per-application QoS profiles (high/low
  watermarks for bandwidth, latency and saturation).
* :mod:`repro.core.measurements` — the four runtime measurements Kelp makes
  (socket bandwidth, memory latency, memory saturation, high-priority
  subdomain bandwidth), read through the simulated perf interface.
* :mod:`repro.core.actions` — Algorithm 2: the THROTTLE/BOOST/NOP resource
  configuration procedures for each subdomain.
* :mod:`repro.core.kelp` — Algorithm 1: the node-level resource-management
  loop.
* :mod:`repro.core.policies` — the evaluated configurations: Baseline,
  CoreThrottle, Kelp-Subdomain, full Kelp, and the Section VI-D fine-grained
  hardware-QoS estimate.
"""

from repro.core.actions import Action, HiPriorityPlan, LoPriorityPlan
from repro.core.kelp import KelpRuntime
from repro.core.measurements import KelpMeasurements, measure_node
from repro.core.policies import available_policies, make_policy
from repro.core.watermarks import QosProfile, Watermark, default_profile

__all__ = [
    "Action",
    "HiPriorityPlan",
    "KelpMeasurements",
    "KelpRuntime",
    "LoPriorityPlan",
    "QosProfile",
    "Watermark",
    "available_policies",
    "default_profile",
    "make_policy",
    "measure_node",
]
