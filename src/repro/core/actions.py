"""Algorithm 2: the per-subdomain resource-configuration procedures.

The plans are small pure-state objects so the procedures can be tested in
isolation; enforcement (writing cpusets and MSRs) happens in the runtime.

``ConfigHiPriority`` adjusts the number of cores granted to CPU tasks
*backfilled into the high-priority subdomain*; ``ConfigLoPriority`` first
halves the number of enabled prefetchers (aggressive, to prioritize the ML
task) and only then removes cores, and boosts in the opposite order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


class Action(enum.Enum):
    """The three controller decisions of Algorithm 1."""

    THROTTLE = "throttle"
    BOOST = "boost"
    NOP = "nop"


@dataclass(frozen=True)
class HiPriorityPlan:
    """Resource state for backfilled tasks in the high-priority subdomain."""

    core_num: int
    min_core_num: int
    max_core_num: int

    def __post_init__(self) -> None:
        if not self.min_core_num <= self.core_num <= self.max_core_num:
            raise ConfigurationError(
                f"core_num {self.core_num} outside "
                f"[{self.min_core_num}, {self.max_core_num}]"
            )


@dataclass(frozen=True)
class LoPriorityPlan:
    """Resource state for tasks in the low-priority subdomain."""

    core_num: int
    prefetcher_num: int
    min_core_num: int
    max_core_num: int

    def __post_init__(self) -> None:
        if not self.min_core_num <= self.core_num <= self.max_core_num:
            raise ConfigurationError(
                f"core_num {self.core_num} outside "
                f"[{self.min_core_num}, {self.max_core_num}]"
            )
        if not 0 <= self.prefetcher_num <= self.max_core_num:
            raise ConfigurationError(
                f"prefetcher_num {self.prefetcher_num} outside "
                f"[0, {self.max_core_num}]"
            )


def config_hi_priority(plan: HiPriorityPlan, action: Action) -> HiPriorityPlan:
    """Algorithm 2, lines 1-7: one core at a time, within bounds."""
    if action is Action.THROTTLE and plan.core_num > plan.min_core_num:
        return replace(plan, core_num=plan.core_num - 1)
    if action is Action.BOOST and plan.core_num < plan.max_core_num:
        return replace(plan, core_num=plan.core_num + 1)
    return plan


def config_lo_priority(plan: LoPriorityPlan, action: Action) -> LoPriorityPlan:
    """Algorithm 2, lines 9-19.

    Throttle: halve enabled prefetchers first (``prefetcherNum /= 2``), then
    shrink cores. Boost: re-enable prefetchers one core at a time up to the
    current core count, then grow cores.
    """
    if action is Action.THROTTLE:
        if plan.prefetcher_num > 0:
            return replace(plan, prefetcher_num=plan.prefetcher_num // 2)
        if plan.core_num > plan.min_core_num:
            return replace(plan, core_num=plan.core_num - 1)
        return plan
    if action is Action.BOOST:
        if plan.prefetcher_num < plan.core_num:
            return replace(plan, prefetcher_num=plan.prefetcher_num + 1)
        if plan.core_num < plan.max_core_num:
            return replace(plan, core_num=plan.core_num + 1)
        return plan
    return plan
