"""Kelp (KP): the full runtime of Section IV.

Everything KP-SD does, plus the Section IV-C throughput recovery: CPU-task
threads that do not fit on the low-priority subdomain's cores are *backfilled*
into the high-priority subdomain (with their memory homed there), and the
Algorithm 1/2 loop throttles them by core count whenever the high-priority
subdomain's bandwidth or the socket's latency watermark is breached. The
low-priority subdomain is managed by prefetcher halving first, core removal
second.
"""

from __future__ import annotations

from repro.control.sensors import build_sensor_suite
from repro.core.kelp import KelpRuntime
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_BACKFILL,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class KelpPolicy(IsolationPolicy):
    """Subdomains + backpressure management + backfilling (full Kelp)."""

    name = "KP"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._runtime: KelpRuntime | None = None

    def prepare(self) -> None:
        self.node.machine.set_snc(True)
        self._apply_cat()
        self._runtime = KelpRuntime(
            node=self.node,
            profile=self.profile,
            manage_lo_cores=True,
            manage_backfill=True,
            manage_prefetchers=True,
            sensors=build_sensor_suite(self.node, "kelp", self.sensor_config),
            plane=self.control_plane,
        )
        self._loop = self._runtime.loop

    def ml_placement(self) -> Placement:
        cores = self.node.hi_subdomain_cores()[: self.ml_cores]
        return Placement(
            cores=frozenset(cores),
            mem_weights={self.node.hi_subdomain: 1.0},
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        lo_cores = self.node.lo_subdomain_cores()
        spare_hi = self._spare_hi_cores()
        threads = profile.phase.threads
        plans: list[CpuTaskPlan] = []

        lo_threads = min(threads, len(lo_cores))
        plans.append(
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile.scaled_to_threads(lo_threads),
                placement=Placement(
                    cores=frozenset(lo_cores),
                    mem_weights={self.node.lo_subdomain: 1.0},
                ),
                role=ROLE_LO,
            )
        )

        backfill_threads = threads - lo_threads
        if backfill_threads > 0 and spare_hi:
            backfill_cores = spare_hi[-min(len(spare_hi), backfill_threads):]
            plans.append(
                CpuTaskPlan(
                    task_id=f"{profile.name}-backfill",
                    profile=profile.scaled_to_threads(backfill_threads),
                    placement=Placement(
                        cores=frozenset(backfill_cores),
                        mem_weights={self.node.hi_subdomain: 1.0},
                    ),
                    role=ROLE_BACKFILL,
                )
            )
        return plans

    @property
    def runtime(self) -> KelpRuntime | None:
        """The assembled Algorithm 1 runtime (``None`` before prepare)."""
        return self._runtime
