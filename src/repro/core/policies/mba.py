"""MBA: Memory Bandwidth Allocation throttling (Section VI-D discussion).

Intel's MBA feature rate-controls a class of service's memory requests.
The paper notes its flaw for this use case: the rate controller sits between
the core and the LLC, so "throttling decisions also impact last-level cache
BW in addition to main memory BW" — low-priority tasks pay an extra compute
tax per unit of bandwidth reclaimed. This policy closes the loop on the MB%
knob the way CT closes it on core counts, and exists to quantify that
trade against CT/Kelp (the ``ablation-mba`` experiment).

The feedback kernel is :class:`~repro.control.governors.MbaGovernor`; the
throttle value rides in the tick record's ``lo_prefetchers`` slot (the
historical Fig 11/12 encoding) and as an ``("mb_percent", …)`` extra.
"""

from __future__ import annotations

from repro.control.governors import MbaGovernor
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile

#: resctrl class of service holding the throttled low-priority tasks.
LO_CLOS = 2
#: MBA exposes coarse steps; we use 10 % granularity like real hardware.
MBA_STEP = 10
MBA_MIN = 10
MBA_MAX = 100


class MbaPolicy(IsolationPolicy):
    """Feedback control over the low-priority CLOS's MB% throttle."""

    name = "MBA"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._governor = MbaGovernor(
            self.node,
            self.profile,
            self.ml_cores,
            clos=LO_CLOS,
            step=MBA_STEP,
            floor=MBA_MIN,
            ceiling=MBA_MAX,
        )
        self._make_loop(self._governor, reader="mba")

    @classmethod
    def default_qos_profile(cls, spec, ml_cores: int):
        """MBA runs with CT's throughput-preserving watermarks."""
        from repro.core.policies.core_throttle import CoreThrottlePolicy

        return CoreThrottlePolicy.default_qos_profile(spec, ml_cores)

    def prepare(self) -> None:
        self.node.machine.set_snc(False)
        self._apply_cat()
        self.control_plane.create_clos_group(LO_CLOS)
        self.control_plane.setup_mb_percent(LO_CLOS, MBA_MAX)

    def ml_placement(self) -> Placement:
        topo = self.node.machine.topology
        return Placement(
            cores=frozenset(self.node.accel_socket_cores()[: self.ml_cores]),
            mem_weights=topo.socket_memory_weights(self.node.accel_socket),
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        topo = self.node.machine.topology
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self._spare_socket_cores()),
                    mem_weights=topo.socket_memory_weights(self.node.accel_socket),
                    clos=LO_CLOS,
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def mb_percent(self) -> int:
        """The current MB% throttle applied to the low-priority CLOS."""
        return self._governor.mb_percent

    @property
    def _mb_percent(self) -> int:
        """Backwards-compatible access to the governor's throttle state."""
        return self._governor.mb_percent

    @_mb_percent.setter
    def _mb_percent(self, value: int) -> None:
        self._governor.mb_percent = value
