"""MBA: Memory Bandwidth Allocation throttling (Section VI-D discussion).

Intel's MBA feature rate-controls a class of service's memory requests.
The paper notes its flaw for this use case: the rate controller sits between
the core and the LLC, so "throttling decisions also impact last-level cache
BW in addition to main memory BW" — low-priority tasks pay an extra compute
tax per unit of bandwidth reclaimed. This policy closes the loop on the MB%
knob the way CT closes it on core counts, and exists to quantify that
trade against CT/Kelp (the ``ablation-mba`` experiment).
"""

from __future__ import annotations

from repro.core.measurements import measure_node
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ParameterSample,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile

#: resctrl class of service holding the throttled low-priority tasks.
LO_CLOS = 2
#: MBA exposes coarse steps; we use 10 % granularity like real hardware.
MBA_STEP = 10
MBA_MIN = 10
MBA_MAX = 100


class MbaPolicy(IsolationPolicy):
    """Feedback control over the low-priority CLOS's MB% throttle."""

    name = "MBA"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._history: list[ParameterSample] = []
        self._mb_percent = MBA_MAX

    @classmethod
    def default_qos_profile(cls, spec, ml_cores: int):
        """MBA runs with CT's throughput-preserving watermarks."""
        from repro.core.policies.core_throttle import CoreThrottlePolicy

        return CoreThrottlePolicy.default_qos_profile(spec, ml_cores)

    def prepare(self) -> None:
        self.node.machine.set_snc(False)
        self._apply_cat()
        self.node.resctrl.create_group(LO_CLOS)
        self.node.resctrl.set_mb_percent(LO_CLOS, MBA_MAX)

    def ml_placement(self) -> Placement:
        topo = self.node.machine.topology
        return Placement(
            cores=frozenset(self.node.accel_socket_cores()[: self.ml_cores]),
            mem_weights=topo.socket_memory_weights(self.node.accel_socket),
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        topo = self.node.machine.topology
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self._spare_socket_cores()),
                    mem_weights=topo.socket_memory_weights(self.node.accel_socket),
                    clos=LO_CLOS,
                ),
                role=ROLE_LO,
            )
        ]

    def tick(self) -> None:
        m = measure_node(self.node, reader="mba")
        if self.profile.socket_bw.above(m.socket_bw) or self.profile.socket_latency.above(
            m.socket_latency
        ):
            self._mb_percent = max(MBA_MIN, self._mb_percent - MBA_STEP)
            self.node.resctrl.set_mb_percent(LO_CLOS, self._mb_percent)
        elif self.profile.socket_bw.below(m.socket_bw) and self.profile.socket_latency.below(
            m.socket_latency
        ):
            self._mb_percent = min(MBA_MAX, self._mb_percent + MBA_STEP)
            self.node.resctrl.set_mb_percent(LO_CLOS, self._mb_percent)
        spare = len(self._spare_socket_cores())
        self._history.append(
            ParameterSample(
                time=self.node.sim.now,
                lo_cores=spare,
                # Report the throttle as "effective prefetchers" equivalent:
                # the history consumer only needs the raw knob, stored here
                # as a percentage in the prefetcher slot's units.
                lo_prefetchers=self._mb_percent,
                backfill_cores=0,
            )
        )

    def parameter_history(self) -> list[ParameterSample]:
        return list(self._history)

    @property
    def mb_percent(self) -> int:
        """The current MB% throttle applied to the low-priority CLOS."""
        return self._mb_percent
