"""Policy interface shared by the four evaluated configurations.

A policy decides machine-level preparation (SNC, CAT, priority mode), where
the ML task and the CPU tasks are placed, and what — if anything — its
control loop does every interval. The experiment harness is policy-agnostic:
it asks the policy for placements, builds the tasks, registers them, and
drives ``tick()`` on the policy's interval.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cluster.node import Node
from repro.core.watermarks import QosProfile
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile

#: resctrl class of service dedicated to the accelerated ML task.
ML_CLOS = 1
#: LLC ways dedicated to the ML task's CLOS by managed policies.
ML_DEDICATED_WAYS = 6

#: Roles a CPU task can occupy on the node.
ROLE_LO = "lo"
ROLE_BACKFILL = "backfill"


@dataclass(frozen=True)
class CpuTaskPlan:
    """One CPU task the policy wants created."""

    task_id: str
    profile: BatchProfile
    placement: Placement
    role: str


@dataclass(frozen=True)
class ParameterSample:
    """One control-interval sample of the policy's knobs (Figs 11-12)."""

    time: float
    lo_cores: int
    lo_prefetchers: int
    backfill_cores: int


class IsolationPolicy(abc.ABC):
    """Base class for BL / CT / KP-SD / KP / HW-QoS."""

    #: Registry name, set by subclasses.
    name: str = "abstract"

    def __init__(
        self, node: Node, ml_cores: int, profile: QosProfile, interval: float = 1.0
    ) -> None:
        self.node = node
        self.ml_cores = ml_cores
        self.profile = profile
        self.interval = interval

    @classmethod
    def default_qos_profile(cls, spec, ml_cores: int) -> QosProfile:
        """Watermarks this policy runs with when none are supplied.

        Subclasses override to encode their operating point (CoreThrottle
        must run the shared channels hotter to preserve throughput).
        """
        from repro.core.watermarks import default_profile

        return default_profile(spec, ml_cores=ml_cores)

    # ------------------------------------------------------------ set-up
    @abc.abstractmethod
    def prepare(self) -> None:
        """Apply machine-level configuration (SNC, CAT, priority mode)."""

    @abc.abstractmethod
    def ml_placement(self) -> Placement:
        """Where the high-priority ML task runs."""

    @abc.abstractmethod
    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        """Split/place one CPU workload into concrete tasks."""

    def register(self, tasks_by_role: dict[str, list]) -> None:
        """Record created tasks in the node's role lists."""
        self.node.lo_tasks.extend(tasks_by_role.get(ROLE_LO, []))
        self.node.backfill_tasks.extend(tasks_by_role.get(ROLE_BACKFILL, []))

    # ----------------------------------------------------------- control
    @property
    def has_control_loop(self) -> bool:
        """Whether the harness should schedule periodic ticks."""
        return True

    @abc.abstractmethod
    def tick(self) -> None:
        """One control interval."""

    @abc.abstractmethod
    def parameter_history(self) -> list[ParameterSample]:
        """Knob values over time, for the Fig 11/12 plots."""

    def tick_history(self) -> list:
        """Full controller tick records (measurements + decisions).

        Policies built on :class:`~repro.core.kelp.KelpRuntime` return its
        :class:`~repro.core.kelp.KelpTickRecord` stream; others have no
        Algorithm-1 loop and return an empty list. Consumed by the
        observability layer (:mod:`repro.obs`) for the JSONL tick export.
        """
        return []

    # ------------------------------------------------------------ helpers
    def _spare_socket_cores(self) -> tuple[int, ...]:
        """Socket-0 cores not reserved for the ML task (SNC-off layouts)."""
        return self.node.accel_socket_cores()[self.ml_cores:]

    def _spare_hi_cores(self) -> tuple[int, ...]:
        """Hi-subdomain cores not reserved for the ML task (SNC-on layouts)."""
        return self.node.hi_subdomain_cores()[self.ml_cores:]

    def _apply_cat(self) -> None:
        """Dedicate an LLC partition to the ML task's class of service."""
        self.node.resctrl.create_group(ML_CLOS)
        self.node.resctrl.dedicate_ways(ML_CLOS, ML_DEDICATED_WAYS)
