"""Policy interface shared by the evaluated configurations.

A policy decides machine-level preparation (SNC, CAT, priority mode), where
the ML task and the CPU tasks are placed, and what — if anything — its
control loop does every interval. The experiment harness is policy-agnostic:
it asks the policy for placements, builds the tasks, registers them, and
drives ``tick()`` on the policy's interval.

Since the control-plane refactor every policy owns a
:class:`~repro.control.actuators.HostControlPlane` — the single journaled
facade all its knob writes go through — and managed policies drive a
:class:`~repro.control.loop.ControlLoop` assembled from a sensor suite
(optionally degraded via :class:`~repro.control.sensors.SensorConfig`) and a
policy-specific :class:`~repro.control.governors.Governor`. ``tick``,
``tick_history`` and ``parameter_history`` all default to the loop's
unified :class:`~repro.control.records.ControlTickRecord` stream;
``ParameterSample`` remains as a backwards-compatible alias of that record.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig, HostControlPlane
from repro.control.governors import Governor
from repro.control.loop import ControlLoop
from repro.control.records import ActuationRecord, ControlTickRecord
from repro.control.sensors import SensorConfig, build_sensor_suite
from repro.core.watermarks import QosProfile
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile

#: resctrl class of service dedicated to the accelerated ML task.
ML_CLOS = 1
#: LLC ways dedicated to the ML task's CLOS by managed policies.
ML_DEDICATED_WAYS = 6

#: Roles a CPU task can occupy on the node.
ROLE_LO = "lo"
ROLE_BACKFILL = "backfill"

#: Backwards-compatible name for the unified control tick record
#: (``ParameterSample`` rows are now full tick records; the Fig 11/12
#: consumers only read the ``time``/``lo_cores``/``lo_prefetchers``/
#: ``backfill_cores`` attributes, which are unchanged).
ParameterSample = ControlTickRecord


@dataclass(frozen=True)
class CpuTaskPlan:
    """One CPU task the policy wants created."""

    task_id: str
    profile: BatchProfile
    placement: Placement
    role: str


class IsolationPolicy(abc.ABC):
    """Base class for BL / CT / KP-SD / KP / HW-QoS / MBA / HW-PF."""

    #: Registry name, set by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        node: Node,
        ml_cores: int,
        profile: QosProfile,
        interval: float = 1.0,
        sensors: SensorConfig | None = None,
        faults: ActuationFaultConfig | None = None,
    ) -> None:
        self.node = node
        self.ml_cores = ml_cores
        self.profile = profile
        self.interval = interval
        #: Telemetry-degradation knobs applied to this policy's sensors.
        self.sensor_config = sensors
        #: The journaled actuator facade every knob write goes through.
        self.control_plane = HostControlPlane(node, faults)
        self._loop: ControlLoop | None = None

    @classmethod
    def default_qos_profile(cls, spec, ml_cores: int) -> QosProfile:
        """Watermarks this policy runs with when none are supplied.

        Subclasses override to encode their operating point (CoreThrottle
        must run the shared channels hotter to preserve throughput).
        """
        from repro.core.watermarks import default_profile

        return default_profile(spec, ml_cores=ml_cores)

    # ------------------------------------------------------------ set-up
    @abc.abstractmethod
    def prepare(self) -> None:
        """Apply machine-level configuration (SNC, CAT, priority mode)."""

    @abc.abstractmethod
    def ml_placement(self) -> Placement:
        """Where the high-priority ML task runs."""

    @abc.abstractmethod
    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        """Split/place one CPU workload into concrete tasks."""

    def register(self, tasks_by_role: dict[str, list]) -> None:
        """Record created tasks in the node's role lists."""
        self.node.lo_tasks.extend(tasks_by_role.get(ROLE_LO, []))
        self.node.backfill_tasks.extend(tasks_by_role.get(ROLE_BACKFILL, []))

    # ----------------------------------------------------------- control
    @property
    def has_control_loop(self) -> bool:
        """Whether the harness should schedule periodic ticks."""
        return True

    @property
    def loop(self) -> ControlLoop | None:
        """The policy's control loop (``None`` for unmanaged policies)."""
        return self._loop

    def tick(self) -> None:
        """One control interval: drive the loop, if one was assembled."""
        if self._loop is not None:
            self._loop.tick()

    def tick_history(self) -> list[ControlTickRecord]:
        """Full controller tick records (measurements + decisions).

        The unified stream consumed by the observability layer
        (:mod:`repro.obs`) for the JSONL tick export.
        """
        return list(self._loop.history) if self._loop is not None else []

    def parameter_history(self) -> list[ControlTickRecord]:
        """Knob values over time, for the Fig 11/12 plots.

        Same records as :meth:`tick_history` — the knob fields double as
        the historical ``ParameterSample`` attributes.
        """
        return self.tick_history()

    def actuation_journal(self) -> list[ActuationRecord]:
        """Every physical knob write this policy performed, in order."""
        return list(self.control_plane.journal)

    # ------------------------------------------------------------ helpers
    def _make_loop(self, governor: Governor, reader: str) -> ControlLoop:
        """Assemble this policy's control loop over its plane and sensors."""
        suite = build_sensor_suite(self.node, reader, self.sensor_config)
        self._loop = ControlLoop(self.node, governor, suite, self.control_plane)
        return self._loop

    def _spare_socket_cores(self) -> tuple[int, ...]:
        """Socket-0 cores not reserved for the ML task (SNC-off layouts)."""
        return self.node.accel_socket_cores()[self.ml_cores:]

    def _spare_hi_cores(self) -> tuple[int, ...]:
        """Hi-subdomain cores not reserved for the ML task (SNC-on layouts)."""
        return self.node.hi_subdomain_cores()[self.ml_cores:]

    def _apply_cat(self) -> None:
        """Dedicate an LLC partition to the ML task's class of service."""
        self.control_plane.create_clos_group(ML_CLOS)
        self.control_plane.dedicate_llc_ways(ML_CLOS, ML_DEDICATED_WAYS)
