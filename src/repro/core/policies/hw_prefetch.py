"""HW-PF: QoS-aware hardware prefetching (Section VI-B).

The paper argues prefetcher-pressure management "can be integrated into
hardware", where it "can adapt to fast-changing system behavior with little
performance overhead" and "guide the aggressiveness of prefetchers based on
the immediately-available information of memory resources" (citing
feedback-directed prefetching). This policy is the KP-SD layout with the
software prefetcher loop replaced by the solver's instantaneous
saturation-coupled prefetch throttle — no sampling interval, no MSR writes.

Used by the ``ablation-hwprefetch`` experiment to quantify the reaction-time
advantage over the sampled software loop during load transients.
"""

from __future__ import annotations

from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class HwPrefetchPolicy(IsolationPolicy):
    """Subdomains + hardware-integrated prefetcher QoS."""

    name = "HW-PF"

    def prepare(self) -> None:
        self.node.machine.set_snc(True)
        self._apply_cat()
        self.node.machine.solver.qos_aware_prefetch = True
        self.node.machine.notify_change()

    def ml_placement(self) -> Placement:
        return Placement(
            cores=frozenset(self.node.hi_subdomain_cores()[: self.ml_cores]),
            mem_weights={self.node.hi_subdomain: 1.0},
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self.node.lo_subdomain_cores()),
                    mem_weights={self.node.lo_subdomain: 1.0},
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def has_control_loop(self) -> bool:
        return False
