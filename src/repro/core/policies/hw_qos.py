"""HW-QoS: the Section VI-D fine-grained hardware isolation estimate.

The paper argues a future memory controller with request-level
prioritization could beat both Kelp and Subdomain: the ML task keeps full
channel interleaving (no subdomain fragmentation or latency penalty), its
requests are served ahead of low-priority traffic, and the distress wire is
never tripped because the rate controller throttles offenders at the source.
This policy enables the model's priority mode to approximate that bound: no
core throttling, no prefetcher management, no SNC — CPU tasks run wide open
and simply lose the bandwidth race at the controller.
"""

from __future__ import annotations

from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class HwQosPolicy(IsolationPolicy):
    """Request-level memory prioritization (future-hardware upper bound)."""

    name = "HW-QOS"

    def prepare(self) -> None:
        self.node.machine.set_snc(False)
        self._apply_cat()
        self.node.machine.set_priority_mode(True)

    def ml_placement(self) -> Placement:
        topo = self.node.machine.topology
        cores = self.node.accel_socket_cores()[: self.ml_cores]
        return Placement(
            cores=frozenset(cores),
            mem_weights=topo.socket_memory_weights(self.node.accel_socket),
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        topo = self.node.machine.topology
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self._spare_socket_cores()),
                    mem_weights=topo.socket_memory_weights(self.node.accel_socket),
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def has_control_loop(self) -> bool:
        return False
