"""Baseline (BL): priorities declared, contention unmanaged (Section V-A).

Task priority exists only in the scheduler's metadata — no CAT partition, no
subdomains, no throttling. The ML task and the CPU tasks simply share the
accelerator-local socket.
"""

from __future__ import annotations

from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class BaselinePolicy(IsolationPolicy):
    """Unmanaged colocation."""

    name = "BL"

    def prepare(self) -> None:
        self.node.machine.set_snc(False)

    def ml_placement(self) -> Placement:
        topo = self.node.machine.topology
        cores = self.node.accel_socket_cores()[: self.ml_cores]
        return Placement(
            cores=frozenset(cores),
            mem_weights=topo.socket_memory_weights(self.node.accel_socket),
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        topo = self.node.machine.topology
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self._spare_socket_cores()),
                    mem_weights=topo.socket_memory_weights(self.node.accel_socket),
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def has_control_loop(self) -> bool:
        return False
