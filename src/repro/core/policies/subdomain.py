"""Kelp Subdomain (KP-SD): NUMA subdomains + prefetcher toggling only.

The simplified Kelp of Section V-A: SNC/CoD splits the socket, the ML task
owns the high-priority subdomain, CPU tasks own the low-priority one, and
the only runtime knob is the number of low-priority cores with L2
prefetchers enabled — used to keep memory saturation (and with it the
socket-wide distress throttling) below the watermark. No core throttling,
no backfilling; the hi-subdomain cores beyond the ML task sit idle, which is
exactly the fragmentation cost Fig 13/14 charge this configuration with.
"""

from __future__ import annotations

from repro.control.sensors import build_sensor_suite
from repro.core.kelp import KelpRuntime
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class SubdomainPolicy(IsolationPolicy):
    """SNC isolation with saturation-driven prefetcher management."""

    name = "KP-SD"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._runtime: KelpRuntime | None = None

    def prepare(self) -> None:
        self.node.machine.set_snc(True)
        self._apply_cat()
        self._runtime = KelpRuntime(
            node=self.node,
            profile=self.profile,
            manage_lo_cores=False,
            manage_backfill=False,
            manage_prefetchers=True,
            sensors=build_sensor_suite(self.node, "kelp", self.sensor_config),
            plane=self.control_plane,
        )
        self._loop = self._runtime.loop

    def ml_placement(self) -> Placement:
        cores = self.node.hi_subdomain_cores()[: self.ml_cores]
        return Placement(
            cores=frozenset(cores),
            mem_weights={self.node.hi_subdomain: 1.0},
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(self.node.lo_subdomain_cores()),
                    mem_weights={self.node.lo_subdomain: 1.0},
                ),
                role=ROLE_LO,
            )
        ]

    @property
    def runtime(self) -> KelpRuntime | None:
        """The assembled Algorithm 1 runtime (``None`` before prepare)."""
        return self._runtime
