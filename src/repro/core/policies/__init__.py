"""The evaluated runtime configurations (Section V-A plus Section VI-D)."""

from __future__ import annotations

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ParameterSample,
    ROLE_BACKFILL,
    ROLE_LO,
)
from repro.core.policies.baseline import BaselinePolicy
from repro.core.policies.core_throttle import CoreThrottlePolicy
from repro.core.policies.hw_prefetch import HwPrefetchPolicy
from repro.core.policies.hw_qos import HwQosPolicy
from repro.core.policies.kelp_full import KelpPolicy
from repro.core.policies.mba import MbaPolicy
from repro.core.policies.subdomain import SubdomainPolicy
from repro.core.watermarks import QosProfile, default_profile
from repro.errors import ConfigurationError

_POLICIES: dict[str, type[IsolationPolicy]] = {
    "BL": BaselinePolicy,
    "CT": CoreThrottlePolicy,
    "KP-SD": SubdomainPolicy,
    "KP": KelpPolicy,
    "HW-QOS": HwQosPolicy,
    "MBA": MbaPolicy,
    "HW-PF": HwPrefetchPolicy,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`, in the paper's order."""
    return list(_POLICIES)


def make_policy(
    name: str,
    node: Node,
    ml_cores: int,
    profile: QosProfile | None = None,
    interval: float = 1.0,
    sensors: SensorConfig | None = None,
    faults: ActuationFaultConfig | None = None,
) -> IsolationPolicy:
    """Instantiate a policy by its paper name (BL/CT/KP-SD/KP/HW-QOS).

    ``sensors`` degrades the policy's telemetry path (staleness, noise,
    dropout); ``faults`` injects actuation-write failures. Both default to
    the perfect/lossless historical behaviour.
    """
    try:
        cls = _POLICIES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; expected one of {available_policies()}"
        ) from None
    if profile is None:
        profile = cls.default_qos_profile(node.machine.spec, ml_cores=ml_cores)
    return cls(
        node, ml_cores, profile, interval=interval, sensors=sensors, faults=faults
    )


__all__ = [
    "BaselinePolicy",
    "MbaPolicy",
    "CoreThrottlePolicy",
    "CpuTaskPlan",
    "HwPrefetchPolicy",
    "HwQosPolicy",
    "IsolationPolicy",
    "KelpPolicy",
    "ParameterSample",
    "ROLE_BACKFILL",
    "ROLE_LO",
    "SubdomainPolicy",
    "available_policies",
    "make_policy",
]
