"""CoreThrottle (CT): the prior-work comparison configuration (Section V-A).

CT mimics Heracles/Dirigent/CPI2-style management: the ML task gets a
dedicated LLC partition via CAT, and memory-bandwidth interference is managed
reactively by shrinking or growing the CPU mask of the low-priority tasks —
one core at a time — whenever socket bandwidth or loaded latency crosses the
profile's watermarks. NUMA subdomains stay off; prefetchers stay on.

The feedback kernel lives in
:class:`~repro.control.governors.CoreThrottleGovernor`; this policy assembles
it into a :class:`~repro.control.loop.ControlLoop` over its sensor suite and
journaled actuator plane, and arms it with the initial core grant when the
CPU tasks are planned.
"""

from __future__ import annotations

from repro.control.governors import CoreThrottleGovernor
from repro.core.policies.base import (
    CpuTaskPlan,
    IsolationPolicy,
    ML_CLOS,
    ROLE_LO,
)
from repro.hw.placement import Placement
from repro.workloads.cpu.base import BatchProfile


class CoreThrottlePolicy(IsolationPolicy):
    """Reactive core-count throttling plus CAT."""

    name = "CT"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._governor = CoreThrottleGovernor(
            self.node, self.profile, self.ml_cores
        )
        self._make_loop(self._governor, reader="ct")

    @classmethod
    def default_qos_profile(cls, spec, ml_cores: int):
        """CT's operating point: run the shared channels hot.

        Without subdomains every core of CPU-task throughput costs shared
        bandwidth, so a CT deployment cannot afford Kelp's conservative
        watermarks — it would throttle the batch tier to nothing. These are
        the throughput-preserving thresholds prior-work controllers target;
        the price is that the ML task always sees loaded-latency inflation
        on the channels it shares (Section IV's motivation for subdomains).
        """
        from dataclasses import replace

        from repro.core.watermarks import Watermark, default_profile

        base = default_profile(spec, ml_cores=ml_cores)
        socket_peak = spec.sockets[0].peak_bw_gbps
        return replace(
            base,
            socket_bw=Watermark(lo=0.72 * socket_peak, hi=0.88 * socket_peak),
            socket_latency=Watermark(lo=1.5, hi=1.9),
        )

    def prepare(self) -> None:
        self.node.machine.set_snc(False)
        self._apply_cat()

    def ml_placement(self) -> Placement:
        topo = self.node.machine.topology
        cores = self.node.accel_socket_cores()[: self.ml_cores]
        return Placement(
            cores=frozenset(cores),
            mem_weights=topo.socket_memory_weights(self.node.accel_socket),
            clos=ML_CLOS,
        )

    def plan_cpu(self, profile: BatchProfile) -> list[CpuTaskPlan]:
        topo = self.node.machine.topology
        spare = self._spare_socket_cores()
        self._governor.engage(len(spare))
        return [
            CpuTaskPlan(
                task_id=profile.name,
                profile=profile,
                placement=Placement(
                    cores=frozenset(spare),
                    mem_weights=topo.socket_memory_weights(self.node.accel_socket),
                ),
                role=ROLE_LO,
            )
        ]
