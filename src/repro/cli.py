"""Command-line entry point: run experiments and colocation mixes.

Usage::

    python -m repro list
    python -m repro run fig05
    python -m repro run fig13 --trace-out out/ --metrics-out out/m.jsonl
    python -m repro run fig07 --ml cnn1
    python -m repro mix --ml cnn1 --policy KP --cpu stitch --intensity 4

Observability: ``--trace-out DIR`` writes a Perfetto-loadable
``trace.json`` plus a run manifest into ``DIR``; ``--metrics-out FILE``
writes the JSONL metric/record stream. The ``REPRO_TRACE`` environment
variable provides a default trace directory when the flag is absent. See
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import MixConfig, run_colocation
from repro.experiments.registry import experiment_ids, run_experiment
from repro.parallel import maybe_profiled


def _add_control_plane_arguments(parser: argparse.ArgumentParser) -> None:
    """Degraded-telemetry and actuation-fault knobs (see docs/architecture.md)."""
    parser.add_argument(
        "--sensor-staleness", type=float, default=0.0, metavar="SECONDS",
        help="sample-and-hold period for controller telemetry (0 = fresh)",
    )
    parser.add_argument(
        "--sensor-noise", type=float, default=0.0, metavar="SIGMA",
        help="multiplicative Gaussian noise sigma on each counter",
    )
    parser.add_argument(
        "--sensor-dropout", type=float, default=0.0, metavar="PROB",
        help="probability each fresh telemetry sample is lost",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="PROB",
        help="probability each knob write attempt fails (bounded retry)",
    )
    parser.add_argument(
        "--fault-defer", type=float, default=0.0, metavar="PROB",
        help="probability a knob write is delayed to the next tick",
    )


def _control_plane_configs(args: argparse.Namespace, seed: int):
    """Materialize (SensorConfig | None, ActuationFaultConfig | None)."""
    from repro.control import ActuationFaultConfig, SensorConfig

    sensors = None
    if args.sensor_staleness or args.sensor_noise or args.sensor_dropout:
        sensors = SensorConfig(
            staleness_period=args.sensor_staleness,
            noise_sigma=args.sensor_noise,
            dropout_prob=args.sensor_dropout,
            seed=seed,
        )
    faults = None
    if args.fault_rate or args.fault_defer:
        faults = ActuationFaultConfig(
            fail_prob=args.fault_rate, defer_prob=args.fault_defer, seed=seed
        )
    return sensors, faults


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="write trace.json + manifest into DIR (default: $REPRO_TRACE)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the JSONL metrics/records stream to FILE",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Kelp: QoS for Accelerated Machine Learning "
            "Systems' (HPCA 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--ml", help="workload for per-workload experiments")
    run.add_argument(
        "--duration", type=float, default=None,
        help="simulated measurement horizon, seconds",
    )
    run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for experiments with internal sweeps "
             "(fig02/fig05/fig16); default REPRO_JOBS or 1",
    )
    _add_obs_arguments(run)

    report = sub.add_parser(
        "report", help="run every experiment and write one report"
    )
    report.add_argument(
        "--out", default="report.md", help="output path (markdown)"
    )
    report.add_argument("--duration", type=float, default=30.0)
    report.add_argument(
        "--only", nargs="*", default=None,
        help="subset of experiment ids (default: all)",
    )
    report.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the experiment sweep; results are "
             "identical to a serial run (default REPRO_JOBS or 1)",
    )
    _add_obs_arguments(report)

    fleet = sub.add_parser(
        "fleet-sim",
        help="run the fleet orchestrator (nodes x policy x routing)",
    )
    fleet.add_argument("--nodes", type=int, default=8, help="fleet size")
    fleet.add_argument(
        "--policy", default="KP", help="per-node policy: BL | CT | KP-SD | KP"
    )
    fleet.add_argument(
        "--routing", default="interference-aware",
        help="random | least-loaded | interference-aware",
    )
    fleet.add_argument("--ml", default="rnn1", help="served inference workload")
    fleet.add_argument(
        "--load", type=float, default=None,
        help="aggregate per-node offered load fraction (default 0.50)",
    )
    fleet.add_argument("--duration", type=float, default=8.0)
    fleet.add_argument("--warmup", type=float, default=2.0)
    fleet.add_argument(
        "--trials", type=int, default=1,
        help="independent fleet replications (aggregated)",
    )
    fleet.add_argument(
        "--batch-jobs", type=int, default=0,
        help="best-effort batch jobs submitted to the cluster queue",
    )
    fleet.add_argument("--batch-workload", default="stream")
    fleet.add_argument("--batch-intensity", default="8")
    fleet.add_argument(
        "--no-eviction", action="store_true",
        help="pin batch jobs where first placed (no watermark eviction)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the trial sweep; results are identical "
             "to a serial run (default REPRO_JOBS or 1)",
    )
    _add_control_plane_arguments(fleet)
    _add_obs_arguments(fleet)

    trace = sub.add_parser(
        "fleet-trace",
        help="replay a workload trace over the fleet (time-of-day curves)",
    )
    trace.add_argument(
        "--trace", default=None, metavar="PATH",
        help="trace file to replay (.jsonl or .jsonl.gz; see docs/traces.md)",
    )
    trace.add_argument(
        "--trace-gen", action="store_true",
        help="synthesize the trace instead (the default when --trace is "
             "absent; this flag exists to make that choice explicit)",
    )
    trace.add_argument(
        "--save-trace", default=None, metavar="PATH",
        help="write the replayed trace to PATH (.gz suffix gzips)",
    )
    trace.add_argument(
        "--trace-duration", type=float, default=86400.0, metavar="SECONDS",
        help="generated trace horizon (default: one day)",
    )
    trace.add_argument(
        "--trace-rate", type=float, default=40.0, metavar="QPS",
        help="generated long-run mean arrival rate across tenants",
    )
    trace.add_argument(
        "--trace-seed", type=int, default=None,
        help="generator seed (default: --seed)",
    )
    trace.add_argument(
        "--diurnal-amplitude", type=float, default=0.4,
        help="peak-to-mean diurnal swing in [0, 1); 0 disables",
    )
    trace.add_argument(
        "--diurnal-peak-hour", type=float, default=14.0,
        help="hour of day (0-24) at which load peaks",
    )
    trace.add_argument(
        "--burst-multiplier", type=float, default=4.0,
        help="rate multiplier while a tenant bursts; 1 disables",
    )
    trace.add_argument("--burst-on", type=float, default=30.0, metavar="SECONDS")
    trace.add_argument("--burst-off", type=float, default=570.0, metavar="SECONDS")
    trace.add_argument(
        "--churn-active", type=float, default=4 * 3600.0, metavar="SECONDS",
        help="mean active period before a tenant departs",
    )
    trace.add_argument(
        "--churn-idle", type=float, default=0.0, metavar="SECONDS",
        help="mean idle period before a departed tenant returns; 0 disables",
    )
    trace.add_argument("--nodes", type=int, default=4, help="fleet size")
    trace.add_argument(
        "--policy", default="KP", help="per-node policy: BL | CT | KP-SD | KP"
    )
    trace.add_argument(
        "--routing", default="least-loaded",
        help="random | least-loaded | interference-aware",
    )
    trace.add_argument("--ml", default="rnn1", help="served inference workload")
    trace.add_argument(
        "--duration", type=float, default=None,
        help="replay horizon, seconds (default: the trace duration)",
    )
    trace.add_argument("--warmup", type=float, default=None)
    trace.add_argument(
        "--interval", type=float, default=None,
        help="fleet control interval (default scales with the horizon)",
    )
    trace.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="accounting window for the time-of-day curves "
             "(default: horizon / 24)",
    )
    trace.add_argument(
        "--trials", type=int, default=1,
        help="independent replays under different orchestrator seeds",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the trial sweep; results are identical "
             "to a serial run (default REPRO_JOBS or 1)",
    )
    trace.add_argument(
        "--no-telemetry", action="store_true",
        help="skip per-interval telemetry collection (large replays)",
    )
    _add_control_plane_arguments(trace)
    _add_obs_arguments(trace)

    serve = sub.add_parser(
        "fleet-serve",
        help="drive a trace through the epoch-stepped serving control "
             "plane (live commands, autoscaling, checkpoint/restore)",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="trace file to serve (.jsonl or .jsonl.gz; default: generated)",
    )
    serve.add_argument(
        "--trace-duration", type=float, default=120.0, metavar="SECONDS",
        help="generated trace horizon (default: two minutes)",
    )
    serve.add_argument(
        "--trace-rate", type=float, default=40.0, metavar="QPS",
        help="generated long-run mean arrival rate across tenants",
    )
    serve.add_argument(
        "--trace-seed", type=int, default=None,
        help="generator seed (default: --seed)",
    )
    serve.add_argument("--nodes", type=int, default=4, help="fleet size")
    serve.add_argument(
        "--policy", default="KP", help="per-node policy: BL | CT | KP-SD | KP"
    )
    serve.add_argument(
        "--routing", default="least-loaded",
        help="random | least-loaded | interference-aware",
    )
    serve.add_argument("--ml", default="rnn1", help="served inference workload")
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serving horizon, seconds (default: the trace duration)",
    )
    serve.add_argument("--warmup", type=float, default=None)
    serve.add_argument(
        "--interval", type=float, default=None,
        help="fleet control interval (default scales with the horizon)",
    )
    serve.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="accounting window (default: horizon / 24)",
    )
    serve.add_argument(
        "--epoch", type=float, default=None, metavar="SECONDS",
        help="service epoch length (default: the control interval)",
    )
    serve.add_argument(
        "--command", dest="serve_commands", action="append", default=[],
        metavar="EPOCH:VERB[:ARG]",
        help="control command to apply at an epoch boundary; verbs: "
             "evict:TENANT admit:TENANT routing:NAME grow shrink "
             "(repeatable)",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="enable the demand-driven autoscaler",
    )
    serve.add_argument(
        "--min-nodes", type=int, default=1,
        help="autoscaler floor (with --autoscale)",
    )
    serve.add_argument(
        "--max-nodes", type=int, default=16,
        help="autoscaler ceiling (with --autoscale)",
    )
    serve.add_argument(
        "--save", default=None, metavar="PATH",
        help="checkpoint the live service to PATH at --save-at, then "
             "continue to the horizon",
    )
    serve.add_argument(
        "--save-at", type=int, default=None, metavar="EPOCH",
        help="epoch boundary at which to write --save",
    )
    serve.add_argument(
        "--restore", default=None, metavar="PATH",
        help="resume a checkpoint against the same trace instead of "
             "starting fresh",
    )
    serve.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="write the per-trial summaries and epoch snapshots as JSON",
    )
    serve.add_argument(
        "--trials", type=int, default=1,
        help="independent serves under different orchestrator seeds",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the trial sweep; results are identical "
             "to a serial run (default REPRO_JOBS or 1)",
    )
    serve.add_argument(
        "--no-telemetry", action="store_true",
        help="skip per-interval telemetry collection (large serves)",
    )
    _add_obs_arguments(serve)

    incidents = sub.add_parser(
        "fleet-incidents",
        help="inject a fault scenario into a trace replay, detect, "
             "localize, remediate, and score the SLO damage avoided",
    )
    incidents.add_argument(
        "--scenario", default=None, metavar="PATH",
        help="incident scenario file (JSON; see docs/incidents.md); "
             "default: a generated schedule over --classes",
    )
    incidents.add_argument(
        "--save-scenario", default=None, metavar="PATH",
        help="write the (possibly generated) scenario to PATH",
    )
    incidents.add_argument(
        "--classes", default=None, metavar="KIND[,KIND...]",
        help="incident classes for the generated schedule (default: all "
             "five; conflicts with --scenario)",
    )
    incidents.add_argument(
        "--incident-seed", type=int, default=None,
        help="schedule jitter / intruder-stream seed (default: --seed)",
    )
    incidents.add_argument(
        "--intruder-rate", type=float, default=None, metavar="QPS",
        help="noisy-neighbor arrival rate (default scales with fleet size)",
    )
    incidents.add_argument(
        "--intruder-demand", type=float, default=300.0,
        help="noisy-neighbor per-request demand multiplier",
    )
    incidents.add_argument(
        "--drop-fraction", type=float, default=0.5,
        help="fraction of arrivals null-routed during routing-misconfig",
    )
    incidents.add_argument(
        "--trace", default=None, metavar="PATH",
        help="trace file to replay (.jsonl or .jsonl.gz)",
    )
    incidents.add_argument(
        "--trace-duration", type=float, default=86400.0, metavar="SECONDS",
        help="generated trace horizon (default: one day)",
    )
    incidents.add_argument(
        "--trace-rate", type=float, default=40.0, metavar="QPS",
        help="generated long-run mean arrival rate across tenants",
    )
    incidents.add_argument(
        "--trace-seed", type=int, default=None,
        help="generator seed (default: --seed)",
    )
    incidents.add_argument("--nodes", type=int, default=4, help="fleet size")
    incidents.add_argument(
        "--policy", default="KP", help="per-node policy: BL | CT | KP-SD | KP"
    )
    incidents.add_argument(
        "--routing", default="least-loaded",
        help="random | least-loaded | interference-aware",
    )
    incidents.add_argument(
        "--ml", default="rnn1", help="served inference workload"
    )
    incidents.add_argument(
        "--duration", type=float, default=None,
        help="replay horizon, seconds (default: the trace duration)",
    )
    incidents.add_argument("--warmup", type=float, default=None)
    incidents.add_argument(
        "--interval", type=float, default=None,
        help="fleet control interval (default scales with the horizon)",
    )
    incidents.add_argument(
        "--trials", type=int, default=1,
        help="independent scenario replays (three fleet runs each)",
    )
    incidents.add_argument("--seed", type=int, default=0)
    incidents.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the run sweep; results are identical "
             "to a serial run (default REPRO_JOBS or 1)",
    )
    incidents.add_argument(
        "--telemetry", action="store_true",
        help="also collect per-interval fleet telemetry rows",
    )
    _add_obs_arguments(incidents)

    mix = sub.add_parser("mix", help="run a single colocation mix")
    mix.add_argument("--ml", required=True, help="rnn1 | cnn1 | cnn2 | cnn3")
    mix.add_argument("--policy", default="BL", help="BL | CT | KP-SD | KP | HW-QOS")
    mix.add_argument("--cpu", default=None, help="stream | stitch | cpuml | ...")
    mix.add_argument("--intensity", default="1", help="instances/threads/level")
    mix.add_argument("--duration", type=float, default=40.0)
    mix.add_argument("--seed", type=int, default=0)
    _add_control_plane_arguments(mix)
    _add_obs_arguments(mix)
    return parser


#: JSONL rows buffered per incremental flush for streaming commands.
_METRICS_FLUSH_ROWS = 8192

#: Commands whose record volume scales with the trace horizon: stream
#: their JSONL rows to disk incrementally instead of holding them all.
_STREAMING_COMMANDS = frozenset(
    {"fleet-trace", "fleet-serve", "fleet-incidents"}
)


def _make_observer(args: argparse.Namespace, name: str):
    """Build a RunObserver from the CLI flags (and ``REPRO_TRACE``)."""
    from repro.obs import ObsConfig, RunObserver

    config = ObsConfig.from_env(
        trace_out=getattr(args, "trace_out", None),
        metrics_out=getattr(args, "metrics_out", None),
    )
    flush_every = _METRICS_FLUSH_ROWS if name in _STREAMING_COMMANDS else None
    return RunObserver(config, name=name, flush_every=flush_every)


def _finalize_observer(observer, command: str) -> None:
    """Write any configured outputs and echo their paths."""
    for path in observer.finalize(command=command):
        print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    if args.command == "run":
        from repro.experiments.registry import JOBS_AWARE, OBS_AWARE

        observer = _make_observer(args, args.experiment)
        kwargs = {}
        if args.ml:
            kwargs["ml"] = args.ml
        if args.duration is not None:
            kwargs["duration"] = args.duration
        if args.jobs is not None and args.experiment in JOBS_AWARE:
            kwargs["jobs"] = args.jobs
        if observer.enabled and args.experiment in OBS_AWARE:
            kwargs["observer"] = observer
        started = time.perf_counter()
        # REPRO_PROFILE=1 dumps <experiment>.prof (and run_points forces
        # itself serial so the profile sees the work in-process).
        with maybe_profiled(args.experiment):
            _, text = run_experiment(args.experiment, **kwargs)
        print(text)
        if observer.enabled:
            wall = time.perf_counter() - started
            observer.add_span(
                "cli", "experiments", args.experiment, 0.0, wall,
            )
            observer.note_config(
                experiment=args.experiment, ml=args.ml, duration=args.duration,
            )
            _finalize_observer(observer, f"repro run {args.experiment}")
        return 0

    if args.command == "report":
        from repro.experiments.suite import format_suite, run_suite

        observer = _make_observer(args, "report")
        entries = run_suite(
            experiments=args.only, duration=args.duration, jobs=args.jobs,
            observer=observer if observer.enabled else None,
        )
        text = format_suite(entries)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({len(entries)} experiments)")
        if observer.enabled:
            _finalize_observer(observer, "repro report")
        return 0

    if args.command == "fleet-sim":
        from repro.experiments.fleet_sim import format_fleet_sim, run_fleet_sim

        observer = _make_observer(args, "fleet-sim")
        intensity: int | str = args.batch_intensity
        if isinstance(intensity, str) and intensity.isdigit():
            intensity = int(intensity)
        sensors, faults = _control_plane_configs(args, args.seed)
        started = time.perf_counter()
        result = run_fleet_sim(
            nodes=args.nodes,
            policy=args.policy,
            routing=args.routing,
            ml=args.ml,
            load=args.load,
            duration=args.duration,
            warmup=args.warmup,
            batch_jobs=args.batch_jobs,
            batch_workload=args.batch_workload,
            batch_intensity=intensity,
            batch_eviction=not args.no_eviction,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            observer=observer if observer.enabled else None,
            sensors=sensors,
            faults=faults,
        )
        print(format_fleet_sim(result))
        if observer.enabled:
            wall = time.perf_counter() - started
            observer.add_span("cli", "experiments", "fleet-sim", 0.0, wall)
            observer.note_seed("fleet.seed", args.seed)
            _finalize_observer(observer, "repro fleet-sim")
        return 0

    if args.command == "fleet-trace":
        from repro.errors import ReproError
        from repro.experiments.fleet_trace import (
            format_fleet_trace,
            run_fleet_trace,
        )
        from repro.traces import TraceGenConfig, save_trace

        observer = _make_observer(args, "fleet-trace")
        if args.trace is not None and args.trace_gen:
            print("pass either --trace or --trace-gen, not both", file=sys.stderr)
            return 2
        gen = None
        if args.trace is None:
            gen = TraceGenConfig(
                seed=args.trace_seed if args.trace_seed is not None else args.seed,
                duration_s=args.trace_duration,
                rate_qps=args.trace_rate,
                diurnal_amplitude=args.diurnal_amplitude,
                diurnal_peak_hour=args.diurnal_peak_hour,
                burst_multiplier=args.burst_multiplier,
                burst_on_s=args.burst_on,
                burst_off_s=args.burst_off,
                churn_active_s=args.churn_active,
                churn_idle_s=args.churn_idle,
            )
        sensors, faults = _control_plane_configs(args, args.seed)
        started = time.perf_counter()
        try:
            # REPRO_PROFILE=1 dumps fleet-trace.prof (and forces trials
            # serial so the profile sees the replay itself).
            with maybe_profiled("fleet-trace"):
                result = run_fleet_trace(
                    trace_path=args.trace,
                    gen=gen,
                    nodes=args.nodes,
                    policy=args.policy,
                    routing=args.routing,
                    ml=args.ml,
                    duration=args.duration,
                    warmup=args.warmup,
                    interval=args.interval,
                    window_s=args.window,
                    trials=args.trials,
                    seed=args.seed,
                    jobs=args.jobs,
                    observer=observer if observer.enabled else None,
                    sensors=sensors,
                    faults=faults,
                    collect_telemetry=not args.no_telemetry,
                )
        except ReproError as exc:
            print(f"fleet-trace: {exc}", file=sys.stderr)
            return 2
        print(format_fleet_trace(result))
        if args.save_trace:
            save_trace(result.trace, args.save_trace)
            print(f"wrote {args.save_trace}")
        if observer.enabled:
            wall = time.perf_counter() - started
            observer.add_span("cli", "experiments", "fleet-trace", 0.0, wall)
            observer.note_seed("fleet.seed", args.seed)
            _finalize_observer(observer, "repro fleet-trace")
        return 0

    if args.command == "fleet-serve":
        import json

        from repro.errors import ReproError
        from repro.experiments.fleet_serve import (
            format_fleet_serve,
            run_fleet_serve,
        )
        from repro.serve import AutoscalerConfig
        from repro.traces import TraceGenConfig

        observer = _make_observer(args, "fleet-serve")
        gen = None
        if args.trace is None:
            gen = TraceGenConfig(
                seed=args.trace_seed if args.trace_seed is not None else args.seed,
                duration_s=args.trace_duration,
                rate_qps=args.trace_rate,
            )
        autoscaler = None
        if args.autoscale:
            autoscaler = AutoscalerConfig(
                min_nodes=args.min_nodes, max_nodes=args.max_nodes
            )
        started = time.perf_counter()
        try:
            with maybe_profiled("fleet-serve"):
                result = run_fleet_serve(
                    trace_path=args.trace,
                    gen=gen,
                    nodes=args.nodes,
                    policy=args.policy,
                    routing=args.routing,
                    ml=args.ml,
                    duration=args.duration,
                    warmup=args.warmup,
                    interval=args.interval,
                    window_s=args.window,
                    epoch_s=args.epoch,
                    commands=args.serve_commands,
                    autoscaler=autoscaler,
                    save_path=args.save,
                    save_at_epoch=args.save_at,
                    restore_path=args.restore,
                    trials=args.trials,
                    seed=args.seed,
                    jobs=args.jobs,
                    observer=observer if observer.enabled else None,
                    collect_telemetry=not args.no_telemetry,
                )
        except ReproError as exc:
            print(f"fleet-serve: {exc}", file=sys.stderr)
            return 2
        print(format_fleet_serve(result))
        if args.save:
            print(f"wrote {args.save}")
        if args.summary_json:
            payload = {
                "summaries": list(result.summaries),
                "snapshots": list(result.snapshots),
                "commands": [list(row) for row in result.commands],
                "epochs": result.epochs,
                "epoch_s": result.epoch_s,
            }
            with open(args.summary_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.summary_json}")
        if observer.enabled:
            wall = time.perf_counter() - started
            observer.add_span("cli", "experiments", "fleet-serve", 0.0, wall)
            observer.note_seed("fleet.seed", args.seed)
            _finalize_observer(observer, "repro fleet-serve")
        return 0

    if args.command == "fleet-incidents":
        from repro.errors import ReproError
        from repro.experiments.fleet_incidents import (
            format_fleet_incidents,
            run_fleet_incidents,
        )
        from repro.incidents.faults import INCIDENT_KINDS, save_scenario
        from repro.traces import TraceGenConfig

        if args.scenario is not None and (
            args.classes is not None or args.incident_seed is not None
        ):
            print(
                "fleet-incidents: --scenario replays a saved schedule; "
                "it cannot be combined with --classes or --incident-seed",
                file=sys.stderr,
            )
            return 2
        observer = _make_observer(args, "fleet-incidents")
        gen = None
        if args.trace is None:
            gen = TraceGenConfig(
                seed=args.trace_seed if args.trace_seed is not None else args.seed,
                duration_s=args.trace_duration,
                rate_qps=args.trace_rate,
            )
        classes = INCIDENT_KINDS
        if args.classes is not None:
            classes = tuple(
                k.strip() for k in args.classes.split(",") if k.strip()
            )
        started = time.perf_counter()
        try:
            result = run_fleet_incidents(
                trace_path=args.trace,
                gen=gen,
                scenario_path=args.scenario,
                classes=classes,
                incident_seed=args.incident_seed,
                intruder_rate_qps=args.intruder_rate,
                intruder_demand=args.intruder_demand,
                drop_fraction=args.drop_fraction,
                nodes=args.nodes,
                policy=args.policy,
                routing=args.routing,
                ml=args.ml,
                duration=args.duration,
                warmup=args.warmup,
                interval=args.interval,
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                observer=observer if observer.enabled else None,
                collect_telemetry=args.telemetry,
            )
        except ReproError as exc:
            print(f"fleet-incidents: {exc}", file=sys.stderr)
            return 2
        print(format_fleet_incidents(result))
        if args.save_scenario:
            save_scenario(result.schedule, args.save_scenario)
            print(f"wrote {args.save_scenario}")
        if observer.enabled:
            wall = time.perf_counter() - started
            observer.add_span(
                "cli", "experiments", "fleet-incidents", 0.0, wall
            )
            observer.note_seed("fleet.seed", args.seed)
            _finalize_observer(observer, "repro fleet-incidents")
        return 0

    if args.command == "mix":
        from repro.sim.tracing import TimelineTracer

        observer = _make_observer(args, "mix")
        tracer = TimelineTracer() if observer.enabled else None
        intensity: int | str = args.intensity
        if isinstance(intensity, str) and intensity.isdigit():
            intensity = int(intensity)
        sensors, faults = _control_plane_configs(args, args.seed)
        result = run_colocation(
            MixConfig(
                ml=args.ml,
                policy=args.policy,
                cpu=args.cpu,
                intensity=intensity,
                duration=args.duration,
                seed=args.seed,
                sensors=sensors,
                faults=faults,
            ),
            tracer=tracer,
            observer=observer if observer.enabled else None,
            label=f"mix:{args.ml}+{args.cpu or 'none'}:{args.policy}",
        )
        print(f"ml_perf_norm     {result.ml_perf_norm:.3f}")
        if result.ml_tail_norm is not None:
            print(f"ml_tail_norm     {result.ml_tail_norm:.3f}")
        print(f"cpu_throughput   {result.cpu_throughput:.3f}")
        if result.params:
            last = result.params[-1]
            print(
                f"controller       lo_cores={last.lo_cores} "
                f"lo_prefetchers={last.lo_prefetchers} "
                f"backfill_cores={last.backfill_cores}"
            )
        if observer.enabled:
            _finalize_observer(observer, "repro mix")
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
