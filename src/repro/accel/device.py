"""Serial accelerator engine with a roofline cost model."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.sim import Simulator


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static device characteristics."""

    name: str
    #: Peak compute throughput, TFLOPS.
    peak_tflops: float
    #: Device-local memory bandwidth, GB/s.
    local_bw_gbps: float
    #: Device-local memory capacity, GB.
    local_capacity_gb: float

    def __post_init__(self) -> None:
        if min(self.peak_tflops, self.local_bw_gbps, self.local_capacity_gb) <= 0:
            raise ConfigurationError("accelerator spec values must be positive")


@dataclass(frozen=True)
class OpCost:
    """The resource footprint of one offloaded operation."""

    #: Floating-point work, GFLOP.
    gflops: float = 0.0
    #: Device-memory traffic, GB.
    local_bytes_gb: float = 0.0

    def duration_on(self, spec: AcceleratorSpec) -> float:
        """Roofline service time on ``spec``, seconds.

        The op is bound by whichever of compute and local-memory traffic
        takes longer — the paper (citing the TPU roofline analysis) notes
        production workloads are almost always local-memory-bandwidth bound.
        """
        compute_s = self.gflops / (spec.peak_tflops * 1e3)
        memory_s = self.local_bytes_gb / spec.local_bw_gbps
        return max(compute_s, memory_s)


class AcceleratorDevice:
    """A FIFO, non-preemptive execution engine (Baymax's usage assumption
    inverted: the paper assumes one application owns the device, so the queue
    only ever holds ops from a single workload)."""

    def __init__(self, spec: AcceleratorSpec, sim: "Simulator") -> None:
        self.spec = spec
        self.sim = sim
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.ops_completed = 0

    @property
    def queue_depth(self) -> int:
        """Ops waiting behind the one in flight."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """Whether an op is currently executing."""
        return self._busy

    def submit(self, cost: OpCost, on_complete: Callable[[], None]) -> None:
        """Enqueue an op; ``on_complete`` fires when it finishes executing."""
        duration = cost.duration_on(self.spec)
        self._queue.append((duration, on_complete))
        if not self._busy:
            self._dispatch_next()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the engine spent executing."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    # ------------------------------------------------------------ internal
    def _dispatch_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        duration, on_complete = self._queue.popleft()
        self.sim.after(
            duration,
            partial(self._finish, duration, on_complete),
            label=f"{self.spec.name}:op",
        )

    def _finish(self, duration: float, on_complete: Callable[[], None]) -> None:
        self.busy_time += duration
        self.ops_completed += 1
        on_complete()
        self._dispatch_next()
