"""Host-device PCIe link: a fluid shared channel per direction.

Fig 3 shows CPU-accelerator communication is insensitive to the DRAM
aggressor, so the link is modeled independently of host memory contention:
concurrent transfers in one direction share the link's bandwidth equally.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.hw.spec import PcieSpec
from repro.sim.work import FluidWork

if TYPE_CHECKING:
    from repro.sim import Simulator
    from repro.sim.events import EventHandle


class _Transfer:
    __slots__ = ("work", "on_complete", "handle", "finisher")

    def __init__(self, work: FluidWork, on_complete: Callable[[], None]) -> None:
        self.work = work
        self.on_complete = on_complete
        self.handle: "EventHandle | None" = None
        #: Completion callback, built once so rebalances don't allocate a
        #: fresh closure for every in-flight transfer they reschedule.
        self.finisher: Callable[[], None] | None = None


class PcieLink:
    """One direction of a PCIe link, shared equally by in-flight transfers."""

    def __init__(self, spec: PcieSpec, sim: "Simulator", name: str = "pcie") -> None:
        if spec.peak_bw_gbps <= 0:
            raise ConfigurationError("PCIe bandwidth must be positive")
        self.spec = spec
        self.sim = sim
        self.name = name
        self._active: list[_Transfer] = []
        self._xfer_label = f"{name}:xfer"
        self.bytes_moved_gb = 0.0

    @property
    def active_transfers(self) -> int:
        """Transfers currently sharing the link."""
        return len(self._active)

    def transfer(self, size_gb: float, on_complete: Callable[[], None]) -> None:
        """Move ``size_gb`` across the link; callback on completion."""
        if size_gb < 0:
            raise ConfigurationError(f"negative transfer size {size_gb}")
        if size_gb == 0:
            on_complete()
            return
        entry = _Transfer(FluidWork(size_gb, now=self.sim.now), on_complete)
        entry.finisher = partial(self._finish, entry)
        self._active.append(entry)
        self._rebalance()

    # ------------------------------------------------------------ internal
    def _rebalance(self) -> None:
        now = self.sim.now
        if not self._active:
            return
        share = self.spec.peak_bw_gbps / len(self._active)
        label = self._xfer_label
        for entry in self._active:
            entry.work.set_rate(share, now=now)
            if entry.handle is not None:
                entry.handle.cancel()
            entry.handle = self.sim.after(
                entry.work.eta(), entry.finisher, label=label
            )

    def _finish(self, entry: _Transfer) -> None:
        entry.work.sync(self.sim.now)
        if not entry.work.done and not entry.work.retire_residue(
            now=self.sim.now
        ):
            return  # stale event; a newer handle owns completion
        if entry in self._active:
            self._active.remove(entry)
            self.bytes_moved_gb += entry.work.total
            entry.on_complete()
            self._rebalance()
