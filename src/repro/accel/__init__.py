"""Accelerator device models: TPUv1, Cloud TPU and GPU.

Accelerator compute is served from device-local memory (HBM/GDDR), which host
memory contention cannot reach — the separation Fig 3 of the paper
demonstrates. Devices are serial FIFO engines: one op executes at a time, and
op durations follow a roofline over the device's peak throughput and local
memory bandwidth.
"""

from repro.accel.device import AcceleratorDevice, AcceleratorSpec, OpCost
from repro.accel.pcie import PcieLink
from repro.accel.presets import cloud_tpu_device, gpu_device, tpu_v1_device

__all__ = [
    "AcceleratorDevice",
    "AcceleratorSpec",
    "OpCost",
    "PcieLink",
    "cloud_tpu_device",
    "gpu_device",
    "tpu_v1_device",
]
