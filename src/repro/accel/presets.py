"""Device presets for the paper's three platforms."""

from __future__ import annotations

from repro.accel.device import AcceleratorSpec


def tpu_v1_device() -> AcceleratorSpec:
    """First-generation TPU: 92 TOPS (int8 MAC array), 34 GB/s DDR3."""
    return AcceleratorSpec(
        name="tpu-v1", peak_tflops=92.0, local_bw_gbps=34.0, local_capacity_gb=8.0
    )


def cloud_tpu_device() -> AcceleratorSpec:
    """Cloud TPU (TPUv2): 180 TFLOPS, 64 GB HBM at 600 GB/s per device."""
    return AcceleratorSpec(
        name="cloud-tpu", peak_tflops=180.0, local_bw_gbps=600.0, local_capacity_gb=64.0
    )


def gpu_device() -> AcceleratorSpec:
    """A contemporary training GPU (P100-class): 10.6 TFLOPS, 732 GB/s HBM2."""
    return AcceleratorSpec(
        name="gpu", peak_tflops=10.6, local_bw_gbps=732.0, local_capacity_gb=16.0
    )
