"""ASCII Gantt rendering for timeline traces (the Fig 3 visual).

Turns a :class:`~repro.sim.tracing.TimelineTracer`'s intervals into a
fixed-width text chart, one row per interval kind, so the Fig 3 comparison
(standalone vs colocation) can be eyeballed in a terminal::

    cpu            ████████░░░░░░░░██████████░░░░░
    communication  ░░░░░░░░█░░░░░░░░░░░░░░░░░█░░░░
    tpu            ░░░░░░░░░█████░░░░░░░░░░░░░████
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.tracing import TraceInterval

#: Glyph for time covered by an interval of the row's kind.
FILLED = "#"
#: Glyph for idle time on a row.
EMPTY = "."


def render_gantt(
    intervals: list[TraceInterval],
    width: int = 72,
    start: float | None = None,
    end: float | None = None,
    kinds: list[str] | None = None,
) -> str:
    """Render intervals as one ASCII row per kind.

    ``start``/``end`` default to the trace extents; ``kinds`` defaults to
    the kinds present, in order of first appearance.
    """
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if not intervals:
        return "(empty trace)"
    t0 = min(i.start for i in intervals) if start is None else start
    t1 = max(i.end for i in intervals) if end is None else end
    if t1 <= t0:
        raise ConfigurationError(f"empty time window [{t0}, {t1}]")

    if kinds is None:
        kinds = []
        for interval in intervals:
            if interval.kind not in kinds:
                kinds.append(interval.kind)

    label_width = max(len(k) for k in kinds) + 2
    scale = width / (t1 - t0)
    lines = []
    for kind in kinds:
        cells = [EMPTY] * width
        for interval in intervals:
            if interval.kind != kind:
                continue
            lo = max(0, int((interval.start - t0) * scale))
            hi = min(width, max(lo + 1, int((interval.end - t0) * scale)))
            for x in range(lo, hi):
                cells[x] = FILLED
        lines.append(kind.ljust(label_width) + "".join(cells))
    span_ms = (t1 - t0) * 1e3
    lines.append(
        "".ljust(label_width) + f"|<-- {span_ms:.1f} ms -->|".ljust(width)
    )
    return "\n".join(lines)
