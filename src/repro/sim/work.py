"""Fluid work quantities that drain at externally-set rates."""

from __future__ import annotations

import math

from repro.errors import SimulationError

#: Work remainders below this are treated as complete (floating-point slack).
_EPSILON = 1e-12


class FluidWork:
    """A quantity of work draining at a piecewise-constant rate.

    The owner is responsible for calling :meth:`sync` whenever the rate may
    have changed (the :class:`~repro.sim.engine.Simulator` rate-listener hook
    does this), then :meth:`set_rate` with the new rate. Between syncs the
    rate is constant, so completion time is analytic.
    """

    __slots__ = ("_remaining", "_rate", "_last_sync", "total")

    def __init__(self, amount: float, *, now: float = 0.0) -> None:
        if amount < 0:
            raise SimulationError(f"negative work amount {amount}")
        self.total = amount
        self._remaining = amount
        self._rate = 0.0
        self._last_sync = now

    @property
    def remaining(self) -> float:
        """Remaining work as of the last sync (call :meth:`sync` first)."""
        return self._remaining

    @property
    def rate(self) -> float:
        """Current drain rate (work units per second)."""
        return self._rate

    @property
    def done(self) -> bool:
        """True once remaining work has drained to (numerically) zero."""
        return self._remaining <= _EPSILON

    def sync(self, now: float) -> None:
        """Integrate progress at the current rate up to ``now``."""
        elapsed = now - self._last_sync
        if elapsed <= 0.0:
            if elapsed < -1e-9:
                raise SimulationError(
                    f"sync moving backwards: {now} < {self._last_sync}"
                )
            self._last_sync = now
            return
        if self._rate > 0.0:
            drained = self._remaining - self._rate * elapsed
            self._remaining = drained if drained > 0.0 else 0.0
        self._last_sync = now

    def set_rate(self, rate: float, *, now: float) -> None:
        """Sync to ``now`` and switch to a new drain ``rate`` (>= 0)."""
        if rate < 0:
            raise SimulationError(f"negative rate {rate}")
        self.sync(now)
        self._rate = rate

    def retire_residue(self, *, now: float) -> bool:
        """Zero out sub-resolution float residue at a completion event.

        Completion events fire at ``now + remaining / rate`` rounded to an
        absolute float timestamp, so up to about ``rate * ulp(now)`` of
        work can survive the final sync — a residue that scales with the
        *clock*, not the work amount, and outgrows ``_EPSILON`` once the
        simulation runs long (e.g. a day-long trace replay). Rescheduling
        such a remainder can round to a zero-width step that never
        advances the clock, so owners call this when their own completion
        event fires and retire the residue instead. Returns ``False``
        (changing nothing) when the remainder is too large to be rounding
        noise — a stale event or genuinely unfinished work.
        """
        self.sync(now)
        tolerance = 1e-9 * self.total + 1024.0 * self._rate * math.ulp(
            max(abs(now), 1.0)
        )
        if self._remaining > tolerance:
            return False
        self._remaining = 0.0
        return True

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf if stalled)."""
        if self.done:
            return 0.0
        if self._rate <= 0.0:
            return float("inf")
        return self._remaining / self._rate

    def progress_fraction(self) -> float:
        """Fraction of the original amount completed, in [0, 1]."""
        if self.total <= 0:
            return 1.0
        return 1.0 - self._remaining / self.total
