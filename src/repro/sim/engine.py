"""The discrete-event simulator core."""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.errors import SimulationError
from repro.sim.events import Event, EventHandle

#: Event priority for controller/runtime actions (run after phase updates).
PRIORITY_CONTROL = 10
#: Default event priority for workload phase completions and arrivals.
PRIORITY_DEFAULT = 20
#: Priority for bookkeeping that must observe everything else (e.g. samplers).
PRIORITY_OBSERVE = 30

#: Minimum heap size before cancelled-event compaction is considered.
_COMPACT_MIN_HEAP = 64
#: Compact when at least this fraction of pending events is cancelled.
_COMPACT_FRACTION = 0.5


class _PeriodicTask:
    """State of one :meth:`Simulator.every` loop.

    A class (rather than closures over local state) so a simulator with
    periodic tasks pending remains picklable for checkpoint/restore.
    """

    __slots__ = ("sim", "interval", "callback", "label", "priority", "handle",
                 "stopped")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        label: str,
        priority: int,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.label = label
        self.priority = priority
        self.handle: Event | None = None
        self.stopped = False

    def __call__(self) -> None:
        if self.stopped:
            return
        self.callback()
        if not self.stopped:
            self.handle = self.sim.after(
                self.interval, self, label=self.label, priority=self.priority
            )

    def cancel(self) -> None:
        self.stopped = True
        if self.handle is not None:
            self.handle.cancel()

    def __getstate__(self):
        return (self.sim, self.interval, self.callback, self.label,
                self.priority, self.handle, self.stopped)

    def __setstate__(self, state):
        (self.sim, self.interval, self.callback, self.label,
         self.priority, self.handle, self.stopped) = state


class Simulator:
    """A deterministic calendar-queue discrete-event simulator.

    In addition to plain event scheduling, the simulator supports *rate
    listeners*: components whose progress rates depend on global shared
    state (the hardware contention solver). Any mutation of that shared state
    calls :meth:`invalidate_rates`; before the next event is dispatched — and
    once at the moment of invalidation — all registered listeners get a
    ``sync(now)`` callback so they can integrate progress at the old rates and
    re-schedule their completion events at the new ones.
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: Heap entries are ``(time, priority, sequence, event)`` tuples —
        #: plain-tuple comparison is markedly faster under heapq than
        #: dispatching to the Event dataclass's generated ``__lt__``.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._rate_listeners: list[Callable[[float], None]] = []
        self._rates_dirty = False
        self._running = False
        self._dispatched = 0
        self._cancelled_pending = 0
        self._compactions = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def dispatched_events(self) -> int:
        """Total events dispatched so far (diagnostics/testing)."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Events currently in the heap, including dead (cancelled) ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------ scheduling
    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} < now {self._now}"
            )
        event = Event(time, priority, callback, label, self._note_cancel)
        heapq.heappush(self._heap, (time, priority, event.sequence, event))
        return event

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` (>= 0).

        Inlines :meth:`at` — this is the hottest scheduling entry point
        (every phase completion and transfer reschedules through it).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        time = self._now + delay
        event = Event(time, priority, callback, label, self._note_cancel)
        heapq.heappush(self._heap, (time, priority, event.sequence, event))
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        label: str = "",
        priority: int = PRIORITY_DEFAULT,
        start_after: float | None = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` periodically; returns a cancel function.

        The first firing happens after ``start_after`` (defaults to
        ``interval``). The period is fixed; the callback's own runtime is
        instantaneous in simulated time.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval} for {label!r}")
        task = _PeriodicTask(self, interval, callback, label, priority)
        first = interval if start_after is None else start_after
        task.handle = self.after(first, task, label=label, priority=priority)
        return task.cancel

    # ------------------------------------------------------- rate listeners
    def add_rate_listener(self, sync: Callable[[float], None]) -> Callable[[], None]:
        """Register a listener called with ``now`` whenever rates change.

        Returns an unregister function.
        """
        self._rate_listeners.append(sync)

        def remove() -> None:
            try:
                self._rate_listeners.remove(sync)
            except ValueError:
                pass

        return remove

    def invalidate_rates(self) -> None:
        """Mark shared rate state as changed and notify listeners now.

        Listeners are synchronised immediately so that code running right
        after a reconfiguration observes consistent progress. Re-entrant
        invalidations from inside a listener are coalesced.
        """
        if self._rates_dirty:
            return
        self._rates_dirty = True
        try:
            for sync in list(self._rate_listeners):
                sync(self._now)
        finally:
            self._rates_dirty = False

    # ----------------------------------------------------------- compaction
    def _note_cancel(self, event: Event) -> None:
        """Record one cancellation (hooked into every scheduled event)."""
        self._cancelled_pending += 1
        heap_size = len(self._heap)
        if (
            heap_size >= _COMPACT_MIN_HEAP
            and self._cancelled_pending >= _COMPACT_FRACTION * heap_size
        ):
            self.compact()

    def _maybe_compact(self) -> None:
        """Compact if the heap is mostly dead events.

        Lazy cancellation keeps :meth:`Event.cancel` O(1) but leaves
        tombstones in the heap; long fleet runs that continually reschedule
        completion events would otherwise accumulate unbounded dead entries.
        When at least half of a non-trivial heap is cancelled, rebuilding it
        is amortized O(1) per cancellation.
        """
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_pending >= _COMPACT_FRACTION * len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop all cancelled events from the heap and re-heapify.

        Safe at any point: events order by ``(time, priority, sequence)``
        which is preserved by rebuilding, so dispatch order is unchanged.
        """
        if not self._cancelled_pending:
            return
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    # ---------------------------------------------------------------- run
    def run_until(self, end_time: float, *, max_events: int | None = None) -> None:
        """Dispatch events in order until simulated time reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed. ``max_events``
        guards against runaway feedback loops in tests.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is in the past (now={self._now})"
            )
        self._running = True
        budget = max_events
        try:
            while self._heap:
                if self._heap[0][0] > end_time:
                    break
                event = heapq.heappop(self._heap)[3]
                if event.cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                self._now = event.time
                event.callback()
                self._dispatched += 1
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(last: {event.label!r} at t={event.time})"
                        )
            self._now = end_time
        finally:
            self._running = False

    def drain(self, labels: Iterable[str] = ()) -> int:
        """Cancel all pending events (optionally only matching labels).

        Returns the number of events cancelled. With no labels, everything
        pending is cancelled — used to tear a scenario down between runs.
        """
        wanted = set(labels)
        count = 0
        for _, _, _, event in self._heap:
            if event.cancelled:
                continue
            if not wanted or event.label in wanted:
                event.cancelled = True
                count += 1
        self._cancelled_pending += count
        self._maybe_compact()
        return count
