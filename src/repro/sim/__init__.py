"""Discrete-event simulation engine.

The engine is a classic calendar-queue simulator with one twist: it is built
for *fluid* models. Tasks do not execute instruction by instruction; they hold
a quantity of remaining work that drains at a rate set by the hardware
contention solver. Whenever the global rate assignment changes (a phase
completes, a controller reconfigures the machine, an aggressor starts), the
engine lets interested components recompute rates and re-schedule their
completion events.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.events.Event` / :func:`~repro.sim.engine.Simulator.at` /
  :func:`~repro.sim.engine.Simulator.after` — scheduling.
* :class:`~repro.sim.work.FluidWork` — a drainable quantity of work.
* :class:`~repro.sim.rng.RngStreams` — deterministic named random streams.
* :class:`~repro.sim.tracing.TimelineTracer` — phase-interval traces (Fig 3).
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventHandle
from repro.sim.gantt import render_gantt
from repro.sim.rng import RngStreams
from repro.sim.tracing import TimelineTracer, TraceInterval
from repro.sim.work import FluidWork

__all__ = [
    "Event",
    "EventHandle",
    "FluidWork",
    "RngStreams",
    "Simulator",
    "TimelineTracer",
    "TraceInterval",
    "render_gantt",
]
