"""Event objects and cancellation handles for the simulator."""

from __future__ import annotations

import itertools
from typing import Callable

_SEQUENCE = itertools.count()


class Event:
    """A scheduled callback, doubling as its own cancellation handle.

    Events order by ``(time, priority, sequence)``. ``priority`` breaks ties
    between events at the same instant — lower runs first — which matters when
    a controller tick and a phase completion land on the same timestamp.
    ``sequence`` keeps ordering deterministic for equal (time, priority).

    A hand-rolled class rather than a dataclass, and handle-and-event in one
    object: the engine creates one per scheduled callback, which makes both
    construction cost and allocation count part of the simulator's per-event
    overhead.

    The engine never removes cancelled events from the heap eagerly; it skips
    them when they surface. Cancellation is therefore O(1). The engine may,
    however, *compact* the heap when cancelled events pile up — it learns
    about cancellations through the ``on_cancel`` hook so it can keep an
    exact count without scanning.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "label",
        "cancelled",
        "on_cancel",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        callback: Callable[[], None],
        label: str = "",
        on_cancel: "Callable[[Event], None] | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = next(_SEQUENCE)
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel(self)

    def _key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )


#: Historical name for the cancellable reference :meth:`Simulator.at`
#: returns. Events now carry their own ``cancel``; the alias keeps type
#: hints and imports working.
EventHandle = Event
