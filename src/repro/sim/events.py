"""Event objects and cancellation handles for the simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

_SEQUENCE = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, sequence)``. ``priority`` breaks ties
    between events at the same instant — lower runs first — which matters when
    a controller tick and a phase completion land on the same timestamp.
    ``sequence`` keeps ordering deterministic for equal (time, priority).
    """

    time: float
    priority: int
    sequence: int = field(init=False)
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        self.sequence = next(_SEQUENCE)


class EventHandle:
    """A cancellable reference to a scheduled :class:`Event`.

    The engine never removes cancelled events from the heap eagerly; it skips
    them when they surface. Cancellation is therefore O(1). The engine may,
    however, *compact* the heap when cancelled events pile up — it learns
    about cancellations through the ``on_cancel`` hook so it can keep an
    exact count without scanning.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self, event: Event, on_cancel: Callable[[Event], None] | None = None
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event's callback from running. Idempotent."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self._event)
