"""Timeline tracing: records phase intervals for execution-timeline plots.

Figure 3 of the paper shows an RNN1 iteration broken into CPU-assist,
CPU-accelerator communication, and TPU-compute intervals, standalone vs under
a DRAM aggressor. :class:`TimelineTracer` captures exactly that: labelled
``(start, end)`` intervals per track.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceInterval:
    """One labelled interval on a timeline track."""

    track: str
    kind: str
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass
class TimelineTracer:
    """Collects :class:`TraceInterval` records, optionally filtered by track."""

    enabled: bool = True
    intervals: list[TraceInterval] = field(default_factory=list)
    _open: dict[tuple[str, str], tuple[float, str]] = field(default_factory=dict)

    def begin(self, track: str, kind: str, now: float, detail: str = "") -> None:
        """Open an interval of ``kind`` on ``track`` at time ``now``."""
        if not self.enabled:
            return
        self._open[(track, kind)] = (now, detail)

    def end(self, track: str, kind: str, now: float) -> None:
        """Close the matching open interval; silently ignores unmatched ends."""
        if not self.enabled:
            return
        opened = self._open.pop((track, kind), None)
        if opened is None:
            return
        start, detail = opened
        self.intervals.append(
            TraceInterval(track=track, kind=kind, start=start, end=now, detail=detail)
        )

    def record(
        self, track: str, kind: str, start: float, end: float, detail: str = ""
    ) -> None:
        """Record a complete interval directly."""
        if not self.enabled:
            return
        self.intervals.append(
            TraceInterval(track=track, kind=kind, start=start, end=end, detail=detail)
        )

    def flush(self, now: float) -> int:
        """Close every still-open interval at ``now``.

        In-flight phases at simulation end would otherwise be silently
        discarded, truncating the timeline. Flushed intervals are marked
        ``detail="truncated"`` (appended to any existing detail) so plots
        and exports can distinguish them from naturally completed phases.
        Returns the number of intervals closed.
        """
        if not self._open:
            return 0
        closed = 0
        # Sorted for deterministic interval order regardless of dict history.
        for (track, kind), (start, detail) in sorted(self._open.items()):
            mark = f"{detail};truncated" if detail else "truncated"
            self.intervals.append(
                TraceInterval(
                    track=track, kind=kind, start=start, end=max(now, start),
                    detail=mark,
                )
            )
            closed += 1
        self._open.clear()
        return closed

    def for_track(self, track: str) -> list[TraceInterval]:
        """All closed intervals on ``track``, in completion order."""
        return [i for i in self.intervals if i.track == track]

    def kinds(self) -> set[str]:
        """The set of interval kinds recorded so far."""
        return {i.kind for i in self.intervals}

    def total_time(self, track: str, kind: str) -> float:
        """Summed duration of all intervals of ``kind`` on ``track``."""
        return sum(
            i.duration for i in self.intervals if i.track == track and i.kind == kind
        )

    def clear(self) -> None:
        """Discard all recorded and open intervals."""
        self.intervals.clear()
        self._open.clear()
