"""Deterministic named random-number streams.

Every stochastic component draws from its own named stream so that adding a
new random consumer does not perturb the draws of existing ones — experiments
stay reproducible across library versions.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A factory of independent, reproducible ``numpy`` generators.

    Streams are keyed by name; the same ``(seed, name)`` pair always yields
    the same sequence. Repeated requests for the same name return the same
    generator instance (state is shared within a run, as a real RNG would be).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The base seed supplied at construction."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory (e.g. one per workload instance)."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))
