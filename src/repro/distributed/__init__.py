"""Deprecated seed-era package — the distributed models moved into the stack.

* :class:`LockStepBarrier`, :class:`PsUpdateModel`,
  :class:`ParameterServerShard` and :class:`WorkerModel` now live at
  :mod:`repro.workloads.ml.distributed` (their only live consumer is the
  CNN3 training workload).
* :class:`TailAmplificationModel` now lives at :mod:`repro.fleet.validate`,
  next to the fleet runs that cross-validate it.

This shim re-exports the old names and emits a single
:class:`DeprecationWarning` on first import (module caching makes repeat
imports silent); new code should import from the consolidated modules
directly.
"""

import warnings

from repro.fleet.validate import TailAmplificationModel
from repro.workloads.ml.distributed import (
    LockStepBarrier,
    ParameterServerShard,
    PsUpdateModel,
    WorkerModel,
)

warnings.warn(
    "repro.distributed is deprecated: import the training models from "
    "repro.workloads.ml.distributed and TailAmplificationModel from "
    "repro.fleet.validate",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "LockStepBarrier",
    "ParameterServerShard",
    "PsUpdateModel",
    "TailAmplificationModel",
    "WorkerModel",
]
