"""Distributed training substrate: parameter servers and lock-step barriers.

CNN3 trains with the distributed-TensorFlow architecture of Fig 1: workers
compute gradients on accelerators, push them to parameter-server shards, and
wait for updated variables. Training steps are processed in lock-step, so
the *slowest* shard bounds service-level throughput — the "tail at scale"
amplification the paper cites. This package models the shard fan-out and the
barrier; the local shard's latency comes from the contention simulation while
remote shards are drawn from calibrated distributions.
"""

from repro.distributed.parameter_server import ParameterServerShard, PsUpdateModel
from repro.distributed.sync import LockStepBarrier
from repro.distributed.worker import WorkerModel

__all__ = [
    "LockStepBarrier",
    "ParameterServerShard",
    "PsUpdateModel",
    "WorkerModel",
]
