"""Worker-side model for distributed training.

A worker computes gradients on its accelerator (step 1 of Fig 1), pushes
them to the parameter servers (step 2), and pulls updated variables back
(step 4). Push/pull cross the PCIe link and the datacenter network; the
paper runs one GPU worker to keep network noise out, so the network term is
a fixed per-step cost here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkerModel:
    """Per-step worker costs around the accelerator compute."""

    #: Gradient bytes pushed per step, GB.
    gradient_gb: float
    #: Variable bytes pulled per step, GB.
    variable_gb: float
    #: Fixed network round-trip overhead per step, seconds.
    network_overhead: float = 2e-3

    def __post_init__(self) -> None:
        if self.gradient_gb < 0 or self.variable_gb < 0:
            raise ConfigurationError("transfer sizes must be >= 0")
        if self.network_overhead < 0:
            raise ConfigurationError("network_overhead must be >= 0")
