"""Deprecated alias for :mod:`repro.workloads.ml.distributed`."""

from repro.workloads.ml.distributed import WorkerModel  # noqa: F401

__all__ = ["WorkerModel"]
