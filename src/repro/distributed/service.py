"""Deprecated alias for :mod:`repro.fleet.validate`."""

from repro.fleet.validate import TailAmplificationModel  # noqa: F401

__all__ = ["TailAmplificationModel"]
