"""Service-level tail amplification for lock-step distributed training.

Section II-D, factor 1: "service-level performance of distributed workloads
is even more susceptible to interference due to 'tail amplification'" — in
lock-step training every step waits for the slowest parameter-server shard,
so as the shard fan-out grows, the probability that *some* shard sits on an
interfered machine approaches one, and the whole service runs at the
interfered speed.

The model composes two measured quantities: the probability that a machine
is bandwidth-saturated (the Fig 2 fleet statistic) and the local update-time
stretch interference causes (measured on the simulated node). Monte Carlo
over shard placements yields expected service slowdown vs fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TailAmplificationModel:
    """Expected lock-step slowdown as shard fan-out grows."""

    #: Probability a shard's machine suffers interference (Fig 2: ~0.16).
    interference_probability: float
    #: Local update-time stretch on an interfered machine (measured).
    interfered_stretch: float
    #: Shard latency coefficient of variation on clean machines.
    latency_cv: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 <= self.interference_probability <= 1.0:
            raise ConfigurationError("interference_probability must be in [0,1]")
        if self.interfered_stretch < 1.0:
            raise ConfigurationError("interfered_stretch must be >= 1")
        if self.latency_cv < 0:
            raise ConfigurationError("latency_cv must be >= 0")

    def expected_slowdown(
        self, shards: int, samples: int = 4000, seed: int = 0
    ) -> float:
        """Mean service-step slowdown for a ``shards``-way fan-out.

        Each sample draws per-shard update latencies (Gamma noise around
        1.0, scaled by the stretch on interfered machines) and takes the
        max — the lock-step barrier. Slowdown is relative to a single clean
        shard's expected latency.
        """
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        rng = np.random.default_rng(seed)
        if self.latency_cv > 0:
            cv2 = self.latency_cv ** 2
            base = rng.gamma(1.0 / cv2, cv2, size=(samples, shards))
        else:
            base = np.ones((samples, shards))
        interfered = rng.random((samples, shards)) < self.interference_probability
        latencies = np.where(interfered, base * self.interfered_stretch, base)
        return float(np.mean(np.max(latencies, axis=1)))

    def probability_any_interfered(self, shards: int) -> float:
        """Probability at least one shard is on an interfered machine."""
        return 1.0 - (1.0 - self.interference_probability) ** shards
