"""Lock-step synchronization with tail amplification."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class LockStepBarrier:
    """The per-step barrier across parameter-server shards.

    One shard is *local* — its update latency is produced by the contention
    simulation. The remaining ``shards - 1`` are remote: their latencies are
    drawn from a Gamma distribution around the nominal standalone update time
    (shape set by the coefficient of variation). The barrier releases when
    the slowest shard finishes, so the step pays
    ``max(local_latency, max(remote draws))`` — amplifying any local
    interference across the whole service (Dean & Barroso's tail-at-scale
    effect, Section II-D).
    """

    def __init__(
        self,
        shards: int,
        nominal_latency: float,
        latency_cv: float = 0.12,
        rng: np.random.Generator | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        if nominal_latency <= 0:
            raise ConfigurationError("nominal_latency must be positive")
        if latency_cv < 0:
            raise ConfigurationError("latency_cv must be >= 0")
        self.shards = shards
        self.nominal_latency = nominal_latency
        self.latency_cv = latency_cv
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def remote_max(self) -> float:
        """Draw the slowest remote shard's latency for one step."""
        remote = self.shards - 1
        if remote == 0:
            return 0.0
        if self.latency_cv == 0:
            return self.nominal_latency
        cv2 = self.latency_cv ** 2
        shape = 1.0 / cv2
        scale = self.nominal_latency * cv2
        draws = self._rng.gamma(shape, scale, size=remote)
        return float(np.max(draws))

    def barrier_wait(self, local_latency: float) -> float:
        """Extra time the step waits *after* the local shard finished.

        Returns ``max(0, slowest_remote - local_latency)``.
        """
        if local_latency < 0:
            raise ConfigurationError("local_latency must be >= 0")
        return max(0.0, self.remote_max() - local_latency)
