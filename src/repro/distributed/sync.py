"""Deprecated alias for :mod:`repro.workloads.ml.distributed`."""

from repro.workloads.ml.distributed import LockStepBarrier  # noqa: F401

__all__ = ["LockStepBarrier"]
