"""Parameter-server shard model.

A shard aggregates gradients and applies the optimizer update — a
memory-bandwidth-intensive scan over the variable partition (Section I,
step 3 of Fig 1). The update cost scales with the parameter bytes owned by
the shard and the optimizer's bytes-per-parameter footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PsUpdateModel:
    """Analytic cost model for one shard's per-step update."""

    #: Parameter bytes owned by this shard, GB.
    shard_params_gb: float
    #: Optimizer traffic multiplier: bytes moved per parameter byte per step
    #: (read params + read grads + write params; Adam adds moment reads).
    optimizer_traffic_factor: float = 4.0
    #: Effective per-shard memory bandwidth at standalone, GB/s.
    standalone_bw_gbps: float = 18.0

    def __post_init__(self) -> None:
        if self.shard_params_gb <= 0:
            raise ConfigurationError("shard_params_gb must be positive")
        if self.optimizer_traffic_factor <= 0:
            raise ConfigurationError("optimizer_traffic_factor must be positive")
        if self.standalone_bw_gbps <= 0:
            raise ConfigurationError("standalone_bw_gbps must be positive")

    @property
    def bytes_per_step_gb(self) -> float:
        """Memory traffic of one update, GB."""
        return self.shard_params_gb * self.optimizer_traffic_factor

    @property
    def standalone_update_time(self) -> float:
        """Update latency at standalone bandwidth, seconds."""
        return self.bytes_per_step_gb / self.standalone_bw_gbps


@dataclass(frozen=True)
class ParameterServerShard:
    """One shard: an update model plus its position in the fan-out."""

    shard_id: int
    update: PsUpdateModel

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError("shard_id must be >= 0")
