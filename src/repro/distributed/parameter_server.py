"""Deprecated alias for :mod:`repro.workloads.ml.distributed`."""

from repro.workloads.ml.distributed import (  # noqa: F401
    ParameterServerShard,
    PsUpdateModel,
)

__all__ = ["ParameterServerShard", "PsUpdateModel"]
