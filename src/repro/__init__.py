"""repro — a full reproduction of *Kelp: QoS for Accelerated Machine
Learning Systems* (HPCA 2019) on a simulated substrate.

The library layers, bottom to top:

* :mod:`repro.sim` — fluid discrete-event engine.
* :mod:`repro.hw` — the dual-socket host model: memory controllers, NUMA
  subdomains (SNC/CoD), LLC + CAT, prefetchers, distress backpressure, UPI.
* :mod:`repro.accel` — TPU / Cloud TPU / GPU device models and PCIe.
* :mod:`repro.hostif` — simulated Linux control surfaces (perf, MSR,
  cpusets, resctrl, numactl).
* :mod:`repro.workloads` — the four accelerated workloads (RNN1, CNN1,
  CNN2, CNN3) and the CPU workloads/antagonists (Stream, Stitch, CPUML,
  LLC/DRAM/Remote-DRAM).
* :mod:`repro.core` — **Kelp itself**: Algorithm 1/2, watermark profiles,
  and the evaluated policies (BL, CT, KP-SD, KP, HW-QOS).
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import MixConfig, run_colocation

    result = run_colocation(
        MixConfig(ml="cnn1", policy="KP", cpu="stitch", intensity=4)
    )
    print(result.ml_perf_norm, result.cpu_throughput)
"""

from repro.core import KelpRuntime, available_policies, make_policy
from repro.core.watermarks import QosProfile, Watermark, default_profile
from repro.node import Node
from repro.errors import ReproError
from repro.experiments.common import (
    ColocationResult,
    MixConfig,
    run_colocation,
    standalone_performance,
)
from repro.experiments.registry import experiment_ids, run_experiment
from repro.hw import Machine, Placement
from repro.obs import ObsConfig, RunObserver
from repro.hw.spec import (
    MachineSpec,
    cloud_tpu_host_spec,
    gpu_host_spec,
    tpu_host_spec,
)
from repro.sim import Simulator
from repro.version import __version__
from repro.workloads import (
    cpu_workload,
    cpu_workload_names,
    ml_workload,
    ml_workload_names,
)

__all__ = [
    "ColocationResult",
    "KelpRuntime",
    "Machine",
    "MachineSpec",
    "MixConfig",
    "Node",
    "ObsConfig",
    "Placement",
    "QosProfile",
    "ReproError",
    "RunObserver",
    "Simulator",
    "Watermark",
    "__version__",
    "available_policies",
    "cloud_tpu_host_spec",
    "cpu_workload",
    "cpu_workload_names",
    "default_profile",
    "experiment_ids",
    "gpu_host_spec",
    "make_policy",
    "ml_workload",
    "ml_workload_names",
    "run_colocation",
    "run_experiment",
    "standalone_performance",
    "tpu_host_spec",
]
