"""A managed node: machine + host control interfaces + task bookkeeping.

The :class:`Node` is what an isolation policy manipulates — it bundles the
hardware model with the simulated kernel surfaces (perf, MSR, cpuset,
resctrl, numactl) and tracks which tasks play which role (the high-priority
ML task, low-priority CPU tasks, and any backfilled CPU tasks in the
high-priority subdomain).

Which socket hosts the accelerator — and which of that socket's subdomains
is dedicated to the high-priority task — are per-node fields, so a
heterogeneous fleet can mix nodes whose accelerators hang off either socket.
The module-level constants below remain as the defaults (socket 0, its first
subdomain high, its second low), which is what every single-node experiment
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hostif.cpuset import CpusetController, PlaceableTask
from repro.hostif.msr import MsrInterface
from repro.hostif.numactl import NumaPolicy
from repro.hostif.perf import PerfCounters
from repro.hostif.resctrl import ResctrlFs
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec
from repro.sim import Simulator

#: Default socket hosting the accelerator and therefore the experiments.
ACCEL_SOCKET = 0
#: Default subdomain Kelp dedicates to the high-priority ML task.
HI_SUBDOMAIN = 0
#: Default subdomain Kelp assigns to low-priority CPU tasks.
LO_SUBDOMAIN = 1


@dataclass
class Node:
    """One accelerated server under runtime management."""

    machine: Machine
    msr: MsrInterface
    cpuset: CpusetController
    resctrl: ResctrlFs
    numa: NumaPolicy
    perf: PerfCounters
    #: Low-priority tasks living in the low-priority subdomain (or anywhere,
    #: for policies without subdomains).
    lo_tasks: list[PlaceableTask] = field(default_factory=list)
    #: Low-priority tasks backfilled into the high-priority subdomain.
    backfill_tasks: list[PlaceableTask] = field(default_factory=list)
    #: The socket hosting this node's accelerator.
    accel_socket: int = ACCEL_SOCKET
    #: The subdomain dedicated to the high-priority ML task.
    hi_subdomain: int = HI_SUBDOMAIN
    #: The subdomain assigned to low-priority CPU tasks.
    lo_subdomain: int = LO_SUBDOMAIN

    @classmethod
    def create(
        cls,
        spec: MachineSpec,
        sim: Simulator,
        accel_socket: int = ACCEL_SOCKET,
        hi_subdomain: int | None = None,
        lo_subdomain: int | None = None,
    ) -> "Node":
        """Assemble a node with all host interfaces over a fresh machine.

        ``accel_socket`` selects which socket hosts the accelerator;
        ``hi_subdomain``/``lo_subdomain`` default to the first and last
        subdomain of that socket (identical to the historical constants for
        socket 0 on the two-channel-group presets).
        """
        machine = Machine(spec, sim)
        topo = machine.topology
        if not 0 <= accel_socket < topo.num_sockets:
            raise ConfigurationError(
                f"accel_socket {accel_socket} out of range "
                f"(machine has {topo.num_sockets} sockets)"
            )
        subdomains = topo.subdomains_of_socket(accel_socket)
        if hi_subdomain is None:
            hi_subdomain = subdomains[0]
        if lo_subdomain is None:
            lo_subdomain = subdomains[-1]
        for name, sub in (("hi", hi_subdomain), ("lo", lo_subdomain)):
            if sub not in subdomains:
                raise ConfigurationError(
                    f"{name}_subdomain {sub} does not belong to socket "
                    f"{accel_socket} (its subdomains: {subdomains})"
                )
        if hi_subdomain == lo_subdomain and len(subdomains) > 1:
            raise ConfigurationError(
                "hi_subdomain and lo_subdomain must differ on multi-"
                "subdomain sockets"
            )
        return cls(
            machine=machine,
            msr=MsrInterface(machine),
            cpuset=CpusetController(machine),
            resctrl=ResctrlFs(machine),
            numa=NumaPolicy(machine),
            perf=PerfCounters(machine),
            accel_socket=accel_socket,
            hi_subdomain=hi_subdomain,
            lo_subdomain=lo_subdomain,
        )

    @property
    def sim(self) -> Simulator:
        """The simulator this node lives in."""
        return self.machine.sim

    # ------------------------------------------------------------ topology
    def accel_socket_cores(self) -> tuple[int, ...]:
        """All cores of the accelerator-local socket."""
        return self.machine.topology.cores_of_socket(self.accel_socket)

    def hi_subdomain_cores(self) -> tuple[int, ...]:
        """Cores of the high-priority subdomain."""
        return self.machine.topology.cores_of_subdomain(self.hi_subdomain)

    def lo_subdomain_cores(self) -> tuple[int, ...]:
        """Cores of the low-priority subdomain."""
        return self.machine.topology.cores_of_subdomain(self.lo_subdomain)

    # -------------------------------------------------------- prefetchers
    def lo_prefetchers_enabled(self) -> int:
        """Cores among the low-priority subdomain with prefetching on.

        Read-only: *writing* prefetcher state goes through the journaled
        :class:`~repro.control.actuators.HostControlPlane` facade (the old
        ``set_lo_prefetchers_enabled`` convenience bypass was removed with
        the control-plane refactor).
        """
        return sum(
            1
            for core in self.lo_subdomain_cores()
            if self.machine.prefetchers.is_enabled(core)
        )
