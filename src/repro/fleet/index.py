"""Incremental routing indexes: argmin-over-members without the O(N) scan.

``LeastLoadedRouter`` and ``InterferenceAwareRouter`` are pure argmin
selectors: ``min(members, key=...)`` with a key that changes only at
discrete, observable member events (a request admitted or completed, a
fresh telemetry sample, a death/restart, a rotation flip). At 4 nodes the
scan is cheap; at 256 nodes it is the dominant per-arrival cost of a
day-long trace replay. :class:`RoutingIndex` replaces the scan with a
versioned lazy-discard heap that is *provably choice-identical*:

* **Entries** are ``(key(member), member.index, version)``. The key tuple
  already ends in ``member.index``, so entries are totally ordered and the
  heap minimum is exactly the member the scan's ``min`` would return —
  including ties, which both break on the lowest index.
* **Dirty marking** (:meth:`mark_dirty`) bumps the member's version and
  eagerly pushes a fresh entry; stale entries stay behind and are discarded
  lazily when they surface at the top of the heap. Every event that can
  change a member's key must mark it dirty — :class:`~repro.fleet.member.
  FleetMember` routes all such events through its ``on_state_change``
  callback (admission, completion, sample, death, restart, blackout, and
  rotation flips via the ``in_rotation`` property), so even traffic that
  bypasses the fleet router (the incident engine's intruder tenant submits
  straight to the member) keeps the index coherent.
* **Rotation** is checked live at :meth:`choose` time: out-of-rotation
  members are skipped *and dropped* from the heap; flipping
  ``member.in_rotation`` back on marks the member dirty, which re-inserts
  it. A silently *dead* member is deliberately not skipped — it stays in
  rotation with its load frozen at the death instant, which is precisely
  what makes it a traffic magnet under least-loaded routing (the scan
  behaves identically).
* **Compaction**: the heap is rebuilt from live state whenever discarded
  garbage would otherwise dominate, bounding memory at O(members).

The index is an internal accelerator for the orchestrator's admission
path; the ``Router`` objects themselves are unchanged, and the orchestrator
falls back to the scan whenever ``orchestrator.router`` is no longer the
exact router the index was built for (e.g. the incident engine wrapping it
in a null-routing misconfiguration). Set ``REPRO_FLEET_INDEX=0`` to disable
the index globally and force the reference scan.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Callable, Sequence

from repro.fleet.routing import (
    InterferenceAwareRouter,
    LeastLoadedRouter,
    Router,
)

if TYPE_CHECKING:
    from repro.fleet.member import FleetMember

#: Environment knob: set to ``0`` to force the reference O(N) scans.
INDEX_ENV = "REPRO_FLEET_INDEX"


def index_enabled() -> bool:
    """Whether the incremental routing index is enabled (default: yes)."""
    return os.environ.get(INDEX_ENV, "").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


def _least_loaded_key(member: "FleetMember") -> tuple:
    # Must mirror LeastLoadedRouter.choose's key exactly.
    return (member.load, member.index)


class RoutingIndex:
    """A versioned eager-push / lazy-discard heap over fleet members."""

    def __init__(
        self,
        members: Sequence["FleetMember"],
        key: Callable[["FleetMember"], tuple],
        load_only: bool,
    ) -> None:
        self._members = members
        self._key = key
        #: Keys that ignore telemetry can skip per-sample dirty marks.
        self._load_only = load_only
        self._version = [0] * len(members)
        self._heap: list[tuple[tuple, int, int]] = [
            (key(member), member.index, 0) for member in members
        ]
        heapq.heapify(self._heap)
        self._compact_at = 4 * len(members) + 64

    def mark_dirty(self, member: "FleetMember") -> None:
        """Re-key one member after an event that may have changed its key."""
        version = self._version[member.index] + 1
        self._version[member.index] = version
        heapq.heappush(self._heap, (self._key(member), member.index, version))
        if len(self._heap) > self._compact_at:
            self._compact()

    def on_member_event(self, member: "FleetMember", kind: str) -> None:
        """The :attr:`FleetMember.on_state_change` entry point.

        ``kind`` is ``"load"`` (admission/completion/lifecycle),
        ``"signals"`` (a fresh telemetry sample) or ``"rotation"``. A
        load-only key is invariant under telemetry samples, so those marks
        are skipped — at fleet scale that is one heap push per member-tick
        saved.
        """
        if kind == "signals" and self._load_only:
            return
        self.mark_dirty(member)

    def choose(self) -> "FleetMember | None":
        """The in-rotation member with the minimal current key, or None.

        Identical to ``min((m for m in members if m.in_rotation),
        key=self._key)`` (ties to the lowest index) — the golden- and
        property-equivalence tests pin this against the reference scan.
        """
        heap = self._heap
        version = self._version
        members = self._members
        while heap:
            _, index, entry_version = heap[0]
            if entry_version != version[index]:
                heapq.heappop(heap)  # superseded by a dirtier entry
                continue
            member = members[index]
            if not member.in_rotation:
                # Dropped from the heap; the in_rotation setter marks the
                # member dirty when it rejoins, re-inserting it.
                heapq.heappop(heap)
                continue
            return member
        return None

    def _compact(self) -> None:
        """Rebuild the heap from live state, discarding stale garbage."""
        version = self._version
        self._heap = [
            (self._key(member), member.index, version[member.index])
            for member in self._members
            if member.in_rotation
        ]
        heapq.heapify(self._heap)


def make_routing_index(
    router: Router, members: Sequence["FleetMember"]
) -> RoutingIndex | None:
    """An index matching ``router``'s key, or None for unindexable routers.

    Only the two deterministic argmin strategies are indexable; the random
    router draws from its RNG stream and keeps the reference path.
    """
    if not index_enabled():
        return None
    if isinstance(router, LeastLoadedRouter):
        return RoutingIndex(members, _least_loaded_key, load_only=True)
    if isinstance(router, InterferenceAwareRouter):
        return RoutingIndex(members, router._key, load_only=False)
    return None
