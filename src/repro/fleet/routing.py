"""Admission routing for high-priority inference traffic.

Every tenant arrival is routed to exactly one node at admission time (there
is no cross-node migration of in-flight requests). Three strategies:

* ``random`` — uniform over the fleet; the memoryless baseline.
* ``least-loaded`` — fewest in-flight + queued requests; classic join-the-
  shortest-queue, blind to memory interference.
* ``interference-aware`` — avoid nodes whose telemetry shows memory
  pressure (saturation / loaded latency), then break ties by load. This is
  the cluster-level analogue of the paper's thesis: the signal that matters
  for accelerated ML tail latency is *memory-system interference*, not CPU
  queue depth.

Routers see only :class:`~repro.fleet.member.NodeSignals`-level state, via
the members' public surface — deterministic given the same fleet state and
(for ``random``) the same RNG stream.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.config import ROUTING_NAMES
from repro.fleet.member import FleetMember


class Router(abc.ABC):
    """Strategy interface: pick the node for one arriving request."""

    #: Registry name, set by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, members: Sequence[FleetMember]) -> FleetMember:
        """The member that admits the next request."""


class RandomRouter(Router):
    """Uniform random placement."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose(self, members: Sequence[FleetMember]) -> FleetMember:
        return members[int(self._rng.integers(0, len(members)))]


class LeastLoadedRouter(Router):
    """Join the shortest queue (in-flight + queued), ties by node index."""

    name = "least-loaded"

    def choose(self, members: Sequence[FleetMember]) -> FleetMember:
        return min(members, key=lambda m: (m.load, m.index))


#: Pressure quantum for interference-aware routing. Telemetry is one control
#: interval old; acting on raw float pressure would dump every arrival of an
#: interval onto the single momentarily-coolest node (a thundering herd).
#: Bucketing keeps stale near-ties from defeating live load balancing.
PRESSURE_BUCKET = 0.05

#: Effective-load inflation per pressure bucket. Pressure on a node stretches
#: its service times, so a pressured node's queue represents proportionally
#: more *work* than a clean node's; the router models that as a
#: multiplicative handicap. Being multiplicative keeps the bias capacity-
#: safe: a clean node can only ever absorb about ``1 + weight * buckets``
#: times a pressured node's load before arrivals spill back — it is biased
#: toward, never blacklisted into, absorbing the fleet. (Both an absolute
#: avoid rule and a large additive penalty were tried first; under load they
#: funnel the whole fleet's traffic onto the few clean nodes and collapse
#: them.)
PRESSURE_WEIGHT = 0.1


class InterferenceAwareRouter(Router):
    """Balance live load, biased away from memory pressure.

    The key is ``(load + 1) * (1 + PRESSURE_WEIGHT * pressure_bucket)`` —
    live queue depth inflated by the node's latest control-interval
    telemetry (:meth:`~repro.fleet.member.NodeSignals.pressure`, quantized
    to :data:`PRESSURE_BUCKET` so stale float jitter cannot cause
    thundering herds). Before the first telemetry tick every node reads as
    clean, so the router degrades to least-loaded — matching a production
    scheduler warming up its signals.
    """

    name = "interference-aware"

    @staticmethod
    def _key(member: FleetMember) -> tuple[float, int]:
        signals = member.last_signals
        pressure = signals.pressure() if signals is not None else 0.0
        bucket = int(pressure / PRESSURE_BUCKET)
        effective = (member.load + 1) * (1.0 + PRESSURE_WEIGHT * bucket)
        return (effective, member.index)

    def choose(self, members: Sequence[FleetMember]) -> FleetMember:
        return min(members, key=self._key)


def make_router(name: str, rng: np.random.Generator | None = None) -> Router:
    """Instantiate a routing strategy by name.

    ``rng`` is required for ``random`` (the fleet passes a dedicated seeded
    stream so routing noise never perturbs arrival-time determinism).
    """
    key = name.lower()
    if key not in ROUTING_NAMES:
        raise ConfigurationError(
            f"unknown routing {name!r}; expected one of {list(ROUTING_NAMES)}"
        )
    if key == "random":
        if rng is None:
            raise ConfigurationError("random routing needs an RNG stream")
        return RandomRouter(rng)
    if key == "least-loaded":
        return LeastLoadedRouter()
    return InterferenceAwareRouter()
