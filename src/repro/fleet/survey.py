"""Synthetic fleet memory-bandwidth survey (Fig 2).

Figure 2 plots, for one server generation over one day, the CDF of each
machine's 99 %-ile memory-bandwidth utilization; 16 % of machines exceed
70 % of peak — the motivation that bandwidth saturation is widespread. We
regenerate the curve from a generative model: each machine draws a base
utilization from the fleet mix, rides a diurnal swing, and suffers random
load bursts; the 99 %-ile of its day of samples lands on the CDF.

The survey is organized in fixed *blocks* of machines, each seeded from
``SeedSequence((survey.seed, block_index))``. Block boundaries do not move
with the worker count, so the survey produces bit-identical results whether
it runs serially or fanned out over a process pool (``jobs`` > 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel import run_points

#: Machines per independently seeded block (fixed: results must not depend
#: on the worker count).
FLEET_BLOCK_MACHINES = 256


@dataclass(frozen=True)
class FleetSurvey:
    """Parameters of the fleet generative model."""

    machines: int = 1000
    #: Samples per machine over the profiled day (one per ~86 s).
    samples_per_machine: int = 1000
    #: Beta-distribution shape of per-machine mean utilization.
    base_alpha: float = 2.0
    base_beta: float = 4.0
    #: Amplitude of the diurnal swing (fraction of peak).
    diurnal_amplitude: float = 0.10
    #: Probability a sample is a burst, and the burst magnitude scale.
    burst_probability: float = 0.02
    burst_scale: float = 0.18
    seed: int = 42

    def __post_init__(self) -> None:
        if self.machines <= 0 or self.samples_per_machine <= 0:
            raise ConfigurationError("machines and samples must be positive")

    def num_blocks(self) -> int:
        """How many fixed-size machine blocks the survey spans."""
        return -(-self.machines // FLEET_BLOCK_MACHINES)

    def machine_p99(self, jobs: int | None = None) -> np.ndarray:
        """Per-machine 99 %-ile utilization for the whole fleet, in [0, 1].

        ``jobs`` > 1 evaluates the seed-blocks on a process pool; the block
        seeding makes the result independent of the worker count.
        """
        points = [(self, block) for block in range(self.num_blocks())]
        parts = run_points(_block_p99, points, jobs=jobs, base_seed=self.seed)
        return np.concatenate(parts) if parts else np.empty(0)


def _block_p99(point: tuple[FleetSurvey, int]) -> np.ndarray:
    """The p99 vector of one machine block (runs inside pool workers)."""
    survey, block = point
    lo = block * FLEET_BLOCK_MACHINES
    count = min(FLEET_BLOCK_MACHINES, survey.machines - lo)
    rng = np.random.default_rng(np.random.SeedSequence((survey.seed, block)))
    base = rng.beta(survey.base_alpha, survey.base_beta, size=count)
    phase = rng.uniform(0, 2 * np.pi, size=count)
    t = np.linspace(0, 2 * np.pi, survey.samples_per_machine)
    # machines x samples utilization matrix
    diurnal = survey.diurnal_amplitude * np.sin(t[None, :] + phase[:, None])
    noise = rng.normal(0.0, 0.03, size=(count, survey.samples_per_machine))
    bursts = rng.random((count, survey.samples_per_machine))
    burst_term = np.where(
        bursts < survey.burst_probability,
        rng.exponential(
            survey.burst_scale, size=(count, survey.samples_per_machine)
        ),
        0.0,
    )
    usage = np.clip(base[:, None] + diurnal + noise + burst_term, 0.0, 1.0)
    return np.percentile(usage, 99, axis=1)


@dataclass(frozen=True)
class FleetCdf:
    """The Fig 2 curve: fraction of machines at or below each utilization."""

    utilization: np.ndarray
    fraction_of_machines: np.ndarray
    #: The paper's headline statistic: share of machines whose 99 %-ile
    #: bandwidth exceeds 70 % of peak.
    fraction_above_70pct: float = field(default=0.0)


def fleet_bandwidth_cdf(
    survey: FleetSurvey | None = None, jobs: int | None = None
) -> FleetCdf:
    """Regenerate the Fig 2 CDF from the fleet model."""
    survey = survey if survey is not None else FleetSurvey()
    p99 = np.sort(survey.machine_p99(jobs=jobs))
    fraction = np.arange(1, len(p99) + 1) / len(p99)
    above = float(np.mean(p99 > 0.70))
    return FleetCdf(
        utilization=p99, fraction_of_machines=fraction, fraction_above_70pct=above
    )
