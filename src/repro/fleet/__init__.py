"""Fleet orchestration: QoS-aware cluster scheduling over Kelp nodes.

The node-level Kelp stack (:mod:`repro.core`) isolates one server; this
package scales it out. A fleet run places many independently managed nodes
under one simulator clock, routes multi-tenant high-priority inference
traffic at admission time, bin-packs a best-effort batch tier around the
serving tier, and accounts the outcome in SLO terms.

Entry points: :func:`run_fleet` / :class:`FleetOrchestrator` for library
use, the ``fleet-sim`` experiment family for the CLI.
"""

from repro.fleet.batch import BatchJob, BatchQueue, BatchQueueStats
from repro.fleet.config import (
    BatchJobSpec,
    FleetConfig,
    ROUTING_NAMES,
    SATURATED_BW_FRACTION,
    TenantSpec,
    default_tenants,
    uniform_batch_jobs,
)
from repro.fleet.member import FleetMember, NodeSignals
from repro.fleet.orchestrator import (
    FleetOrchestrator,
    FleetResult,
    NodeStats,
    fleet_config_for_trace,
    run_fleet,
)
from repro.fleet.routing import (
    InterferenceAwareRouter,
    LeastLoadedRouter,
    RandomRouter,
    Router,
    make_router,
)
from repro.fleet.slo import (
    TenantAccount,
    TenantSlo,
    WindowAccount,
    fleet_efficiency,
)
from repro.fleet.survey import FleetCdf, FleetSurvey, fleet_bandwidth_cdf
from repro.fleet.validate import (
    FleetInterferenceProfile,
    TailAmplificationModel,
    empirical_probability_any_interfered,
    empirical_slowdown,
    interference_profile,
)

__all__ = [
    "BatchJob",
    "BatchJobSpec",
    "BatchQueue",
    "BatchQueueStats",
    "FleetCdf",
    "FleetConfig",
    "FleetInterferenceProfile",
    "FleetMember",
    "FleetSurvey",
    "FleetOrchestrator",
    "FleetResult",
    "InterferenceAwareRouter",
    "LeastLoadedRouter",
    "NodeSignals",
    "NodeStats",
    "ROUTING_NAMES",
    "RandomRouter",
    "Router",
    "SATURATED_BW_FRACTION",
    "TailAmplificationModel",
    "TenantAccount",
    "TenantSlo",
    "TenantSpec",
    "WindowAccount",
    "default_tenants",
    "empirical_probability_any_interfered",
    "empirical_slowdown",
    "fleet_bandwidth_cdf",
    "fleet_config_for_trace",
    "fleet_efficiency",
    "interference_profile",
    "make_router",
    "run_fleet",
    "uniform_batch_jobs",
]
