"""The cluster-level best-effort batch queue.

Batch CPU jobs are pure throughput work: the queue bin-packs them onto
nodes (fewest resident jobs first, interference pressure as tie-breaker)
and — when eviction is enabled — pulls them back off nodes whose socket
watermarks have tripped for ``patience`` consecutive control intervals.
Evicted jobs return to the queue and are backfilled elsewhere (or later on
the same node once it cools down), so no batch work is ever lost, it is
only delayed — exactly the contract of a best-effort tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.fleet.config import BatchJobSpec
from repro.fleet.member import FleetMember
from repro.workloads.cpu.base import BatchProfile
from repro.workloads.cpu.catalog import cpu_workload

#: Job states.
PENDING = "pending"
RUNNING = "running"


def _hot_now(member: FleetMember) -> bool:
    """True when the node's latest telemetry sample tripped the watermarks."""
    return member.last_signals is not None and member.last_signals.hot


@dataclass
class BatchJob:
    """One best-effort job's lifecycle inside the queue."""

    job_id: str
    spec: BatchJobSpec
    profile: BatchProfile
    state: str = PENDING
    #: Node currently hosting the job (None while pending).
    node_index: int | None = None
    #: How many times the job has been evicted so far.
    evictions: int = 0

    def nominal_rate(self) -> float:
        """Full-speed units/s of this job (the batch-yield denominator)."""
        return self.profile.unit_rate_per_thread * self.profile.phase.threads


@dataclass
class BatchQueueStats:
    """Counters the fleet result reports for the batch tier."""

    placements: int = 0
    evictions: int = 0
    pending_at_end: int = 0
    #: Jobs pulled back to the queue by a node death / quarantine (distinct
    #: from watermark evictions: the node was lost, not hot).
    requeues: int = 0


class BatchQueue:
    """Bin-packing queue with watermark-driven eviction and backfill."""

    def __init__(
        self,
        specs: Sequence[BatchJobSpec],
        max_jobs_per_node: int,
        eviction: bool,
        patience: int,
        warmup: float,
    ) -> None:
        self.jobs: list[BatchJob] = [
            BatchJob(
                job_id=f"job{i}",
                spec=spec,
                profile=cpu_workload(spec.workload, spec.intensity),
            )
            for i, spec in enumerate(specs)
        ]
        self._by_node: dict[int, list[BatchJob]] = {}
        self._pending: list[BatchJob] = list(self.jobs)
        self._max_per_node = max_jobs_per_node
        self._eviction = eviction
        self._patience = patience
        self._warmup = warmup
        self.stats = BatchQueueStats()

    # ----------------------------------------------------------------- tick
    def tick(self, members: Sequence[FleetMember]) -> None:
        """One control interval: evict from hot nodes, then place pending.

        Called after every member has refreshed its telemetry sample, so
        eviction decisions and placement scores act on this interval's
        signals.
        """
        if self._eviction:
            self._evict_hot(members)
        self._place_pending(members)
        self.stats.pending_at_end = len(self._pending)

    def _evict_hot(self, members: Sequence[FleetMember]) -> None:
        for member in members:
            jobs = self._by_node.get(member.index)
            if not jobs or member.hot_streak < self._patience:
                continue
            # Shed the most recently placed job first: it is the likeliest
            # cause of the regression and the cheapest to restart elsewhere.
            job = jobs.pop()
            member.remove_job(job.job_id)
            job.state = PENDING
            job.node_index = None
            job.evictions += 1
            self.stats.evictions += 1
            self._pending.append(job)
            # One job per node per interval: re-measure before shedding more.
            member.hot_streak = 0

    def _place_pending(self, members: Sequence[FleetMember]) -> None:
        still_pending: list[BatchJob] = []
        for job in self._pending:
            target = self._pick_node(members)
            if target is None:
                still_pending.append(job)
                continue
            target.place_job(job.job_id, job.profile, warmup=self._warmup)
            self._by_node.setdefault(target.index, []).append(job)
            job.state = RUNNING
            job.node_index = target.index
            self.stats.placements += 1
        self._pending = still_pending

    def _pick_node(self, members: Sequence[FleetMember]) -> FleetMember | None:
        """Coolest node with a free slot; None when the fleet is full/hot.

        With eviction enabled, a node whose *latest* telemetry sample shows
        tripped watermarks takes no new batch work — placing on the streak
        instead would let a just-evicted job bounce straight back onto the
        node that shed it (eviction resets the streak to re-arm patience).
        """
        candidates = [
            m
            for m in members
            if m.job_count < self._max_per_node
            and not (self._eviction and _hot_now(m))
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda m: (
                m.job_count,
                m.last_signals.pressure() if m.last_signals is not None else 0.0,
                m.index,
            ),
        )

    # ------------------------------------------------------------ lifecycle
    def requeue_node(self, member: FleetMember) -> int:
        """Pull every job off ``member`` and return it to the queue.

        The drain/quarantine path for a dead or misbehaving node: each
        job's tasks are stopped (idempotent if the node already crashed),
        its slot is released, and the job goes back to pending so the next
        tick re-places it on a healthy node. Returns the jobs requeued.
        """
        jobs = self._by_node.pop(member.index, [])
        for job in jobs:
            member.remove_job(job.job_id)
            job.state = PENDING
            job.node_index = None
            self.stats.requeues += 1
            self._pending.append(job)
        return len(jobs)

    def add_job(
        self, spec: BatchJobSpec, member: FleetMember | None = None
    ) -> BatchJob:
        """Admit one new job mid-run (a batch tenant arrival).

        With ``member`` the job is placed there immediately (the arrival
        was pinned); otherwise it joins the pending queue and the next
        tick bin-packs it normally.
        """
        job = BatchJob(
            job_id=f"job{len(self.jobs)}",
            spec=spec,
            profile=cpu_workload(spec.workload, spec.intensity),
        )
        self.jobs.append(job)
        if member is None:
            self._pending.append(job)
        else:
            member.place_job(job.job_id, job.profile, warmup=self._warmup)
            self._by_node.setdefault(member.index, []).append(job)
            job.state = RUNNING
            job.node_index = member.index
            self.stats.placements += 1
        return job

    # -------------------------------------------------------------- metrics
    @property
    def running(self) -> int:
        """Jobs currently resident on some node."""
        return sum(len(jobs) for jobs in self._by_node.values())

    @property
    def pending(self) -> int:
        """Jobs waiting in the queue."""
        return len(self._pending)

    def nominal_rate_total(self) -> float:
        """Aggregate full-speed units/s of every submitted job."""
        return sum(job.nominal_rate() for job in self.jobs)
