"""The fleet orchestrator: many Kelp nodes under one simulator clock.

One :class:`FleetOrchestrator` run assembles ``nodes`` independent machines
(each with its own isolation policy and inference server) inside a single
:class:`~repro.sim.Simulator`, drives multi-tenant open-loop arrivals
through the admission router, manages the best-effort batch queue on the
fleet control interval, and reports per-tenant SLO outcomes plus
fleet-level statistics.

Everything is deterministic in ``FleetConfig.seed``: tenant arrival
processes, the random router and per-node workload noise each draw from
dedicated ``SeedSequence`` streams, so the same config produces the same
summary bit-for-bit regardless of process parallelism around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.errors import ExperimentError
from repro.fleet.batch import BatchQueue
from repro.fleet.config import FleetConfig
from repro.fleet.member import FleetMember
from repro.fleet.routing import Router, make_router
from repro.fleet.slo import (
    TenantAccount,
    TenantSlo,
    finalize_tenant,
    fleet_efficiency,
)
from repro.metrics.percentile import StreamingPercentiles
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_OBSERVE
from repro.workloads.loadgen import OpenLoopGenerator
from repro.workloads.ml.catalog import ml_workload

#: Stream tags keeping the fleet's RNG consumers independent.
_STREAM_ROUTER = 0xF1EE
_STREAM_TENANT = 0xA171
_STREAM_NODE = 0x50DE


def _derive_seed(*parts: int) -> int:
    """A stable 32-bit seed from a tuple of integer parts."""
    return int(np.random.SeedSequence(parts).generate_state(1)[0])


@dataclass(frozen=True)
class NodeStats:
    """Per-node outcome of one fleet run (validation + diagnostics)."""

    index: int
    #: Post-warmup completions served by this node.
    completed: int
    #: Mean post-warmup request latency on this node (None if it served none).
    mean_latency_s: float | None
    #: Fraction of post-warmup control samples with the node saturated.
    saturated_fraction: float
    #: Batch jobs resident at the end of the run.
    batch_jobs: int


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet run measured."""

    config: FleetConfig
    tenants: tuple[TenantSlo, ...]
    #: Mean over post-warmup samples of (saturated nodes / nodes) — the
    #: cluster-scope Fig 2 statistic.
    fraction_saturated: float
    #: SLO-good completions / offered requests, all tenants pooled.
    serving_yield: float
    #: Delivered batch units / nominal full-speed units (1.0 = no batch tier
    #: slowdown and no queueing delay); 0.0 when no jobs were submitted.
    batch_yield: float
    #: Combined useful-work fraction (see :func:`repro.fleet.slo.fleet_efficiency`).
    efficiency: float
    offered_total: int
    completed_total: int
    good_total: int
    batch_placements: int
    batch_evictions: int
    batch_pending_at_end: int
    node_stats: tuple[NodeStats, ...]
    events_dispatched: int
    #: Control-interval telemetry rows (one per node per interval).
    telemetry: tuple[dict, ...] = ()
    #: Per-node controller tick rows (``{"node": i, **record.as_dict()}``),
    #: empty for unmanaged policies or when telemetry collection is off.
    controller: tuple[dict, ...] = ()
    #: Per-node actuation journal rows (``{"node": i, **record.as_dict()}``).
    actuation: tuple[dict, ...] = ()

    def summary(self) -> dict:
        """A JSON-clean summary — the artifact determinism tests compare."""
        return {
            "nodes": self.config.nodes,
            "policy": self.config.policy,
            "routing": self.config.routing,
            "ml": self.config.ml,
            "seed": self.config.seed,
            "duration": self.config.duration,
            "tenants": [t.as_dict() for t in self.tenants],
            "fraction_saturated": round(self.fraction_saturated, 9),
            "serving_yield": round(self.serving_yield, 9),
            "batch_yield": round(self.batch_yield, 9),
            "efficiency": round(self.efficiency, 9),
            "offered": self.offered_total,
            "completed": self.completed_total,
            "slo_good": self.good_total,
            "batch_placements": self.batch_placements,
            "batch_evictions": self.batch_evictions,
            "batch_pending_at_end": self.batch_pending_at_end,
        }


class FleetOrchestrator:
    """Builds and runs one fleet simulation from a :class:`FleetConfig`."""

    def __init__(self, config: FleetConfig, collect_telemetry: bool = True) -> None:
        self.config = config
        self._collect_telemetry = collect_telemetry
        #: Raises WorkloadError for non-inference workloads up front.
        self._factory = ml_workload(config.ml)
        self._capacity = self._factory.standalone_capacity()
        self.members: list[FleetMember] = []
        self.router: Router | None = None
        self._accounts = [TenantAccount(spec=t) for t in config.tenants]
        self._node_completed: list[int] = []
        self._node_latency: list[StreamingPercentiles] = []
        self._node_saturated: list[int] = []
        self._saturation_samples: list[float] = []
        self._post_warmup_samples = 0
        self._telemetry: list[dict] = []

    # ------------------------------------------------------------------ run
    def run(self) -> FleetResult:
        """Execute the configured fleet run and return its measurements."""
        config = self.config
        sim = Simulator()
        self.members = [
            FleetMember(
                index=i,
                sim=sim,
                factory=self._factory,
                policy_name=config.policy,
                interval=config.interval,
                warmup=config.warmup,
                seed=_derive_seed(config.seed, _STREAM_NODE, i),
                on_complete=self._on_complete,
                sensors=config.sensors,
                faults=config.faults,
            )
            for i in range(config.nodes)
        ]
        self._node_completed = [0] * config.nodes
        self._node_latency = [StreamingPercentiles() for _ in range(config.nodes)]
        self._node_saturated = [0] * config.nodes

        self.router = make_router(
            config.routing,
            rng=np.random.default_rng(
                np.random.SeedSequence((config.seed, _STREAM_ROUTER))
            ),
        )
        generators = [
            OpenLoopGenerator(
                sim=sim,
                rate_qps=tenant.load_fraction * self._capacity * config.nodes,
                submit=partial(self._admit, index),
                rng=np.random.default_rng(
                    np.random.SeedSequence((config.seed, _STREAM_TENANT, index))
                ),
                deterministic=tenant.deterministic,
            )
            for index, tenant in enumerate(config.tenants)
        ]
        queue = BatchQueue(
            config.batch_jobs,
            max_jobs_per_node=config.max_jobs_per_node,
            eviction=config.batch_eviction,
            patience=config.eviction_patience,
            warmup=config.warmup,
        )

        for member in self.members:
            member.start()
        # t=0 batch placement: telemetry is empty, so the queue bin-packs on
        # slot counts alone; later ticks re-balance on live signals.
        queue.tick(self.members)
        for generator in generators:
            generator.start()
        sim.every(
            config.interval,
            partial(self._control_tick, queue),
            label="fleet:control",
            priority=PRIORITY_OBSERVE,
        )

        sim.run_until(config.duration)

        for generator in generators:
            generator.stop()
        events = sim.dispatched_events
        batch_units, batch_nominal = self._batch_units(queue)
        result = self._finalize(queue, events, batch_units, batch_nominal)
        for member in self.members:
            member.stop()
        return result

    # ------------------------------------------------------------ admission
    def _admit(self, tenant: int) -> None:
        assert self.router is not None
        member = self.router.choose(self.members)
        if member.sim.now >= self.config.warmup:
            self._accounts[tenant].offered += 1
        member.submit(tenant)

    def _on_complete(
        self, member: FleetMember, tenant: int, start: float, end: float
    ) -> None:
        if start < self.config.warmup:
            return
        latency = end - start
        self._accounts[tenant].record(latency)
        self._node_completed[member.index] += 1
        self._node_latency[member.index].add(latency)

    # --------------------------------------------------------- control loop
    def _control_tick(self, queue: BatchQueue) -> None:
        now = None
        post_warmup = False
        saturated = 0
        for member in self.members:
            signals = member.sample()
            now = signals.time
            post_warmup = signals.time > self.config.warmup
            if post_warmup:
                if signals.saturated:
                    saturated += 1
                    self._node_saturated[member.index] += 1
            if self._collect_telemetry:
                self._telemetry.append(
                    {
                        "time": signals.time,
                        "node": signals.node_index,
                        "socket_bw_gbps": signals.socket_bw_gbps,
                        "latency_factor": signals.latency_factor,
                        "saturation": signals.saturation,
                        "hipri_bw_gbps": signals.hipri_bw_gbps,
                        "inflight": signals.inflight,
                        "queued": signals.queued,
                        "batch_jobs": signals.batch_jobs,
                        "saturated": signals.saturated,
                        "hot": signals.hot,
                    }
                )
        if post_warmup and now is not None:
            self._saturation_samples.append(saturated / len(self.members))
            self._post_warmup_samples += 1
        queue.tick(self.members)

    # ------------------------------------------------------------- finalize
    def _batch_units(self, queue: BatchQueue) -> tuple[float, float]:
        window = self.config.duration - self.config.warmup
        delivered = sum(
            member.batch_throughput(self.config.duration) for member in self.members
        ) * window
        nominal = queue.nominal_rate_total() * window
        return delivered, nominal

    def _finalize(
        self,
        queue: BatchQueue,
        events: int,
        batch_units: float,
        batch_nominal: float,
    ) -> FleetResult:
        config = self.config
        window = config.duration - config.warmup
        if window <= 0:  # pragma: no cover - guarded by FleetConfig
            raise ExperimentError("fleet window must be positive")
        tenants = tuple(
            finalize_tenant(account, window) for account in self._accounts
        )
        offered = sum(a.offered for a in self._accounts)
        completed = sum(a.completed for a in self._accounts)
        good = sum(a.good for a in self._accounts)
        serving_yield = good / offered if offered else 0.0
        batch_yield = batch_units / batch_nominal if batch_nominal > 0 else 0.0
        samples = self._saturation_samples
        node_stats = tuple(
            NodeStats(
                index=i,
                completed=self._node_completed[i],
                mean_latency_s=(
                    self._node_latency[i].mean()
                    if self._node_latency[i].count
                    else None
                ),
                saturated_fraction=(
                    self._node_saturated[i] / self._post_warmup_samples
                    if self._post_warmup_samples
                    else 0.0
                ),
                batch_jobs=self.members[i].job_count,
            )
            for i in range(config.nodes)
        )
        return FleetResult(
            config=config,
            tenants=tenants,
            fraction_saturated=sum(samples) / len(samples) if samples else 0.0,
            serving_yield=serving_yield,
            batch_yield=batch_yield,
            efficiency=fleet_efficiency(good, offered, batch_units, batch_nominal),
            offered_total=offered,
            completed_total=completed,
            good_total=good,
            batch_placements=queue.stats.placements,
            batch_evictions=queue.stats.evictions,
            batch_pending_at_end=queue.stats.pending_at_end,
            node_stats=node_stats,
            events_dispatched=events,
            telemetry=tuple(self._telemetry),
            controller=self._controller_rows(),
            actuation=self._actuation_rows(),
        )

    def _controller_rows(self) -> tuple[dict, ...]:
        """Every member's unified control tick records, node-tagged."""
        if not self._collect_telemetry:
            return ()
        return tuple(
            {"node": member.index, **record.as_dict()}
            for member in self.members
            for record in member.controller_history()
        )

    def _actuation_rows(self) -> tuple[dict, ...]:
        """Every physical knob write performed fleet-wide, node-tagged."""
        if not self._collect_telemetry:
            return ()
        return tuple(
            {"node": member.index, **record.as_dict()}
            for member in self.members
            for record in member.actuation_journal()
        )


def run_fleet(config: FleetConfig, collect_telemetry: bool = True) -> FleetResult:
    """Convenience wrapper: build and run one fleet simulation."""
    return FleetOrchestrator(config, collect_telemetry=collect_telemetry).run()
