"""The fleet orchestrator: many Kelp nodes under one simulator clock.

One :class:`FleetOrchestrator` run assembles ``nodes`` independent machines
(each with its own isolation policy and inference server) inside a single
:class:`~repro.sim.Simulator`, drives multi-tenant open-loop arrivals
through the admission router, manages the best-effort batch queue on the
fleet control interval, and reports per-tenant SLO outcomes plus
fleet-level statistics.

Everything is deterministic in ``FleetConfig.seed``: tenant arrival
processes, the random router and per-node workload noise each draw from
dedicated ``SeedSequence`` streams, so the same config produces the same
summary bit-for-bit regardless of process parallelism around it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.fleet.batch import BatchQueue
from repro.fleet.config import FleetConfig, TenantSpec
from repro.fleet.index import make_routing_index
from repro.fleet.member import FleetMember, NodeSignals
from repro.fleet.routing import Router, make_router
from repro.fleet.slo import (
    TenantAccount,
    TenantSlo,
    WindowAccount,
    bucket_window_completions,
    finalize_tenant,
    fleet_efficiency,
)
from repro.metrics.percentile import StreamingPercentiles
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_OBSERVE
from repro.workloads.loadgen import OpenLoopGenerator, TraceReplayGenerator
from repro.workloads.ml.catalog import ml_workload

if TYPE_CHECKING:
    from repro.traces.schema import Trace

#: Stream tags keeping the fleet's RNG consumers independent.
_STREAM_ROUTER = 0xF1EE
_STREAM_TENANT = 0xA171
_STREAM_NODE = 0x50DE


def _derive_seed(*parts: int) -> int:
    """A stable 32-bit seed from a tuple of integer parts."""
    return int(np.random.SeedSequence(parts).generate_state(1)[0])


@dataclass(frozen=True)
class NodeStats:
    """Per-node outcome of one fleet run (validation + diagnostics)."""

    index: int
    #: Post-warmup completions served by this node.
    completed: int
    #: Mean post-warmup request latency on this node (None if it served none).
    mean_latency_s: float | None
    #: Fraction of post-warmup control samples with the node saturated.
    saturated_fraction: float
    #: Batch jobs resident at the end of the run.
    batch_jobs: int


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet run measured."""

    config: FleetConfig
    tenants: tuple[TenantSlo, ...]
    #: Mean over post-warmup samples of (saturated nodes / nodes) — the
    #: cluster-scope Fig 2 statistic.
    fraction_saturated: float
    #: SLO-good completions / offered requests, all tenants pooled.
    serving_yield: float
    #: Delivered batch units / nominal full-speed units (1.0 = no batch tier
    #: slowdown and no queueing delay); 0.0 when no jobs were submitted.
    batch_yield: float
    #: Combined useful-work fraction (see :func:`repro.fleet.slo.fleet_efficiency`).
    efficiency: float
    offered_total: int
    completed_total: int
    good_total: int
    batch_placements: int
    batch_evictions: int
    batch_pending_at_end: int
    node_stats: tuple[NodeStats, ...]
    events_dispatched: int
    #: Requests dropped at admission or by a node death (each one is an
    #: offered request that never completed, i.e. an SLO miss). Zero for
    #: any run without member failures.
    requests_dropped: int = 0
    #: Batch jobs pulled back to the queue by death/quarantine drains.
    batch_requeues: int = 0
    #: Control-interval telemetry rows (one per node per interval).
    telemetry: tuple[dict, ...] = ()
    #: Per-node controller tick rows (``{"node": i, **record.as_dict()}``),
    #: empty for unmanaged policies or when telemetry collection is off.
    controller: tuple[dict, ...] = ()
    #: Per-node actuation journal rows (``{"node": i, **record.as_dict()}``).
    actuation: tuple[dict, ...] = ()
    #: Per-(window, tenant) SLO rows, empty unless ``config.window_s`` is set.
    windows: tuple[dict, ...] = ()
    #: Per-window fleet rows (pooled yield + saturation), ditto.
    window_fleet: tuple[dict, ...] = ()

    def summary(self) -> dict:
        """A JSON-clean summary — the artifact determinism tests compare."""
        data = {
            "nodes": self.config.nodes,
            "policy": self.config.policy,
            "routing": self.config.routing,
            "ml": self.config.ml,
            "seed": self.config.seed,
            "duration": self.config.duration,
            "tenants": [t.as_dict() for t in self.tenants],
            "fraction_saturated": round(self.fraction_saturated, 9),
            "serving_yield": round(self.serving_yield, 9),
            "batch_yield": round(self.batch_yield, 9),
            "efficiency": round(self.efficiency, 9),
            "offered": self.offered_total,
            "completed": self.completed_total,
            "slo_good": self.good_total,
            "batch_placements": self.batch_placements,
            "batch_evictions": self.batch_evictions,
            "batch_pending_at_end": self.batch_pending_at_end,
        }
        # Windowed rows appear only for trace/windowed runs, and the
        # failure counters only for runs that actually saw failures, so
        # summaries of the pre-existing fleet experiments stay bit-identical.
        if self.windows:
            data["windows"] = list(self.windows)
        if self.window_fleet:
            data["window_fleet"] = list(self.window_fleet)
        if self.requests_dropped:
            data["requests_dropped"] = self.requests_dropped
        if self.batch_requeues:
            data["batch_requeues"] = self.batch_requeues
        return data


class FleetOrchestrator:
    """Builds and runs one fleet simulation from a :class:`FleetConfig`."""

    def __init__(
        self,
        config: FleetConfig,
        collect_telemetry: bool = True,
        trace: "Trace | None" = None,
        hooks: "FleetHooks | None" = None,
    ) -> None:
        self.config = config
        self._collect_telemetry = collect_telemetry
        self._trace = trace
        self.hooks = hooks
        self._trace_demands: np.ndarray | None = None
        if trace is not None:
            if len(config.tenants) != len(trace.tenants):
                raise ConfigurationError(
                    f"config declares {len(config.tenants)} tenants but the "
                    f"trace has {len(trace.tenants)}; build the config with "
                    "fleet_config_for_trace()"
                )
            self._trace_demands = trace.demands
        #: Raises WorkloadError for non-inference workloads up front.
        self._factory = ml_workload(config.ml)
        self._capacity = self._factory.standalone_capacity()
        self.members: list[FleetMember] = []
        self.router: Router | None = None
        self._accounts = [TenantAccount(spec=t) for t in config.tenants]
        self._node_completed: list[int] = []
        self._node_latency: list[StreamingPercentiles] = []
        self._node_saturated: list[int] = []
        self._saturation_samples: list[float] = []
        self._post_warmup_samples = 0
        #: Lazy telemetry: raw per-tick NodeSignals, frozen to JSON-clean
        #: dict rows only at finalize (at 256 nodes over a day this is
        #: millions of rows — building the dicts per tick was the hidden
        #: cost of every replay, hooks or not).
        self._telemetry_signals: list[NodeSignals] = []
        #: (window index, tenant index) -> admission-bucketed SLO counters.
        self._windows: dict[tuple[int, int], WindowAccount] = {}
        #: Deferred completion-side window bucketing: parallel buffers of
        #: (admission time, tenant, latency), vectorized at finalize.
        self._completion_starts: list[float] = []
        self._completion_tenants: list[int] = []
        self._completion_latencies: list[float] = []
        #: Trace mode only: counted arrival timestamps (sorted) for O(log n)
        #: live offered counters; per-tenant/per-window offered totals are
        #: a pure function of the trace, precomputed in :meth:`run`.
        self._counted_arrivals: np.ndarray | None = None
        self._offered_by_tenant: np.ndarray | None = None
        self._offered_by_window: dict[tuple[int, int], int] | None = None
        #: The exact router instance the incremental index was built for;
        #: admission falls back to the reference scan whenever
        #: ``self.router`` is anything else (e.g. an incident wrapper).
        self._indexed_router: Router | None = None
        self._routing_index = None
        #: Wall-clock phase breakdown of the last :meth:`run` (bench probes
        #: read this; it never enters results or summaries).
        self.phase_walls: dict[str, float] = {}
        #: window index -> [saturated samples, total samples] from ticks.
        self._window_saturation: dict[int, list[int]] = {}
        self._sim: Simulator | None = None
        self._queue: BatchQueue | None = None
        #: Offered-but-lost requests (dead members, empty rotation).
        self.requests_dropped = 0
        #: Live generators between :meth:`setup` and :meth:`finish`.
        self._generators: list = []
        #: Tenant indices currently refused service (requests stay offered
        #: but are black-holed — an SLO miss). Managed by the serving
        #: control plane; empty for plain batch runs.
        self.evicted_tenants: set[int] = set()
        #: Member indices scaled back out of the fleet by the control
        #: plane. Retired members stay in :attr:`members` so per-node
        #: accounting stays index-aligned, but are skipped by the control
        #: tick. Empty for plain batch runs.
        self._retired: set[int] = set()

    # ------------------------------------------------------------------ run
    def run(self) -> FleetResult:
        """Execute the configured fleet run and return its measurements."""
        self.setup()
        assert self._sim is not None
        replay_start = time.perf_counter()
        self._sim.run_until(self.config.duration)
        self.phase_walls["replay_s"] = time.perf_counter() - replay_start
        return self.finish()

    def setup(self) -> None:
        """Assemble the fleet and start every process at t=0.

        After ``setup`` the run is live: :meth:`advance` steps the clock
        (any number of times — epoch stepping is bit-identical to one
        :meth:`~repro.sim.Simulator.run_until` call) and :meth:`finish`
        closes the books. :meth:`run` is exactly
        ``setup(); advance(duration); finish()``.
        """
        config = self.config
        sim = Simulator()
        self._sim = sim
        self.members = [
            FleetMember(
                index=i,
                sim=sim,
                factory=self._factory,
                policy_name=config.policy,
                interval=config.interval,
                warmup=config.warmup,
                seed=_derive_seed(config.seed, _STREAM_NODE, i),
                on_complete=self._on_complete,
                sensors=config.sensors,
                faults=config.faults,
            )
            for i in range(config.nodes)
        ]
        self._node_completed = [0] * config.nodes
        self._node_latency = [StreamingPercentiles() for _ in range(config.nodes)]
        self._node_saturated = [0] * config.nodes

        self.router = make_router(
            config.routing,
            rng=np.random.default_rng(
                np.random.SeedSequence((config.seed, _STREAM_ROUTER))
            ),
        )
        self._rebuild_routing_index()
        if self._trace is not None:
            self._precompute_trace_offered()
        if self._trace is not None:
            # Trace-driven: one replay generator replaces the per-tenant
            # open-loop processes; tenant/demand come from the trace columns.
            generators: list = [
                TraceReplayGenerator(
                    sim=sim,
                    arrivals_s=self._trace.arrivals_s,
                    submit=self._admit_trace,
                )
            ]
        else:
            generators = [
                OpenLoopGenerator(
                    sim=sim,
                    rate_qps=tenant.load_fraction * self._capacity * config.nodes,
                    submit=partial(self._admit, index),
                    rng=np.random.default_rng(
                        np.random.SeedSequence((config.seed, _STREAM_TENANT, index))
                    ),
                    deterministic=tenant.deterministic,
                )
                for index, tenant in enumerate(config.tenants)
            ]
        self._generators = generators
        queue = BatchQueue(
            config.batch_jobs,
            max_jobs_per_node=config.max_jobs_per_node,
            eviction=config.batch_eviction,
            patience=config.eviction_patience,
            warmup=config.warmup,
        )
        self._queue = queue

        for member in self.members:
            member.start()
        # t=0 batch placement: telemetry is empty, so the queue bin-packs on
        # slot counts alone; later ticks re-balance on live signals.
        queue.tick(self.members)
        for generator in generators:
            generator.start()
        if self.hooks is not None:
            self.hooks.on_start(self, sim)
        sim.every(
            config.interval,
            partial(self._control_tick, queue),
            label="fleet:control",
            priority=PRIORITY_OBSERVE,
        )

    def advance(self, until: float) -> None:
        """Run the live fleet's clock forward to ``until`` (absolute)."""
        assert self._sim is not None, "setup() first"
        self._sim.run_until(until)

    def finish(self) -> FleetResult:
        """Stop the processes and aggregate the result."""
        assert self._sim is not None and self._queue is not None
        queue = self._queue
        for generator in self._generators:
            generator.stop()
        events = self._sim.dispatched_events
        accounting_start = time.perf_counter()
        batch_units, batch_nominal = self._batch_units(queue)
        result = self._finalize(queue, events, batch_units, batch_nominal)
        self.phase_walls["accounting_s"] = (
            time.perf_counter() - accounting_start
        )
        for member in self.members:
            member.stop()
        return result

    def _precompute_trace_offered(self) -> None:
        """Freeze trace-mode offered accounting ahead of the replay.

        In trace mode the offered side of the SLO accounting is a pure
        function of the trace and the config — every arrival increments its
        tenant (and window bucket) no matter how it routes or whether it is
        dropped. Precomputing it here removes all per-arrival accounting
        from the replay hot loop; live ``counters()`` reads become a binary
        search over the counted arrival times.

        Bit-identity: the replay generator chains relative ``after()``
        events, so an arrival's simulated firing time is the float chain
        ``e_i = e_{i-1} + max(0, a_i - e_{i-1})`` — not necessarily the raw
        trace timestamp to the last ulp. The admission path keys ``counted``
        and the window bucket off that firing time, so the precomputation
        replays the exact chain (one pass of Python float arithmetic) rather
        than using ``arrivals_s`` directly.
        """
        assert self._trace is not None
        config = self.config
        warmup = config.warmup
        duration = config.duration
        window_s = config.window_s
        tenant_ids = self._trace.tenant_ids
        counted_times: list[float] = []
        counted_tenants: list[int] = []
        prev = 0.0
        for a, tenant in zip(
            self._trace.arrivals_s.tolist(), tenant_ids.tolist()
        ):
            delay = a - prev
            if delay > 0.0:
                prev = prev + delay
            if prev > duration:
                break  # chained events beyond the horizon never fire
            if prev >= warmup:
                counted_times.append(prev)
                counted_tenants.append(tenant)
        self._counted_arrivals = np.asarray(counted_times, dtype=np.float64)
        self._offered_by_tenant = np.bincount(
            np.asarray(counted_tenants, dtype=np.int64),
            minlength=len(config.tenants),
        )
        if window_s is not None:
            offered_by_window: dict[tuple[int, int], int] = {}
            for fire_time, tenant in zip(counted_times, counted_tenants):
                key = (int(fire_time // window_s), tenant)
                offered_by_window[key] = offered_by_window.get(key, 0) + 1
            self._offered_by_window = offered_by_window

    # ------------------------------------------------------------ admission
    def _admit(self, tenant: int) -> None:
        self._route_and_submit(tenant, demand=1.0)

    def _admit_trace(self, index: int) -> None:
        assert self._trace is not None and self._trace_demands is not None
        self._route_and_submit(
            int(self._trace.tenant_ids[index]),
            demand=float(self._trace_demands[index]),
        )

    def _route_and_submit(self, tenant: int, demand: float) -> None:
        """Route one request and decide its admission epoch — once.

        ``counted`` (admitted inside the measurement window) is decided here
        and travels with the request, so completion-side accounting can
        never disagree with admission-side accounting and attainment stays
        ≤ 1.0 by construction.

        Routing only considers members still in rotation; a request that
        finds no eligible member (or that the router null-routes) is
        dropped *after* its admission accounting — an offered request that
        never completes, i.e. an SLO miss.
        """
        assert self.router is not None and self._sim is not None
        if (
            self._routing_index is not None
            and self.router is self._indexed_router
        ):
            # Incremental index: choice-identical to the scan below (see
            # repro.fleet.index). Any router swap — e.g. the incident
            # engine's null-route wrapper — drops to the reference path.
            member = self._routing_index.choose()
        else:
            eligible = [m for m in self.members if m.in_rotation]
            member = self.router.choose(eligible) if eligible else None
        now = self._sim.now
        counted = now >= self.config.warmup
        if counted and self._counted_arrivals is None:
            # Live offered accounting; trace replays precompute it (the
            # offered side is a pure function of the trace), so the hot
            # loop skips it entirely there.
            self._accounts[tenant].offered += 1
            if self.config.window_s is not None:
                key = (int(now // self.config.window_s), tenant)
                account = self._windows.get(key)
                if account is None:
                    account = self._windows[key] = WindowAccount()
                account.offered += 1
        if tenant in self.evicted_tenants:
            # Evicted *after* the offered accounting: the traffic keeps
            # arriving (trace-mode offered totals are precomputed from the
            # trace and must not shift), the fleet just refuses to serve it.
            self.requests_dropped += 1
            return
        if member is None or not member.alive:
            # Null-routed, no eligible member, or a silently dead member:
            # the request is black-holed.
            self.requests_dropped += 1
            return
        member.submit(tenant, demand=demand, counted=counted)

    def _on_complete(
        self,
        member: FleetMember,
        tenant: int,
        counted: bool,
        start: float,
        end: float,
    ) -> None:
        if not counted:
            return
        latency = end - start
        self._accounts[tenant].record(latency)
        self._node_completed[member.index] += 1
        self._node_latency[member.index].add(latency)
        if self.config.window_s is not None:
            # ``start`` is the admission timestamp, so finalize buckets this
            # completion into the window _route_and_submit offered it to.
            # Three parallel appends beat a dict lookup + method call here;
            # bucket_window_completions replays them in this exact order.
            self._completion_starts.append(start)
            self._completion_tenants.append(tenant)
            self._completion_latencies.append(latency)

    # --------------------------------------------------------- control loop
    def _control_tick(self, queue: BatchQueue) -> None:
        assert self._sim is not None
        # The wall clock, not a member's sample time: a dead or blacked-out
        # member exports a frozen (stale) snapshot.
        now = self._sim.now
        post_warmup = now > self.config.warmup
        saturated = 0
        members = self.members
        if self._retired:
            # Scaled-out members are invisible to fleet-level accounting;
            # the filter is built only when the control plane retired
            # someone, so plain runs take the untouched fast path.
            members = [m for m in members if m.index not in self._retired]
        for member in members:
            signals = member.sample()
            if post_warmup:
                if signals.saturated:
                    saturated += 1
                    self._node_saturated[member.index] += 1
            if self._collect_telemetry:
                # Store the frozen signals object; the JSON-clean dict row
                # is built once at finalize (see _telemetry_rows).
                self._telemetry_signals.append(signals)
        if post_warmup:
            self._saturation_samples.append(saturated / len(members))
            self._post_warmup_samples += 1
            if self.config.window_s is not None:
                # The tick at exactly t=duration belongs to the last window:
                # windows are [k*w, (k+1)*w) with duration as the closing
                # boundary, not the start of an empty extra window.
                last = max(
                    0,
                    math.ceil(self.config.duration / self.config.window_s) - 1,
                )
                bucket = self._window_saturation.setdefault(
                    min(int(now // self.config.window_s), last), [0, 0]
                )
                bucket[0] += saturated
                bucket[1] += len(members)
        if self.hooks is not None:
            # Detection/remediation runs on this tick's fresh samples,
            # *before* the batch queue acts — a drain this tick re-places
            # its jobs this same tick.
            self.hooks.on_tick(self, now)
        # Dead members are excluded too: placement is a synchronous RPC
        # that fails fast against a crashed node (unlike the datapath,
        # which black-holes silently).
        queue.tick([m for m in members if m.alive and m.accepts_batch])

    # ----------------------------------------------------------- lifecycle
    def kill_member(self, index: int, requeue: bool = True) -> int:
        """Take a member down *cleanly*: fail it, pull it from rotation,
        and (by default) requeue its batch work on healthy nodes.

        This is the orchestrator-aware death path — the routing table is
        updated immediately, so only the requests already on the node are
        lost (each counted one is an SLO miss). Contrast with calling
        ``member.fail()`` directly, which models a *silent* crash the
        routing layer keeps black-holing traffic into until someone
        notices. Returns the number of counted in-flight requests dropped.
        """
        member = self.members[index]
        dropped = member.fail()
        self.requests_dropped += dropped
        member.in_rotation = False
        member.accepts_batch = False
        if requeue and self._queue is not None:
            self._queue.requeue_node(member)
        return dropped

    def quarantine_member(self, index: int, requeue: bool = True) -> int:
        """Stop routing traffic and batch work to a member (it may still
        be running — quarantine is reversible). Returns jobs requeued."""
        member = self.members[index]
        member.in_rotation = False
        member.accepts_batch = False
        if requeue and self._queue is not None:
            return self._queue.requeue_node(member)
        return 0

    def restore_member(self, index: int) -> None:
        """Return a (restarted or recovered) member to full rotation."""
        member = self.members[index]
        member.in_rotation = True
        member.accepts_batch = True

    # -------------------------------------------------- live membership
    @property
    def active_members(self) -> int:
        """Members currently in the fleet (built minus retired)."""
        return len(self.members) - len(self._retired)

    def add_member(self) -> int:
        """Grow the live fleet by one node; returns its index.

        If a previously retired member exists it is recommissioned (its
        instance, seed stream, and accounting slots are reused — scale
        up/down cycles don't leak nodes). Otherwise a fresh member is built
        with the same seed derivation a ``config.nodes = n+1`` run would
        give node ``n``, started, and indexed for routing.
        """
        assert self._sim is not None, "setup() first"
        if self._retired:
            index = min(self._retired)
            self._retired.discard(index)
            self.restore_member(index)
            self._rebuild_routing_index()
            return index
        index = len(self.members)
        member = FleetMember(
            index=index,
            sim=self._sim,
            factory=self._factory,
            policy_name=self.config.policy,
            interval=self.config.interval,
            warmup=self.config.warmup,
            seed=_derive_seed(self.config.seed, _STREAM_NODE, index),
            on_complete=self._on_complete,
            sensors=self.config.sensors,
            faults=self.config.faults,
        )
        self.members.append(member)
        self._node_completed.append(0)
        self._node_latency.append(StreamingPercentiles())
        self._node_saturated.append(0)
        member.start()
        self._rebuild_routing_index()
        return index

    def retire_member(self, index: int) -> int:
        """Scale one member out of the live fleet; returns jobs requeued.

        The node leaves rotation, its batch work is requeued, and the
        control tick stops sampling it — but the instance stays in
        :attr:`members` (accounting arrays are index-aligned) and can be
        recommissioned by :meth:`add_member`. In-flight requests it holds
        still complete: retirement is a drain, not a kill.
        """
        if index in self._retired:
            return 0
        requeued = self.quarantine_member(index)
        self._retired.add(index)
        self._rebuild_routing_index()
        return requeued

    def swap_router(self, routing: str, *, seed: int) -> None:
        """Replace the admission routing policy on the live fleet.

        The new router draws from a fresh ``(config.seed, router stream,
        seed)`` RNG — deterministic in the swap's position, independent of
        how much the old router consumed.
        """
        self.router = make_router(
            routing,
            rng=np.random.default_rng(
                np.random.SeedSequence(
                    (self.config.seed, _STREAM_ROUTER, seed)
                )
            ),
        )
        self._rebuild_routing_index()

    # ------------------------------------------------------ checkpointing
    def __getstate__(self) -> dict:
        """Pickle the live run *without* the trace-derived arrays.

        The trace columns and every precomputed view of them (demands,
        counted arrivals, offered totals) are pure functions of the trace
        and the config — a restore recomputes them bit-identically from the
        same trace via :meth:`reattach_trace`, keeping checkpoints at
        simulator-state size rather than trace size.
        """
        state = self.__dict__.copy()
        if self._trace is not None:
            state["_trace"] = None
            state["_trace_demands"] = None
            state["_counted_arrivals"] = None
            state["_offered_by_tenant"] = None
            state["_offered_by_window"] = None
        return state

    def reattach_trace(self, trace: "Trace") -> None:
        """Re-bind the trace after a checkpoint restore.

        Recomputes the precomputed offered accounting (the exact float
        chain of :meth:`_precompute_trace_offered`) and re-attaches the
        arrival schedule to the live replay generator.
        """
        if self._trace is not None:
            raise ConfigurationError("trace already attached")
        if len(self.config.tenants) != len(trace.tenants):
            raise ConfigurationError(
                "restored config and reattached trace disagree on tenants"
            )
        self._trace = trace
        self._trace_demands = trace.demands
        self._precompute_trace_offered()
        for generator in self._generators:
            if isinstance(generator, TraceReplayGenerator):
                generator.reattach_arrivals(trace.arrivals_s)

    def _rebuild_routing_index(self) -> None:
        """(Re)build the incremental routing index for the current fleet.

        Membership and router swaps invalidate the index wholesale (its
        version vector is sized at construction), so any structural change
        rebuilds from live state and re-hooks every member's state-change
        notifier. Members out of rotation push their state as usual; the
        index skips them at choose time.
        """
        self._routing_index = make_routing_index(self.router, self.members)
        if self._routing_index is not None:
            self._indexed_router = self.router
            for member in self.members:
                member.on_state_change = self._routing_index.on_member_event
        else:
            self._indexed_router = None
            for member in self.members:
                member.on_state_change = None

    def counters(self) -> tuple[int, int, int, tuple[int, ...]]:
        """Live ``(offered, completed, good, per-node completed)`` counted
        totals — the attainment stream the incident detectors watch."""
        if self._counted_arrivals is not None:
            # Trace mode defers per-arrival accounting; the live offered
            # count is a binary search over the precomputed counted arrival
            # times. Callers run at observe priority, after every arrival
            # at the current timestamp has fired, so "<= now" is exact.
            assert self._sim is not None
            offered = int(
                np.searchsorted(
                    self._counted_arrivals, self._sim.now, side="right"
                )
            )
        else:
            offered = sum(a.offered for a in self._accounts)
        completed = sum(a.completed for a in self._accounts)
        good = sum(a.good for a in self._accounts)
        return offered, completed, good, tuple(self._node_completed)

    @property
    def queue(self) -> BatchQueue | None:
        """The live batch queue (None outside :meth:`run`)."""
        return self._queue

    # ------------------------------------------------------------- finalize
    def _batch_units(self, queue: BatchQueue) -> tuple[float, float]:
        window = self.config.duration - self.config.warmup
        delivered = sum(
            member.batch_throughput(self.config.duration) for member in self.members
        ) * window
        nominal = queue.nominal_rate_total() * window
        return delivered, nominal

    def _finalize(
        self,
        queue: BatchQueue,
        events: int,
        batch_units: float,
        batch_nominal: float,
    ) -> FleetResult:
        config = self.config
        window = config.duration - config.warmup
        if window <= 0:  # pragma: no cover - guarded by FleetConfig
            raise ExperimentError("fleet window must be positive")
        if self._offered_by_tenant is not None:
            # Trace mode: install the precomputed offered totals the replay
            # loop skipped. Offered windows must exist before the deferred
            # completions are bucketed (completions only land in windows the
            # offered side created — same guard as the live path).
            for index, account in enumerate(self._accounts):
                account.offered = int(self._offered_by_tenant[index])
            if self._offered_by_window is not None:
                for key, count in self._offered_by_window.items():
                    self._windows[key] = WindowAccount(offered=count)
        if config.window_s is not None and self._completion_starts:
            bucket_window_completions(
                self._windows,
                self._completion_starts,
                self._completion_tenants,
                self._completion_latencies,
                config.window_s,
                [t.slo_p99_s for t in config.tenants],
            )
        tenants = tuple(
            finalize_tenant(account, window) for account in self._accounts
        )
        offered = sum(a.offered for a in self._accounts)
        completed = sum(a.completed for a in self._accounts)
        good = sum(a.good for a in self._accounts)
        serving_yield = good / offered if offered else 0.0
        batch_yield = batch_units / batch_nominal if batch_nominal > 0 else 0.0
        samples = self._saturation_samples
        node_stats = tuple(
            NodeStats(
                index=i,
                completed=self._node_completed[i],
                mean_latency_s=(
                    self._node_latency[i].mean()
                    if self._node_latency[i].count
                    else None
                ),
                saturated_fraction=(
                    self._node_saturated[i] / self._post_warmup_samples
                    if self._post_warmup_samples
                    else 0.0
                ),
                batch_jobs=self.members[i].job_count,
            )
            # Over the *actual* membership: the control plane may have grown
            # the fleet past config.nodes (equal for plain runs).
            for i in range(len(self.members))
        )
        window_rows, window_fleet_rows = self._window_rows()
        return FleetResult(
            config=config,
            tenants=tenants,
            fraction_saturated=sum(samples) / len(samples) if samples else 0.0,
            serving_yield=serving_yield,
            batch_yield=batch_yield,
            efficiency=fleet_efficiency(good, offered, batch_units, batch_nominal),
            offered_total=offered,
            completed_total=completed,
            good_total=good,
            batch_placements=queue.stats.placements,
            batch_evictions=queue.stats.evictions,
            batch_pending_at_end=queue.stats.pending_at_end,
            node_stats=node_stats,
            events_dispatched=events,
            requests_dropped=self.requests_dropped,
            batch_requeues=queue.stats.requeues,
            telemetry=self._telemetry_rows(),
            controller=self._controller_rows(),
            actuation=self._actuation_rows(),
            windows=window_rows,
            window_fleet=window_fleet_rows,
        )

    def _window_rows(self) -> tuple[tuple[dict, ...], tuple[dict, ...]]:
        """Freeze windowed accounting into JSON-clean time-of-day rows.

        Per-tenant rows carry each window's SLO attainment; fleet rows pool
        every tenant and add the window's saturated-node fraction. The
        per-window ``efficiency`` is the serving-tier yield — batch units
        have no per-window attribution (the meter integrates continuously),
        so for runs with a batch tier it understates the full figure;
        trace-driven runs default to no batch jobs, where it is exact.
        """
        window_s = self.config.window_s
        if window_s is None or not self._windows:
            return (), ()
        tenant_rows: list[dict] = []
        pooled: dict[int, WindowAccount] = {}
        for window, tenant in sorted(self._windows):
            account = self._windows[(window, tenant)]
            fleet = pooled.setdefault(window, WindowAccount())
            fleet.offered += account.offered
            fleet.completed += account.completed
            fleet.good += account.good
            fleet.latency_sum_s += account.latency_sum_s
            tenant_rows.append(
                {
                    "window": window,
                    "start_s": round(window * window_s, 6),
                    "tenant": self.config.tenants[tenant].name,
                    "offered": account.offered,
                    "completed": account.completed,
                    "good": account.good,
                    "attainment": round(account.attainment(), 6),
                    "mean_ms": (
                        round(
                            account.latency_sum_s / account.completed * 1e3, 3
                        )
                        if account.completed
                        else None
                    ),
                }
            )
        fleet_rows: list[dict] = []
        for window in sorted(set(pooled) | set(self._window_saturation)):
            account = pooled.get(window, WindowAccount())
            saturated, samples = self._window_saturation.get(window, (0, 0))
            fleet_rows.append(
                {
                    "window": window,
                    "start_s": round(window * window_s, 6),
                    "offered": account.offered,
                    "completed": account.completed,
                    "good": account.good,
                    "attainment": round(account.attainment(), 6),
                    "efficiency": round(account.attainment(), 6),
                    "fraction_saturated": (
                        round(saturated / samples, 6) if samples else 0.0
                    ),
                }
            )
        return tuple(tenant_rows), tuple(fleet_rows)

    def _telemetry_rows(self) -> tuple[dict, ...]:
        """Freeze the per-tick signal samples into JSON-clean dict rows.

        Same fields, same order, same row sequence as the dicts the control
        tick used to build inline — just 8.6k × nodes dict constructions
        moved out of the replay loop and into one finalize pass.
        """
        return tuple(
            {
                "time": signals.time,
                "node": signals.node_index,
                "socket_bw_gbps": signals.socket_bw_gbps,
                "latency_factor": signals.latency_factor,
                "saturation": signals.saturation,
                "hipri_bw_gbps": signals.hipri_bw_gbps,
                "inflight": signals.inflight,
                "queued": signals.queued,
                "batch_jobs": signals.batch_jobs,
                "saturated": signals.saturated,
                "hot": signals.hot,
            }
            for signals in self._telemetry_signals
        )

    def _controller_rows(self) -> tuple[dict, ...]:
        """Every member's unified control tick records, node-tagged."""
        if not self._collect_telemetry:
            return ()
        return tuple(
            {"node": member.index, **record.as_dict()}
            for member in self.members
            for record in member.controller_history()
        )

    def _actuation_rows(self) -> tuple[dict, ...]:
        """Every physical knob write performed fleet-wide, node-tagged."""
        if not self._collect_telemetry:
            return ()
        return tuple(
            {"node": member.index, **record.as_dict()}
            for member in self.members
            for record in member.actuation_journal()
        )


class FleetHooks:
    """Lifecycle hook points a fleet run offers to an observing layer.

    The incident engine subclasses this; the default implementations do
    nothing, so attaching a hooks object with no overrides leaves a run
    bit-identical to an unhooked one.
    """

    def on_start(self, orchestrator: FleetOrchestrator, sim: Simulator) -> None:
        """Called once, after members/generators start, before the clock runs."""

    def on_tick(self, orchestrator: FleetOrchestrator, now: float) -> None:
        """Called every control interval, after telemetry sampling and
        before the batch queue acts."""


def run_fleet(
    config: FleetConfig,
    collect_telemetry: bool = True,
    trace: "Trace | None" = None,
    hooks: FleetHooks | None = None,
) -> FleetResult:
    """Convenience wrapper: build and run one fleet simulation."""
    return FleetOrchestrator(
        config, collect_telemetry=collect_telemetry, trace=trace, hooks=hooks
    ).run()


def fleet_config_for_trace(trace: "Trace", **overrides) -> FleetConfig:
    """A :class:`FleetConfig` whose tenant table mirrors a trace's header.

    Tenant names and SLOs come from the trace (``slo_p99_ms`` → seconds);
    ``load_fraction`` is set to the tenant's normalized traffic weight for
    reporting only — in trace mode the arrival process is the trace itself.
    Defaults suited to day-long replays: duration covers the trace, the
    control interval scales with the horizon (10 s for a 24 h day), the
    accounting window splits the trace into 24 time-of-day buckets, and no
    batch tier. Any field can be overridden by keyword.
    """
    total_weight = sum(t.weight for t in trace.tenants)
    tenants = tuple(
        TenantSpec(
            name=t.name,
            load_fraction=t.weight / total_weight,
            slo_p99_s=t.slo_p99_ms / 1e3,
        )
        for t in trace.tenants
    )
    defaults: dict = {
        "nodes": 4,
        "policy": "KP",
        "routing": "least-loaded",
        "ml": "rnn1",
        "tenants": tenants,
        "batch_jobs": (),
        "duration": trace.duration_s,
        "warmup": min(2.0, trace.duration_s / 10.0),
        "interval": max(0.5, trace.duration_s / 8640.0),
        "window_s": trace.duration_s / 24.0,
    }
    defaults.update(overrides)
    return FleetConfig(**defaults)
