"""Configuration surface of the fleet orchestrator.

A fleet run is described declaratively: how many nodes, which per-node
isolation policy runs on them (BL/CT/KP-SD/KP — the node-level Kelp stack is
reused unchanged), how high-priority inference traffic is routed
(:mod:`repro.fleet.routing`), which tenants offer that traffic, and how many
best-effort batch jobs the cluster-level queue bin-packs onto the nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.control.actuators import ActuationFaultConfig
from repro.control.sensors import SensorConfig
from repro.errors import ConfigurationError

#: Routing strategies understood by :func:`repro.fleet.routing.make_router`.
ROUTING_NAMES = ("random", "least-loaded", "interference-aware")

#: Fraction of a socket's peak bandwidth above which a node counts as
#: *bandwidth saturated* for the fleet statistic (the Fig 2 threshold).
SATURATED_BW_FRACTION = 0.70


@dataclass(frozen=True)
class TenantSpec:
    """One latency-critical inference tenant sharing the fleet.

    ``load_fraction`` is this tenant's offered load *per node*, as a
    fraction of one clean node's standalone capacity; the orchestrator
    multiplies by the fleet size to obtain the aggregate arrival rate.
    """

    name: str
    load_fraction: float = 0.30
    #: Per-tenant p99 latency SLO, seconds.
    slo_p99_s: float = 0.060
    #: Deterministic (evenly spaced) instead of Poisson arrivals.
    deterministic: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant needs a name")
        if self.load_fraction <= 0:
            raise ConfigurationError("tenant load_fraction must be positive")
        if self.slo_p99_s <= 0:
            raise ConfigurationError("tenant slo_p99_s must be positive")


@dataclass(frozen=True)
class BatchJobSpec:
    """One best-effort CPU job offered to the cluster batch queue."""

    workload: str = "stream"
    intensity: int | str = 4

    def __post_init__(self) -> None:
        if not self.workload:
            raise ConfigurationError("batch job needs a workload name")


def default_tenants() -> tuple[TenantSpec, ...]:
    """The two-tenant mix used by the fleet-sim experiments."""
    return (
        TenantSpec(name="search", load_fraction=0.35, slo_p99_s=0.060),
        TenantSpec(name="assist", load_fraction=0.15, slo_p99_s=0.100),
    )


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: nodes x policy x routing x tenants x batch queue."""

    nodes: int = 8
    #: Per-node isolation policy (BL / CT / KP-SD / KP / HW-QOS).
    policy: str = "KP"
    #: Admission routing strategy for high-priority traffic.
    routing: str = "interference-aware"
    #: The served inference workload (must be an inference catalog entry).
    ml: str = "rnn1"
    tenants: tuple[TenantSpec, ...] = field(default_factory=default_tenants)
    #: Best-effort jobs submitted to the batch queue at t=0.
    batch_jobs: tuple[BatchJobSpec, ...] = ()
    #: Maximum batch jobs co-resident on one node.
    max_jobs_per_node: int = 1
    #: Whether the fleet queue evicts batch jobs off nodes whose
    #: hi-subdomain watermarks trip (and backfills them elsewhere/later).
    batch_eviction: bool = True
    #: Consecutive hot samples before an eviction fires.
    eviction_patience: int = 2
    duration: float = 8.0
    warmup: float = 2.0
    #: Fleet control-loop interval (telemetry sampling, routing signals,
    #: batch-queue management), simulated seconds.
    interval: float = 0.5
    seed: int = 0
    #: Accounting window for time-of-day SLO/efficiency curves, simulated
    #: seconds (``None`` disables windowed accounting — the default for the
    #: fixed-rate fleet-sim experiments, whose summaries stay unchanged).
    window_s: float | None = None
    #: Telemetry degradation applied to every node policy's sensor suite
    #: (``None`` = perfect sensing).
    sensors: SensorConfig | None = None
    #: Actuation faults injected into every node policy's control plane
    #: (``None`` = every write lands).
    faults: ActuationFaultConfig | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError("fleet needs at least one node")
        if self.routing not in ROUTING_NAMES:
            raise ConfigurationError(
                f"unknown routing {self.routing!r}; expected one of "
                f"{list(ROUTING_NAMES)}"
            )
        if not self.tenants:
            raise ConfigurationError("fleet needs at least one tenant")
        if self.duration <= self.warmup:
            raise ConfigurationError("duration must exceed warmup")
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError("window_s must be positive when set")
        if self.max_jobs_per_node < 1:
            raise ConfigurationError("max_jobs_per_node must be >= 1")
        if self.eviction_patience < 1:
            raise ConfigurationError("eviction_patience must be >= 1")

    def scaled_load(self, factor: float) -> "FleetConfig":
        """A copy with every tenant's offered load scaled by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("load factor must be positive")
        return replace(
            self,
            tenants=tuple(
                replace(t, load_fraction=t.load_fraction * factor)
                for t in self.tenants
            ),
        )

    def total_load_fraction(self) -> float:
        """Aggregate per-node offered load across tenants."""
        return sum(t.load_fraction for t in self.tenants)


def uniform_batch_jobs(
    count: int, workload: str = "stream", intensity: int | str = 4
) -> tuple[BatchJobSpec, ...]:
    """``count`` identical batch jobs (the usual fleet-sim batch tier)."""
    if count < 0:
        raise ConfigurationError("batch job count must be >= 0")
    return tuple(
        BatchJobSpec(workload=workload, intensity=intensity)
        for _ in range(count)
    )
