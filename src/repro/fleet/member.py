"""One fleet node: machine + isolation policy + inference server + batch slots.

A :class:`FleetMember` owns everything node-local that the single-node
experiments build by hand — the :class:`~repro.node.Node`, the
per-node isolation policy (prepared and ticking on its own control loop),
and the pipelined inference server the fleet routes requests to. On top it
adds the two things only a fleet needs: request attribution (which tenant
owns which in-flight request) and dynamic batch-job slots the cluster queue
places into and evicts from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.node import Node
from repro.control.actuators import ActuationFaultConfig
from repro.control.records import ActuationRecord, ControlTickRecord
from repro.control.sensors import SensorConfig
from repro.core.policies import IsolationPolicy, make_policy
from repro.core.policies.base import ROLE_BACKFILL, ROLE_LO
from repro.errors import SchedulingError
from repro.fleet.config import SATURATED_BW_FRACTION
from repro.sim import Simulator
from repro.sim.engine import PRIORITY_CONTROL
from repro.workloads.cpu.base import BatchProfile, BatchTask
from repro.workloads.ml.base import InferenceServerTask
from repro.workloads.ml.catalog import MlInstance, MlWorkloadFactory


def _mix_seed(*parts: int) -> int:
    """A stable 32-bit seed from a tuple of integer parts."""
    return int(np.random.SeedSequence(parts).generate_state(1)[0])


@dataclass(frozen=True)
class NodeSignals:
    """One control-interval snapshot of a node, as the fleet sees it.

    The routing layer and the batch queue act on these signals only — they
    never reach into the node's machine directly, mirroring how a cluster
    scheduler consumes per-node telemetry exports rather than raw counters.
    """

    node_index: int
    time: float
    #: Accel-socket bandwidth over the window, GB/s.
    socket_bw_gbps: float
    #: Worst loaded-latency factor on the accel socket (1.0 = unloaded).
    latency_factor: float
    #: FAST_ASSERTED fraction on the accel socket, [0, 1].
    saturation: float
    #: High-priority-subdomain bandwidth, GB/s.
    hipri_bw_gbps: float
    #: Requests in flight + queued on the node's inference server.
    inflight: int
    queued: int
    #: Batch jobs currently resident on the node.
    batch_jobs: int
    #: The Fig 2 statistic: socket bandwidth above 70 % of peak.
    saturated: bool
    #: Hi-subdomain watermarks tripped (eviction signal for the queue).
    hot: bool

    def pressure(self) -> float:
        """Scalar interference pressure used by interference-aware routing.

        Saturation dominates; loaded latency above 1.0 adds a secondary
        term. Rounded so that float jitter cannot reorder near-ties and
        break run-to-run determinism.
        """
        return round(self.saturation + 0.5 * max(self.latency_factor - 1.0, 0.0), 9)


class FleetMember:
    """One managed node inside a fleet simulation."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        factory: MlWorkloadFactory,
        policy_name: str,
        interval: float,
        warmup: float,
        seed: int,
        accel_socket: int = 0,
        on_complete: (
            Callable[["FleetMember", int, bool, float, float], None] | None
        ) = None,
        sensors: SensorConfig | None = None,
        faults: ActuationFaultConfig | None = None,
    ) -> None:
        self.index = index
        self.sim = sim
        self._factory = factory
        self._warmup = warmup
        self._seed = seed
        self.node: Node = Node.create(factory.host_spec(), sim, accel_socket=accel_socket)
        # Derive node-scoped degradation seeds so every member draws an
        # independent noise/fault stream even under one shared config.
        from dataclasses import replace as _replace

        if sensors is not None and sensors.degraded:
            sensors = _replace(
                sensors, seed=_mix_seed(sensors.seed, index, seed)
            )
        if faults is not None and faults.active:
            faults = _replace(faults, seed=_mix_seed(faults.seed, index, seed))
        self.policy: IsolationPolicy = make_policy(
            policy_name,
            self.node,
            ml_cores=factory.default_cores(),
            interval=interval,
            sensors=sensors,
            faults=faults,
        )
        self.policy.prepare()
        # ``load_fraction=0`` builds the server with *no* load generator:
        # arrivals come from the fleet's tenant generators via the router.
        self.instance: MlInstance = factory.build(
            self.node.machine,
            self.policy.ml_placement(),
            warmup_until=warmup,
            seed=seed,
            load_fraction=0.0,
        )
        self._interval = interval
        self._on_complete = on_complete
        self._cancel_policy_loop: Callable[[], None] | None = None
        #: FIFO of ``(tenant, counted)`` ownership records per request-start
        #: timestamp. ``counted`` is the request's admission epoch: whether
        #: it was admitted inside the measurement window, decided once at
        #: admission so completion-side accounting can never disagree.
        self._owners: dict[float, deque[tuple[int, bool]]] = {}
        #: Latest telemetry snapshot (None before the first control tick).
        self.last_signals: NodeSignals | None = None
        #: Consecutive samples with the hot predicate true (eviction patience).
        self.hot_streak = 0
        #: job_id -> live BatchTask list for resident batch jobs.
        self._jobs: dict[str, list[BatchTask]] = {}
        #: Every batch task this node ever ran (live + evicted), for accounting.
        self.batch_task_history: list[BatchTask] = []
        self._peak_bw = self.node.machine.spec.sockets[accel_socket].peak_bw_gbps
        #: Liveness: a dead member silently drops submissions and exports a
        #: frozen telemetry snapshot (nothing fleet-visible announces the
        #: death — detection is the incident layer's job).
        self.alive = True
        #: Observer for events that may change this member's routing key
        #: (load, telemetry, liveness, rotation). The orchestrator points
        #: this at the incremental routing index; every key-changing event
        #: below must call it — including paths that bypass the fleet
        #: router, like the incident engine's direct intruder submissions.
        self.on_state_change: (
            Callable[["FleetMember", str], None] | None
        ) = None
        #: Whether the admission router may send this member traffic. Stays
        #: True through a *silent* death (the black hole); remediation or
        #: an explicit orchestrator kill pulls the member from rotation.
        #: A property so that every rotation flip notifies the routing
        #: index, no matter who performs it.
        self._in_rotation = True
        #: Whether the batch queue may place new jobs here.
        self.accepts_batch = True
        #: Times this member has died (salts the restart seed).
        self.deaths = 0
        #: Fleet telemetry blackout: ``sample()`` re-exports the last
        #: snapshot while ``sim.now`` is before this instant.
        self.blackout_until = 0.0
        self._frozen_load = 0

    @property
    def in_rotation(self) -> bool:
        """Whether the admission router may send this member traffic."""
        return self._in_rotation

    @in_rotation.setter
    def in_rotation(self, value: bool) -> None:
        self._in_rotation = bool(value)
        if self.on_state_change is not None:
            self.on_state_change(self, "rotation")

    def _notify(self, kind: str) -> None:
        if self.on_state_change is not None:
            self.on_state_change(self, kind)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the inference server and the node policy's control loop."""
        self.instance.start()
        self.server.completion_listeners.append(self._complete)
        if self.policy.has_control_loop:
            self._cancel_policy_loop = self.sim.every(
                self._interval,
                self.policy.tick,
                label=f"fleet:policy:{self.index}",
                priority=PRIORITY_CONTROL,
            )

    def stop(self) -> None:
        """Stop the control loop, resident batch jobs and the server."""
        if self._cancel_policy_loop is not None:
            self._cancel_policy_loop()
            self._cancel_policy_loop = None
        for job_id in list(self._jobs):
            self.remove_job(job_id)
        try:
            self.server.completion_listeners.remove(self._complete)
        except ValueError:
            pass  # already detached (a dead member)
        self.instance.stop()

    def fail(self) -> int:
        """Die silently mid-run: crash the server, drop every request.

        Queued and in-flight requests are lost without completing — their
        admission-epoch ``counted`` flags were decided at submit time, so
        each counted loss is automatically an SLO miss at finalize. Resident
        batch tasks freeze where they stand (their meters stop integrating)
        but stay in :attr:`job_ids` — the cluster queue still believes they
        are running until someone requeues them. Nothing is announced to
        the fleet: :attr:`in_rotation` stays True and :meth:`sample` keeps
        exporting the last pre-death snapshot.

        Returns the number of *counted* requests dropped.
        """
        if not self.alive:
            return 0
        self.alive = False
        self.deaths += 1
        self._frozen_load = self.load
        if self._cancel_policy_loop is not None:
            self._cancel_policy_loop()
            self._cancel_policy_loop = None
        try:
            self.server.completion_listeners.remove(self._complete)
        except ValueError:  # pragma: no cover - defensive
            pass
        dropped = sum(
            1
            for owners in self._owners.values()
            for _, counted in owners
            if counted
        )
        self._owners.clear()
        self.server.abort()
        self.instance.stop()
        for tasks in self._jobs.values():
            for task in tasks:
                task.meter.set_rate(0.0, self.sim.now)
                task.stop()
        if self.last_signals is None:
            self.last_signals = self._offline_signals()
        self._notify("load")
        return dropped

    def restart(self) -> None:
        """Boot a fresh server after a death (the node rejoined).

        The machine, policy and control plane survive the reboot (host
        state is persistent); the inference server is rebuilt from the
        factory with a restart-salted seed. Batch tasks killed by the
        death stay dead — re-placing their jobs is the queue's decision.
        Telemetry resumes fresh on the next :meth:`sample`.
        """
        if self.alive:
            return
        self.instance = self._factory.build(
            self.node.machine,
            self.policy.ml_placement(),
            warmup_until=self._warmup,
            seed=_mix_seed(self._seed, 0xDEAD, self.deaths),
            load_fraction=0.0,
        )
        self.alive = True
        self.instance.start()
        self.server.completion_listeners.append(self._complete)
        if self.policy.has_control_loop:
            self._cancel_policy_loop = self.sim.every(
                self._interval,
                self.policy.tick,
                label=f"fleet:policy:{self.index}",
                priority=PRIORITY_CONTROL,
            )
        self._notify("load")  # the rebooted server starts empty

    def begin_blackout(self, until: float) -> None:
        """Black out telemetry until ``until``: the fleet sees a frozen
        snapshot, and the node policy's own control loop keeps deciding on
        its last pre-blackout sensor sample (it is blind too)."""
        self.blackout_until = max(self.blackout_until, until)
        loop = self.policy.loop
        if loop is not None:
            loop.hold_sensors(until)
        if self.last_signals is None:
            self.last_signals = self._offline_signals()
            self._notify("signals")

    # ------------------------------------------------------------- serving
    @property
    def server(self) -> InferenceServerTask:
        """The node's pipelined inference server."""
        task = self.instance.task
        assert isinstance(task, InferenceServerTask)
        return task

    @property
    def load(self) -> int:
        """Requests in flight plus queued (the least-loaded routing key).

        A dead member reports its load frozen at the instant of death —
        the load balancer's view stops updating, which is exactly what
        makes a silently dead node a traffic magnet for least-loaded
        routing (its apparent load never grows).
        """
        if not self.alive:
            return self._frozen_load
        return self.server.inflight + self.server.queued

    def submit(
        self, tenant: int, demand: float = 1.0, counted: bool = True
    ) -> None:
        """Accept one request on behalf of ``tenant``.

        ``counted`` records the admission epoch (admitted inside the
        measurement window or not); ``demand`` scales the request's service
        requirement (trace job families). A dead member black-holes the
        request: it was already counted as offered at admission and will
        never complete, i.e. it is an SLO miss.
        """
        if not self.alive:
            return
        self._owners.setdefault(self.sim.now, deque()).append((tenant, counted))
        self.server.submit(demand)
        if self.on_state_change is not None:
            self.on_state_change(self, "load")

    def _complete(self, start: float, end: float) -> None:
        if self.on_state_change is not None:
            # The server already released the request, so the load-keyed
            # routing index must be refreshed even for unowned traffic.
            self.on_state_change(self, "load")
        owners = self._owners.get(start)
        if not owners:  # pragma: no cover - foreign traffic, defensive
            return
        tenant, counted = owners.popleft()
        if not owners:
            del self._owners[start]
        if self._on_complete is not None:
            self._on_complete(self, tenant, counted, start, end)

    # ----------------------------------------------------------- telemetry
    def sample(self) -> NodeSignals:
        """One windowed telemetry read, refreshed into :attr:`last_signals`.

        The hot predicate mirrors the THROTTLE side of Algorithm 1's
        low-priority decision: the queue should not keep (or add) batch work
        on a node whose socket-level watermarks are tripping.

        A dead or blacked-out member re-exports its last snapshot instead
        of reading the perf window: its ``time`` field stops advancing,
        which is the only fleet-visible trace of the failure (the
        telemetry-silence detector keys on exactly this).
        """
        if not self.alive or self.sim.now < self.blackout_until:
            if self.last_signals is None:  # pragma: no cover - defensive
                self.last_signals = self._offline_signals()
                self._notify("signals")
            return self.last_signals
        node = self.node
        profile = self.policy.profile
        socket_bw, latency, saturation, hipri_bw, _ = node.perf.read_kelp(
            "fleet", node.accel_socket, node.hi_subdomain
        )
        hot = (
            profile.saturation.above(saturation)
            or profile.socket_latency.above(latency)
            or profile.socket_bw.above(socket_bw)
        )
        signals = NodeSignals(
            node_index=self.index,
            time=self.sim.now,
            socket_bw_gbps=socket_bw,
            latency_factor=latency,
            saturation=saturation,
            hipri_bw_gbps=hipri_bw,
            inflight=self.server.inflight,
            queued=self.server.queued,
            batch_jobs=len(self._jobs),
            saturated=socket_bw >= SATURATED_BW_FRACTION * self._peak_bw,
            hot=hot,
        )
        self.last_signals = signals
        self.hot_streak = self.hot_streak + 1 if hot else 0
        if self.on_state_change is not None:
            self.on_state_change(self, "signals")
        return signals

    def _offline_signals(self) -> NodeSignals:
        """An all-quiet snapshot for members that die before any sample."""
        return NodeSignals(
            node_index=self.index,
            time=0.0,
            socket_bw_gbps=0.0,
            latency_factor=1.0,
            saturation=0.0,
            hipri_bw_gbps=0.0,
            inflight=0,
            queued=0,
            batch_jobs=len(self._jobs),
            saturated=False,
            hot=False,
        )

    # ---------------------------------------------------------- batch jobs
    @property
    def job_count(self) -> int:
        """Batch jobs currently resident on this node."""
        return len(self._jobs)

    @property
    def job_ids(self) -> tuple[str, ...]:
        """Resident job ids in placement order."""
        return tuple(self._jobs)

    def place_job(self, job_id: str, profile: BatchProfile, warmup: float) -> None:
        """Create, register and start the tasks of one batch job."""
        if job_id in self._jobs:
            raise SchedulingError(f"job {job_id!r} already on node {self.index}")
        roles: dict[str, list[BatchTask]] = {ROLE_LO: [], ROLE_BACKFILL: []}
        tasks: list[BatchTask] = []
        for plan in self.policy.plan_cpu(profile):
            task = BatchTask(
                task_id=f"{job_id}/{plan.task_id}",
                machine=self.node.machine,
                placement=plan.placement,
                profile=plan.profile,
                warmup_until=warmup,
            )
            tasks.append(task)
            roles.setdefault(plan.role, []).append(task)
        self.policy.register(roles)
        for task in tasks:
            task.start()
        self._jobs[job_id] = tasks
        self.batch_task_history.extend(tasks)

    def remove_job(self, job_id: str) -> None:
        """Stop one job's tasks and forget them in the node's role lists.

        The role lists matter: the Kelp runtime's enforcement pass iterates
        ``node.lo_tasks``/``node.backfill_tasks`` every tick, so an evicted
        task left behind would keep receiving cpuset writes forever.
        """
        tasks = self._jobs.pop(job_id, None)
        if tasks is None:
            raise SchedulingError(f"job {job_id!r} not on node {self.index}")
        for task in tasks:
            # Freeze the meter at the eviction instant: a detached task no
            # longer receives solver rates, and a stale non-zero rate would
            # extrapolate phantom units to the end of the run.
            task.meter.set_rate(0.0, self.sim.now)
            task.stop()
            if task in self.node.lo_tasks:
                self.node.lo_tasks.remove(task)
            if task in self.node.backfill_tasks:
                self.node.backfill_tasks.remove(task)

    # ------------------------------------------------------------- metrics
    def controller_history(self) -> list[ControlTickRecord]:
        """The node policy's unified control tick records."""
        return self.policy.tick_history()

    def actuation_journal(self) -> list[ActuationRecord]:
        """Every physical knob write the node's control plane performed."""
        return self.policy.actuation_journal()

    def batch_throughput(self, measurement_end: float) -> float:
        """Aggregate post-warmup units/s over every task this node ran."""
        return sum(
            task.throughput(measurement_end) for task in self.batch_task_history
        )

    def rng_stream(self, base_seed: int, tag: int) -> np.random.Generator:
        """A node-scoped RNG stream (deterministic in (seed, node, tag))."""
        return np.random.default_rng(
            np.random.SeedSequence((base_seed, self.index, tag))
        )
