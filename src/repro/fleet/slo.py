"""Fleet-level SLO accounting.

Per tenant the fleet tracks offered load, completions, the latency
distribution and the fraction of requests inside the tenant's p99 SLO;
fleet-wide it reports the saturated-node fraction (the Fig 2 statistic at
cluster scope) and an *efficiency* figure in the spirit of Fig 14: useful
work delivered per unit of work the cluster was asked to do, combining the
serving tier (SLO-good completions / offered requests) and the batch tier
(delivered units / nominal full-speed units) weighted by their offered
volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.fleet.config import TenantSpec
from repro.metrics.percentile import StreamingPercentiles


@dataclass
class TenantAccount:
    """Mutable per-tenant counters while the fleet runs."""

    spec: TenantSpec
    #: Requests admitted after warmup.
    offered: int = 0
    #: Requests completed after warmup.
    completed: int = 0
    #: Completions whose latency met the tenant's p99 SLO.
    good: int = 0
    latencies: StreamingPercentiles = field(default_factory=StreamingPercentiles)

    def record(self, latency_s: float) -> None:
        """Account one post-warmup completion."""
        self.completed += 1
        self.latencies.add(latency_s)
        if latency_s <= self.spec.slo_p99_s:
            self.good += 1


@dataclass
class WindowAccount:
    """Mutable counters for one (time window, tenant) accounting bucket.

    Requests are bucketed by *admission* time, so a window's attainment is a
    property of the traffic that arrived in it — a request admitted at 13:59
    and completed at 14:01 counts against the 13:00 window.
    """

    offered: int = 0
    completed: int = 0
    good: int = 0
    latency_sum_s: float = 0.0

    def record(self, latency_s: float, slo_p99_s: float) -> None:
        """Account one completion against this bucket."""
        self.completed += 1
        self.latency_sum_s += latency_s
        if latency_s <= slo_p99_s:
            self.good += 1

    def attainment(self) -> float:
        """SLO-good completions / offered (0.0 for an empty bucket)."""
        return self.good / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class TenantSlo:
    """Frozen per-tenant outcome of one fleet run."""

    name: str
    slo_p99_s: float
    offered: int
    completed: int
    #: Completions within SLO / offered requests (drops count against it).
    attainment: float
    #: SLO-good completions per post-warmup second.
    goodput_qps: float
    p50_s: float | None
    p99_s: float | None
    mean_s: float | None
    #: The binary verdict: measured p99 within the SLO.
    slo_met: bool

    def as_dict(self) -> dict[str, object]:
        """A JSON-clean row for the CLI/observability exports."""
        return {
            "tenant": self.name,
            "slo_p99_ms": round(self.slo_p99_s * 1e3, 3),
            "offered": self.offered,
            "completed": self.completed,
            "attainment": round(self.attainment, 6),
            "goodput_qps": round(self.goodput_qps, 3),
            "p50_ms": None if self.p50_s is None else round(self.p50_s * 1e3, 3),
            "p99_ms": None if self.p99_s is None else round(self.p99_s * 1e3, 3),
            "mean_ms": None if self.mean_s is None else round(self.mean_s * 1e3, 3),
            "slo_met": self.slo_met,
        }


def bucket_window_completions(
    windows: dict[tuple[int, int], WindowAccount],
    starts: Sequence[float],
    tenants: Sequence[int],
    latencies: Sequence[float],
    window_s: float,
    slo_p99_s: Sequence[float],
) -> None:
    """Vectorized per-(window, tenant) completion bucketing.

    Equivalent — including the floating-point accumulation order of each
    bucket's ``latency_sum_s`` — to replaying, in completion order::

        for start, tenant, latency in zip(starts, tenants, latencies):
            account = windows.get((int(start // window_s), tenant))
            if account is not None:
                account.record(latency, slo_p99_s[tenant])

    ``np.bincount`` with weights adds each input element to its bucket in
    input order, which is exactly the sequential ``+=`` the per-completion
    path performed, so the sums are bit-identical. The window index uses
    Python float floor-division (not ``np.floor_divide``) so boundary
    arrivals land in the same bucket the live path put their admissions in.

    Only buckets already present in ``windows`` (created by the offered
    side) are updated, mirroring the live path's ``is not None`` guard.
    """
    if not starts:
        return
    n_tenants = len(slo_p99_s)
    win_idx = [int(s // window_s) for s in starts]
    tenant_arr = np.asarray(tenants, dtype=np.int64)
    lat_arr = np.asarray(latencies, dtype=np.float64)
    win_arr = np.asarray(win_idx, dtype=np.int64)
    combined = win_arr * n_tenants + tenant_arr
    # Compact the combined keys so bincount arrays stay small even for
    # sparse, large window indexes.
    uniq, codes = np.unique(combined, return_inverse=True)
    counts = np.bincount(codes, minlength=len(uniq))
    lat_sums = np.bincount(codes, weights=lat_arr, minlength=len(uniq))
    slo_arr = np.asarray(slo_p99_s, dtype=np.float64)
    good = np.bincount(
        codes,
        weights=(lat_arr <= slo_arr[tenant_arr]).astype(np.float64),
        minlength=len(uniq),
    )
    for key, count, lat_sum, good_count in zip(
        uniq.tolist(), counts.tolist(), lat_sums.tolist(), good.tolist()
    ):
        window, tenant = divmod(key, n_tenants)
        account = windows.get((window, tenant))
        if account is None:
            continue
        account.completed += count
        account.latency_sum_s += lat_sum
        account.good += int(good_count)


def finalize_tenant(account: TenantAccount, window_s: float) -> TenantSlo:
    """Freeze one tenant's counters into a result row."""
    has_samples = account.latencies.count > 0
    p50 = account.latencies.percentile(50.0) if has_samples else None
    p99 = account.latencies.percentile(99.0) if has_samples else None
    mean = account.latencies.mean() if has_samples else None
    return TenantSlo(
        name=account.spec.name,
        slo_p99_s=account.spec.slo_p99_s,
        offered=account.offered,
        completed=account.completed,
        attainment=account.good / account.offered if account.offered else 0.0,
        goodput_qps=account.good / window_s if window_s > 0 else 0.0,
        p50_s=p50,
        p99_s=p99,
        mean_s=mean,
        slo_met=p99 is not None and p99 <= account.spec.slo_p99_s,
    )


def fleet_efficiency(
    slo_good: int,
    offered: int,
    batch_units: float,
    batch_nominal_units: float,
) -> float:
    """Useful work delivered / work requested, across both tiers.

    ``slo_good``/``offered`` are post-warmup request counts; the batch terms
    are post-warmup work units (delivered vs full-speed nominal). Both tiers
    contribute in their own units, so the figure is the offered-volume-
    weighted mean of serving yield and batch yield — 1.0 means every request
    met its SLO *and* every batch job ran at standalone speed.
    """
    denominator = offered + batch_nominal_units
    if denominator <= 0:
        return 0.0
    return (slo_good + batch_units) / denominator
