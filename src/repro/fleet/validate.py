"""The analytic tail-amplification model and its fleet cross-validation.

Section II-D, factor 1: "service-level performance of distributed workloads
is even more susceptible to interference due to 'tail amplification'" — in
lock-step training every step waits for the slowest parameter-server shard,
so as the shard fan-out grows, the probability that *some* shard sits on an
interfered machine approaches one, and the whole service runs at the
interfered speed. :class:`TailAmplificationModel` composes two measured
quantities: the probability that a machine is bandwidth-saturated (the
Fig 2 fleet statistic) and the local update-time stretch interference
causes, and Monte-Carlos shard placements to yield expected service
slowdown vs fan-out.

The argument is analytic, but the fleet simulator produces both inputs
*empirically* — which nodes saturated, and how much slower their requests
ran — so this module also closes the loop: fit a
:class:`TailAmplificationModel` from a fleet run, then Monte-Carlo shard
placements over the *actual* per-node latencies and check the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.fleet.orchestrator import FleetResult


@dataclass(frozen=True)
class TailAmplificationModel:
    """Expected lock-step slowdown as shard fan-out grows."""

    #: Probability a shard's machine suffers interference (Fig 2: ~0.16).
    interference_probability: float
    #: Local update-time stretch on an interfered machine (measured).
    interfered_stretch: float
    #: Shard latency coefficient of variation on clean machines.
    latency_cv: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 <= self.interference_probability <= 1.0:
            raise ConfigurationError("interference_probability must be in [0,1]")
        if self.interfered_stretch < 1.0:
            raise ConfigurationError("interfered_stretch must be >= 1")
        if self.latency_cv < 0:
            raise ConfigurationError("latency_cv must be >= 0")

    def expected_slowdown(
        self, shards: int, samples: int = 4000, seed: int = 0
    ) -> float:
        """Mean service-step slowdown for a ``shards``-way fan-out.

        Each sample draws per-shard update latencies (Gamma noise around
        1.0, scaled by the stretch on interfered machines) and takes the
        max — the lock-step barrier. Slowdown is relative to a single clean
        shard's expected latency.
        """
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        rng = np.random.default_rng(seed)
        if self.latency_cv > 0:
            cv2 = self.latency_cv ** 2
            base = rng.gamma(1.0 / cv2, cv2, size=(samples, shards))
        else:
            base = np.ones((samples, shards))
        interfered = rng.random((samples, shards)) < self.interference_probability
        latencies = np.where(interfered, base * self.interfered_stretch, base)
        return float(np.mean(np.max(latencies, axis=1)))

    def probability_any_interfered(self, shards: int) -> float:
        """Probability at least one shard is on an interfered machine."""
        return 1.0 - (1.0 - self.interference_probability) ** shards


@dataclass(frozen=True)
class FleetInterferenceProfile:
    """What one fleet run says about interference, model-input shaped."""

    #: Fraction of nodes classified interfered (the model's ``p``).
    interference_probability: float
    #: Mean request latency on interfered nodes / clean nodes (``s``).
    interfered_stretch: float
    #: Mean request latency on clean nodes, seconds.
    clean_latency_s: float
    #: Node indices on each side of the classification.
    interfered_nodes: tuple[int, ...]
    clean_nodes: tuple[int, ...]
    #: Per-node mean latency normalized to the clean mean (index-aligned
    #: with the fleet's nodes; nodes that served nothing are excluded).
    normalized_latencies: tuple[float, ...]

    def model(self, latency_cv: float = 0.0) -> TailAmplificationModel:
        """The analytic model fitted from this fleet run."""
        return TailAmplificationModel(
            interference_probability=self.interference_probability,
            interfered_stretch=max(self.interfered_stretch, 1.0),
            latency_cv=latency_cv,
        )


def interference_profile(
    result: FleetResult, saturated_threshold: float = 0.5
) -> FleetInterferenceProfile:
    """Classify nodes and fit the model inputs from one fleet run.

    A node counts as *interfered* when it was bandwidth-saturated in at
    least ``saturated_threshold`` of the post-warmup control samples —
    the per-node version of the Fig 2 fleet statistic.
    """
    served = [s for s in result.node_stats if s.mean_latency_s is not None]
    if not served:
        raise ExperimentError("fleet run served no requests; cannot fit model")
    interfered = [s for s in served if s.saturated_fraction >= saturated_threshold]
    clean = [s for s in served if s.saturated_fraction < saturated_threshold]
    if not clean:
        raise ExperimentError(
            "every node is saturated; no clean baseline to normalize against"
        )
    clean_mean = float(
        np.mean([s.mean_latency_s for s in clean])
    )
    if interfered:
        interfered_mean = float(np.mean([s.mean_latency_s for s in interfered]))
        stretch = interfered_mean / clean_mean
    else:
        stretch = 1.0
    return FleetInterferenceProfile(
        interference_probability=len(interfered) / len(served),
        interfered_stretch=stretch,
        clean_latency_s=clean_mean,
        interfered_nodes=tuple(s.index for s in interfered),
        clean_nodes=tuple(s.index for s in clean),
        normalized_latencies=tuple(
            s.mean_latency_s / clean_mean for s in served
        ),
    )


def empirical_slowdown(
    profile: FleetInterferenceProfile,
    shards: int,
    samples: int = 4000,
    seed: int = 0,
) -> float:
    """Monte-Carlo lock-step slowdown over the fleet's *measured* nodes.

    Each sample places ``shards`` parameter-server shards on uniformly
    drawn nodes and takes the max of their normalized mean latencies — the
    empirical counterpart of
    :meth:`TailAmplificationModel.expected_slowdown`
    with ``latency_cv=0``.
    """
    if shards < 1:
        raise ExperimentError("shards must be >= 1")
    latencies = np.asarray(profile.normalized_latencies)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(latencies), size=(samples, shards))
    return float(np.mean(np.max(latencies[picks], axis=1)))


def empirical_probability_any_interfered(
    profile: FleetInterferenceProfile,
    shards: int,
    samples: int = 4000,
    seed: int = 0,
) -> float:
    """Monte-Carlo fraction of placements touching an interfered node."""
    if shards < 1:
        raise ExperimentError("shards must be >= 1")
    total = len(profile.clean_nodes) + len(profile.interfered_nodes)
    interfered = np.zeros(total, dtype=bool)
    index_of = {
        node: i
        for i, node in enumerate(profile.clean_nodes + profile.interfered_nodes)
    }
    for node in profile.interfered_nodes:
        interfered[index_of[node]] = True
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, total, size=(samples, shards))
    return float(np.mean(np.any(interfered[picks], axis=1)))
