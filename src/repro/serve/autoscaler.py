"""Demand-driven fleet autoscaling with hysteresis.

The autoscaler watches the *counted offered-request rate* — a pure integer
counter stream (trace mode reads it by binary search over the precomputed
counted arrivals), so decisions are bit-identical across process
parallelism and across checkpoint/restore. It deliberately does not read
node telemetry: sampling a member's meters between control ticks would
perturb their float accumulation order and break replay bit-identity.

Scaling logic is the classic three-guard shape production autoscalers use:

* **target band** — per-node offered load (requests/s divided by the
  workload's standalone capacity) must leave ``[low, high]`` before
  anything happens;
* **consecutive-epoch hysteresis** — the breach must persist for
  ``epochs_up`` (or ``epochs_down``) consecutive epochs, so a one-epoch
  burst doesn't flap the fleet;
* **cooldown** — after any action the autoscaler holds for
  ``cooldown_epochs`` epochs, giving the routing layer time to re-balance
  before the next decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs for :class:`Autoscaler`."""

    #: Fleet size bounds, inclusive.
    min_nodes: int = 1
    max_nodes: int = 16
    #: Per-node offered utilization (offered rate / node capacity) above
    #: which the fleet is under-provisioned.
    high_utilization: float = 0.85
    #: Utilization below which the fleet is over-provisioned.
    low_utilization: float = 0.40
    #: Consecutive epochs above ``high_utilization`` before growing.
    epochs_up: int = 2
    #: Consecutive epochs below ``low_utilization`` before shrinking.
    epochs_down: int = 4
    #: Epochs to hold after any scaling action.
    cooldown_epochs: int = 2

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ConfigurationError("min_nodes must be >= 1")
        if self.max_nodes < self.min_nodes:
            raise ConfigurationError("max_nodes must be >= min_nodes")
        if not 0.0 <= self.low_utilization < self.high_utilization:
            raise ConfigurationError(
                "need 0 <= low_utilization < high_utilization"
            )
        if min(self.epochs_up, self.epochs_down) < 1:
            raise ConfigurationError("hysteresis epochs must be >= 1")
        if self.cooldown_epochs < 0:
            raise ConfigurationError("cooldown_epochs must be >= 0")


class Autoscaler:
    """Pure decision state; the service applies the decisions it returns."""

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._above = 0
        self._below = 0
        self._cooldown = 0
        #: Offered counter at the previous epoch boundary.
        self._last_offered = 0
        #: (epoch, action, nodes_after) rows for diagnostics/snapshots.
        self.actions: list[tuple[int, str, int]] = []

    def observe(
        self,
        epoch: int,
        offered: int,
        epoch_s: float,
        active_nodes: int,
        node_capacity_qps: float,
    ) -> int:
        """Ingest one epoch's counters; return the node delta to apply.

        ``offered`` is the cumulative counted offered total at the epoch
        boundary; the rate is its delta over the epoch. Returns +1, -1 or 0
        — the service grows/shrinks by at most one node per epoch (the
        hysteresis counters reset on action, so a sustained surge still
        grows one node per ``epochs_up`` epochs).
        """
        config = self.config
        delta_offered = offered - self._last_offered
        self._last_offered = offered
        rate = delta_offered / epoch_s if epoch_s > 0 else 0.0
        capacity = node_capacity_qps * active_nodes
        utilization = rate / capacity if capacity > 0 else 0.0

        if self._cooldown > 0:
            self._cooldown -= 1
            self._above = 0
            self._below = 0
            return 0
        if utilization > config.high_utilization:
            self._above += 1
            self._below = 0
        elif utilization < config.low_utilization:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0

        if self._above >= config.epochs_up and active_nodes < config.max_nodes:
            self._above = 0
            self._cooldown = config.cooldown_epochs
            self.actions.append((epoch, "grow", active_nodes + 1))
            return 1
        if self._below >= config.epochs_down and active_nodes > config.min_nodes:
            self._below = 0
            self._cooldown = config.cooldown_epochs
            self.actions.append((epoch, "shrink", active_nodes - 1))
            return -1
        return 0
