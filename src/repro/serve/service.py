"""The long-running serving control plane over a fleet orchestrator.

:class:`FleetService` wraps :class:`~repro.fleet.orchestrator.FleetOrchestrator`
as an epoch-stepped *service*: instead of one opaque ``run()`` to
completion, the clock advances one epoch at a time and control commands —
admit/evict a tenant, swap the routing policy, grow or shrink the fleet —
apply at epoch boundaries, exactly as a production control plane applies
configuration between reconciliation loops.

Two properties the rest of the stack leans on:

* **Stepping is bit-identical to batch.** Epoch boundary times are computed
  by multiplication (``k * epoch_s``, clamped to the horizon), never by
  accumulation, and nothing between epochs syncs a meter or advances an
  RNG, so a command-free stepped run produces byte-identical results to
  ``FleetOrchestrator.run()``.
* **Checkpoint/restore is bit-identical too.** :meth:`save` pickles the
  full simulator + orchestrator + RNG state (minus the trace arrays, which
  are re-derived from the trace at restore) and records the global event
  sequence watermark; :meth:`restore` resumes the run in a fresh process
  with identical event ordering. See ``docs/serving.md`` for the format.
"""

from __future__ import annotations

import itertools
import os
import pickle
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, ExperimentError
from repro.fleet.config import FleetConfig
from repro.fleet.orchestrator import FleetHooks, FleetOrchestrator, FleetResult
from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.snapshot import ServiceSnapshot, take_snapshot
from repro.traces.schema import trace_digest

if TYPE_CHECKING:
    from repro.obs.recorder import RunObserver
    from repro.traces.schema import Trace

#: Checkpoint container format tag; bump on any incompatible change.
CHECKPOINT_FORMAT = "repro-serve-checkpoint/v1"


class FleetService:
    """An epoch-stepped, checkpointable fleet serving control plane."""

    def __init__(
        self,
        config: FleetConfig,
        trace: "Trace | None" = None,
        collect_telemetry: bool = True,
        hooks: FleetHooks | None = None,
        autoscaler: AutoscalerConfig | None = None,
        epoch_s: float | None = None,
        observer: "RunObserver | None" = None,
    ) -> None:
        self.orchestrator = FleetOrchestrator(
            config,
            collect_telemetry=collect_telemetry,
            trace=trace,
            hooks=hooks,
        )
        self.epoch_s = float(
            epoch_s if epoch_s is not None else config.interval
        )
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch_s must be positive")
        self.epoch = 0
        self.autoscaler = (
            Autoscaler(autoscaler) if autoscaler is not None else None
        )
        #: Content digest of the driving trace (None for open-loop runs);
        #: restores refuse a different trace.
        self.trace_digest = trace_digest(trace) if trace is not None else None
        #: Epoch-boundary snapshots, in order (epoch 1 first).
        self.snapshots: list[ServiceSnapshot] = []
        #: ``(epoch, command)`` audit log of every applied control command.
        self.commands: list[tuple[int, str]] = []
        self.observer = observer
        self._started = False
        self._finished = False
        self._prev_offered = 0
        self._prev_completed = 0

    # ------------------------------------------------------------ lifecycle
    @property
    def config(self) -> FleetConfig:
        return self.orchestrator.config

    @property
    def time_s(self) -> float:
        """Current simulated time (0.0 before :meth:`start`)."""
        sim = self.orchestrator._sim
        return sim.now if sim is not None else 0.0

    @property
    def done(self) -> bool:
        """True once the clock has reached the configured horizon."""
        return self._started and self.time_s >= self.config.duration

    def start(self) -> None:
        """Assemble the fleet and start serving at t=0."""
        if self._started:
            raise ExperimentError("service already started")
        self._started = True
        self.orchestrator.setup()
        if self.observer is not None:
            self.observer.note_config(
                serve_epoch_s=self.epoch_s,
                serve_autoscaler=self.autoscaler is not None,
            )

    def step(self) -> ServiceSnapshot:
        """Advance one epoch; returns the boundary snapshot.

        The boundary time is ``min(duration, (epoch + 1) * epoch_s)`` — a
        pure function of the epoch index, so a stop/restore cycle lands on
        exactly the same float boundaries as an uninterrupted run. The
        autoscaler (when configured) observes the boundary counters and may
        grow or shrink the fleet by one node before the next epoch.
        """
        self._require_live()
        until = min(self.config.duration, (self.epoch + 1) * self.epoch_s)
        self.orchestrator.advance(until)
        self.epoch += 1
        if self.autoscaler is not None:
            self._autoscale(until)
        snapshot = take_snapshot(
            self.orchestrator,
            self.epoch,
            until,
            self._prev_offered,
            self._prev_completed,
        )
        self._prev_offered = snapshot.offered
        self._prev_completed = snapshot.completed
        self.snapshots.append(snapshot)
        if self.observer is not None:
            self.observer.record("serve_epoch", **snapshot.as_dict())
        return snapshot

    def run_to_end(self) -> None:
        """Step epochs until the horizon."""
        self._require_live()
        while not self.done:
            self.step()

    def finish(self) -> FleetResult:
        """Close the books; the service cannot be stepped afterwards."""
        self._require_live()
        if not self.done:
            raise ExperimentError(
                f"service at t={self.time_s} has not reached the horizon "
                f"{self.config.duration}; step() to the end first"
            )
        self._finished = True
        return self.orchestrator.finish()

    def _require_live(self) -> None:
        if not self._started:
            raise ExperimentError("service not started; call start()")
        if self._finished:
            raise ExperimentError("service already finished")

    # ------------------------------------------------------------- commands
    def _tenant_index(self, tenant: str) -> int:
        for index, spec in enumerate(self.config.tenants):
            if spec.name == tenant:
                return index
        raise ConfigurationError(
            f"unknown tenant {tenant!r}; have "
            f"{[t.name for t in self.config.tenants]}"
        )

    def _log_command(self, command: str) -> None:
        self.commands.append((self.epoch, command))
        if self.observer is not None:
            self.observer.record(
                "serve_command", epoch=self.epoch, command=command
            )

    def evict_tenant(self, tenant: str) -> None:
        """Refuse service to a tenant from the next arrival on.

        The tenant's traffic keeps arriving and stays *offered* (trace-mode
        offered accounting is precomputed from the trace and must not
        shift) — every arrival while evicted is dropped, i.e. an SLO miss.
        """
        self._require_live()
        self.orchestrator.evicted_tenants.add(self._tenant_index(tenant))
        self._log_command(f"evict:{tenant}")

    def admit_tenant(self, tenant: str) -> None:
        """Re-admit a previously evicted tenant."""
        self._require_live()
        self.orchestrator.evicted_tenants.discard(self._tenant_index(tenant))
        self._log_command(f"admit:{tenant}")

    def swap_routing(self, routing: str) -> None:
        """Swap the admission routing policy on the live fleet.

        The replacement router's RNG stream is derived from the current
        epoch, so the swap is deterministic in *when* it happens and
        independent of how much entropy the old router consumed.
        """
        self._require_live()
        self.orchestrator.swap_router(routing, seed=self.epoch)
        self._log_command(f"routing:{routing}")

    def grow(self) -> int:
        """Add one node to the live fleet; returns its index."""
        self._require_live()
        index = self.orchestrator.add_member()
        self._log_command(f"grow:{index}")
        return index

    def shrink(self) -> int:
        """Drain the highest-indexed active node out of the fleet.

        Returns the retired node's index. In-flight requests on the node
        complete; its batch jobs are requeued.
        """
        self._require_live()
        orchestrator = self.orchestrator
        active = [
            m.index
            for m in orchestrator.members
            if m.index not in orchestrator._retired
        ]
        if len(active) <= 1:
            raise ExperimentError("cannot shrink below one node")
        index = max(active)
        orchestrator.retire_member(index)
        self._log_command(f"shrink:{index}")
        return index

    def _autoscale(self, now: float) -> None:
        assert self.autoscaler is not None
        offered, _, _, _ = self.orchestrator.counters()
        delta = self.autoscaler.observe(
            self.epoch,
            offered,
            self.epoch_s,
            self.orchestrator.active_members,
            self.orchestrator._capacity,
        )
        if delta > 0:
            index = self.orchestrator.add_member()
            self._log_command(f"autoscale-grow:{index}")
        elif delta < 0 and self.orchestrator.active_members > 1:
            active = [
                m.index
                for m in self.orchestrator.members
                if m.index not in self.orchestrator._retired
            ]
            index = max(active)
            self.orchestrator.retire_member(index)
            self._log_command(f"autoscale-shrink:{index}")

    # ------------------------------------------------------- checkpointing
    def __getstate__(self) -> dict:
        """Drop the observer: it holds open file handles and is re-bound
        (or left off) by :meth:`restore`."""
        state = self.__dict__.copy()
        state["observer"] = None
        return state

    def save(self, path: str) -> dict:
        """Checkpoint the live service to ``path``; returns the metadata.

        The file is a pickled container: a small metadata dict (format
        tag, epoch, event-sequence watermark, trace digest) plus the
        pickled service graph as an opaque payload, so a restorer can
        validate compatibility before deserializing simulator state.
        """
        self._require_live()
        sim = self.orchestrator._sim
        assert sim is not None
        sequence_base = (
            max((entry[2] for entry in sim._heap), default=-1) + 1
        )
        meta = {
            "format": CHECKPOINT_FORMAT,
            "epoch": self.epoch,
            "time_s": self.time_s,
            "sequence_base": sequence_base,
            "trace_digest": self.trace_digest,
        }
        blob = dict(meta)
        blob["payload"] = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump(blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
        if self.observer is not None:
            self.observer.record("serve_checkpoint", **meta)
        return meta

    @classmethod
    def restore(
        cls,
        path: str,
        trace: "Trace | None" = None,
        observer: "RunObserver | None" = None,
    ) -> "FleetService":
        """Resume a checkpointed service, bit-identically.

        A trace-driven checkpoint requires the *same* trace (validated by
        content digest) — the checkpoint stores the replay cursor, not the
        trace columns. The global event-sequence counter is advanced past
        the checkpoint's watermark before any state is deserialized, so
        events created after the restore order exactly as they would have
        in the uninterrupted run.
        """
        blob = _read_checkpoint(path)
        if blob["trace_digest"] is not None:
            if trace is None:
                raise ConfigurationError(
                    "checkpoint is trace-driven; pass the driving trace"
                )
            if trace_digest(trace) != blob["trace_digest"]:
                raise ConfigurationError(
                    "trace does not match the checkpointed run "
                    "(content digest mismatch)"
                )
        elif trace is not None:
            raise ConfigurationError(
                "checkpoint is open-loop but a trace was passed"
            )
        _advance_event_sequence(blob["sequence_base"])
        service: FleetService = pickle.loads(blob["payload"])
        if trace is not None:
            service.orchestrator.reattach_trace(trace)
        service.observer = observer
        return service


def checkpoint_meta(path: str) -> dict:
    """Read a checkpoint's metadata without deserializing simulator state."""
    blob = _read_checkpoint(path)
    return {key: blob[key] for key in blob if key != "payload"}


def _read_checkpoint(path: str) -> dict:
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    except (pickle.UnpicklingError, EOFError) as exc:
        raise ConfigurationError(
            f"{path}: not a {CHECKPOINT_FORMAT} checkpoint ({exc})"
        ) from exc
    if not isinstance(blob, dict) or blob.get("format") != CHECKPOINT_FORMAT:
        raise ConfigurationError(f"{path}: not a {CHECKPOINT_FORMAT} checkpoint")
    return blob


def _advance_event_sequence(sequence_base: int) -> None:
    """Move the global event sequence counter past ``sequence_base``.

    Tie-break correctness, not cosmetics: pending checkpointed events keep
    their original (smaller) sequence numbers, and every event created
    after the restore must sort behind them at equal ``(time, priority)``
    — exactly as it would have in the uninterrupted process, where the
    counter is strictly monotonic. In-process restores may already be past
    the watermark; the counter never moves backwards.
    """
    import repro.sim.events as events_module

    current = next(events_module._SEQUENCE)
    events_module._SEQUENCE = itertools.count(max(sequence_base, current + 1))
