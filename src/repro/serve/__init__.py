"""repro.serve — the long-running fleet serving control plane.

Wraps the fleet orchestrator as an epoch-stepped service with live
control commands (admit/evict tenants, swap routing, grow/shrink the
fleet), a demand-driven autoscaler, obs-fed snapshots, and bit-identical
checkpoint/restore. See ``docs/serving.md``.
"""

from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.service import (
    CHECKPOINT_FORMAT,
    FleetService,
    checkpoint_meta,
)
from repro.serve.snapshot import ServiceSnapshot, take_snapshot

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "CHECKPOINT_FORMAT",
    "FleetService",
    "ServiceSnapshot",
    "checkpoint_meta",
    "take_snapshot",
]
