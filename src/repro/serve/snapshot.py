"""Live service snapshots — the obs-facing view of a running fleet.

A snapshot reads *pure counters only* (admission/completion totals, batch
queue statistics, incident alarm counts). It never syncs a throughput
meter or fluid work mid-interval: doing so would change the float
accumulation order and make an observed run diverge bit-for-bit from an
unobserved one. Observing a service is free, in the determinism sense.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.fleet.orchestrator import FleetOrchestrator


@dataclass(frozen=True)
class ServiceSnapshot:
    """One epoch boundary's counters, JSON-clean via :meth:`as_dict`."""

    epoch: int
    time_s: float
    #: Cumulative counted totals at this boundary.
    offered: int
    completed: int
    good: int
    dropped: int
    #: Deltas over the last epoch.
    epoch_offered: int
    epoch_completed: int
    #: good / offered so far (1.0 when nothing offered yet).
    attainment: float
    #: Fleet membership at the boundary.
    nodes_active: int
    nodes_built: int
    nodes_retired: int
    #: Batch tier counters (zero without a batch tier).
    batch_placements: int
    batch_evictions: int
    batch_requeues: int
    #: Incident alarms fired so far (zero without an incident engine).
    incident_alarms: int

    def as_dict(self) -> dict:
        """A JSON-clean row (e.g. for ``RunObserver.record``)."""
        return asdict(self)


def take_snapshot(
    orchestrator: "FleetOrchestrator",
    epoch: int,
    time_s: float,
    prev_offered: int,
    prev_completed: int,
) -> ServiceSnapshot:
    """Assemble a snapshot from the orchestrator's pure counters."""
    offered, completed, good, _ = orchestrator.counters()
    queue = orchestrator.queue
    hooks = orchestrator.hooks
    alarms = getattr(hooks, "alarms", None) if hooks is not None else None
    return ServiceSnapshot(
        epoch=epoch,
        time_s=time_s,
        offered=offered,
        completed=completed,
        good=good,
        dropped=orchestrator.requests_dropped,
        epoch_offered=offered - prev_offered,
        epoch_completed=completed - prev_completed,
        attainment=good / offered if offered else 1.0,
        nodes_active=orchestrator.active_members,
        nodes_built=len(orchestrator.members),
        nodes_retired=len(orchestrator.members) - orchestrator.active_members,
        batch_placements=queue.stats.placements if queue is not None else 0,
        batch_evictions=queue.stats.evictions if queue is not None else 0,
        batch_requeues=queue.stats.requeues if queue is not None else 0,
        incident_alarms=len(alarms) if alarms is not None else 0,
    )
