"""Per-core L2 prefetcher state and its traffic/performance effects.

Intel exposes four prefetchers per core behind MSR ``0x1A4``; the paper's
KP-SD/KP policies progressively disable prefetchers on the cores running
low-priority tasks to cut speculative memory traffic (Section IV-B). We model
each core's prefetchers as a single on/off state (the paper also sweeps a
*fraction* of prefetchers disabled, which maps to the fraction of a task's
cores with prefetching off).

Effects are interpolated per task between two endpoints supplied by the
workload profile:

* prefetchers **on**: demand inflated by ``traffic_gain`` (speculative
  over-fetch), full speed;
* prefetchers **off**: demand scaled by ``off_demand`` (< 1 — demand misses
  only; streaming kernels lose most of their achieved bandwidth), speed
  scaled by ``off_speed`` (< 1 — no latency hiding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import clamp


@dataclass(frozen=True)
class PrefetchProfile:
    """How a workload responds to its prefetchers being toggled."""

    #: Traffic multiplier with prefetchers enabled (>= 1).
    traffic_gain: float = 1.30
    #: Useful-demand multiplier with prefetchers disabled (0..1].
    off_demand: float = 0.55
    #: Speed multiplier with prefetchers disabled (0..1].
    off_speed: float = 0.60

    def __post_init__(self) -> None:
        if self.traffic_gain < 1.0:
            raise ConfigurationError("traffic_gain must be >= 1")
        if not 0.0 < self.off_demand <= 1.0:
            raise ConfigurationError("off_demand must be in (0, 1]")
        if not 0.0 < self.off_speed <= 1.0:
            raise ConfigurationError("off_speed must be in (0, 1]")

    def demand_factor(self, enabled_fraction: float) -> float:
        """Traffic multiplier when ``enabled_fraction`` of cores prefetch."""
        f = clamp(enabled_fraction, 0.0, 1.0)
        return self.off_demand + f * (self.traffic_gain - self.off_demand)

    def speed_factor(self, enabled_fraction: float) -> float:
        """Speed multiplier when ``enabled_fraction`` of cores prefetch."""
        f = clamp(enabled_fraction, 0.0, 1.0)
        return self.off_speed + f * (1.0 - self.off_speed)


class PrefetcherBank:
    """Per-core prefetcher enable bits for a whole machine."""

    #: Bound on the per-cpuset fraction memo (cpusets are few and stable).
    _FRACTION_MEMO_SIZE = 256

    def __init__(self, total_cores: int) -> None:
        if total_cores <= 0:
            raise ConfigurationError("total_cores must be positive")
        self._enabled = [True] * total_cores
        #: Bumped on every state change; versions the fraction memo.
        self._version = 0
        #: cpuset -> (version, fraction). The solver asks for the same few
        #: cpusets on every solve, so this is consulted on the hot path.
        self._fraction_memo: dict[frozenset[int], tuple[int, float]] = {}

    @property
    def total_cores(self) -> int:
        """Number of cores tracked."""
        return len(self._enabled)

    @property
    def version(self) -> int:
        """Monotonic state-change counter (for external memo keys)."""
        return self._version

    def is_enabled(self, core: int) -> bool:
        """Whether ``core``'s prefetchers are on."""
        self._check(core)
        return self._enabled[core]

    def set_enabled(self, core: int, enabled: bool) -> None:
        """Enable or disable ``core``'s prefetchers."""
        self._check(core)
        if self._enabled[core] != enabled:
            self._enabled[core] = enabled
            self._version += 1

    def enabled_fraction(self, cores: frozenset[int]) -> float:
        """Fraction of the given cores with prefetchers enabled."""
        if not cores:
            return 1.0
        memo = self._fraction_memo.get(cores)
        if memo is not None and memo[0] == self._version:
            return memo[1]
        for core in cores:
            self._check(core)
        on = sum(1 for core in cores if self._enabled[core])
        fraction = on / len(cores)
        if len(self._fraction_memo) >= self._FRACTION_MEMO_SIZE:
            self._fraction_memo.clear()
        self._fraction_memo[cores] = (self._version, fraction)
        return fraction

    def enable_all(self) -> None:
        """Re-enable prefetchers on every core."""
        if not all(self._enabled):
            self._version += 1
        self._enabled = [True] * len(self._enabled)

    def _check(self, core: int) -> None:
        if not 0 <= core < len(self._enabled):
            raise ConfigurationError(f"core {core} out of range")
