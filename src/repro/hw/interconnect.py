"""Cross-socket interconnect (UPI/QPI) model.

Remote memory traffic — threads on socket A accessing DRAM homed on socket B —
has three effects the paper measures (Section VI-A, Figs 15–16):

1. it consumes bandwidth at the *home* controller, amplified by the
   directory/snoop coherence overhead;
2. it occupies the UPI link, whose utilization adds latency to every remote
   access;
3. coherence work injected into the home socket inflates memory latency for
   *local* requesters there too — with a platform-specific sensitivity that
   is markedly higher on Cloud TPU hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.spec import UpiSpec
from repro.units import clamp


@dataclass(frozen=True)
class UpiLoad:
    """Resolved state of one UPI direction for the current fluid epoch."""

    demand_gbps: float
    utilization: float
    #: Grant ratio for traffic crossing the link, in (0, 1].
    grant_ratio: float
    #: Extra latency factor applied to remote accesses over this link.
    remote_latency_factor: float


class UpiModel:
    """Analytic model of the socket-to-socket link (one per direction)."""

    def __init__(self, spec: UpiSpec) -> None:
        if spec.peak_bw_gbps <= 0:
            raise ConfigurationError("UPI peak bandwidth must be positive")
        self.spec = spec

    def resolve(self, demand_gbps: float) -> UpiLoad:
        """Resolve link state for an offered cross-socket demand."""
        if demand_gbps < 0:
            raise ConfigurationError(f"negative UPI demand {demand_gbps}")
        peak = self.spec.peak_bw_gbps
        delivered = min(demand_gbps, peak)
        grant = 1.0 if demand_gbps <= peak else peak / demand_gbps
        utilization = delivered / peak
        # Remote accesses pay the hop plus queueing on the link.
        u = clamp(utilization, 0.0, 0.999)
        remote_latency = 1.25 + 0.6 * (u ** 2) / (1.0 - u)
        return UpiLoad(
            demand_gbps=demand_gbps,
            utilization=utilization,
            grant_ratio=grant,
            remote_latency_factor=min(remote_latency, 8.0),
        )

    def coherence_demand(self, remote_traffic_gbps: float) -> float:
        """Extra demand injected at the home controller by remote traffic."""
        return remote_traffic_gbps * self.spec.coherence_overhead

    def home_latency_injection(
        self, utilization: float, remote_sensitivity: float
    ) -> float:
        """Additive latency-factor term for the *home* socket's requesters.

        Scales with link utilization and the platform's remote sensitivity;
        this is the mechanism behind the Cloud TPU platform's outsized
        vulnerability to remote aggressors.
        """
        u = clamp(utilization, 0.0, 1.0)
        return self.spec.latency_injection * remote_sensitivity * (u ** 1.5)
