"""Immutable hardware specifications and the three host-platform presets.

The paper evaluates on three accelerated platforms (Table I): a TPUv1 host,
a Cloud TPU host and a GPU host. All are dual-socket Xeon-class servers; the
Cloud TPU host carries a markedly higher sensitivity to cross-socket
(remote) memory traffic (Section VI-A attributes this to coherence-protocol
implementation choices), which we expose as ``remote_sensitivity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryControllerSpec:
    """One channel group (one NUMA subdomain's worth of DRAM channels)."""

    #: Peak deliverable bandwidth of this channel group, GB/s.
    peak_bw_gbps: float = 38.4
    #: Unloaded access latency, ns (used only for reporting; the solver works
    #: in dimensionless latency factors over this baseline).
    base_latency_ns: float = 85.0
    #: Queueing-curve coefficient: ``lat = 1 + a * u^b / (1 - u)``. The
    #: curve starts climbing from ~50 % utilization, as measured DDR4 loaded
    #: latency does — this is what makes shared-channel runtimes (CT) pay a
    #: latency tax at any useful throughput.
    latency_curve_a: float = 0.18
    #: Queueing-curve exponent.
    latency_curve_b: float = 2.0
    #: Cap on the loaded-latency factor (DDR4 loaded latency tops out around
    #: 4x unloaded before the controller simply runs out of bandwidth).
    latency_factor_cap: float = 4.0
    #: Demand/peak ratio at which the distress signal starts asserting.
    distress_start: float = 0.92
    #: Demand/peak span over which distress saturates to 100 % of cycles.
    distress_span: float = 0.80

    def __post_init__(self) -> None:
        if self.peak_bw_gbps <= 0:
            raise ConfigurationError("peak_bw_gbps must be positive")
        if not 0.0 < self.distress_start:
            raise ConfigurationError("distress_start must be positive")
        if self.distress_span <= 0:
            raise ConfigurationError("distress_span must be positive")


@dataclass(frozen=True)
class LlcSpec:
    """Socket-level last-level cache, way-partitionable via CAT."""

    #: Total capacity, MB.
    capacity_mb: float = 32.0
    #: Number of allocation ways (CAT granularity).
    ways: int = 16

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0 or self.ways <= 0:
            raise ConfigurationError("LLC capacity and ways must be positive")

    @property
    def mb_per_way(self) -> float:
        """Capacity of a single allocation way, MB."""
        return self.capacity_mb / self.ways


@dataclass(frozen=True)
class UpiSpec:
    """Cross-socket interconnect (UPI/QPI) characteristics."""

    #: Effective per-direction bandwidth, GB/s.
    peak_bw_gbps: float = 31.0
    #: Extra demand injected at the home memory controller per byte of
    #: remote traffic (directory/snoop amplification).
    coherence_overhead: float = 0.15
    #: How strongly UPI utilization inflates memory latency on the home
    #: socket; multiplied by the platform's ``remote_sensitivity`` — the
    #: dominant term behind the Cloud TPU platform's Fig 15/16 behaviour.
    latency_injection: float = 0.7


@dataclass(frozen=True)
class PcieSpec:
    """Host-to-accelerator PCIe link."""

    #: Effective bandwidth per direction, GB/s.
    peak_bw_gbps: float = 12.0


@dataclass(frozen=True)
class SocketSpec:
    """One processor package."""

    cores: int = 16
    smt: int = 2
    llc: LlcSpec = field(default_factory=LlcSpec)
    #: One spec per channel group; SNC exposes each as a NUMA subdomain.
    memory_controllers: tuple[MemoryControllerSpec, ...] = field(
        default_factory=lambda: (MemoryControllerSpec(), MemoryControllerSpec())
    )
    #: Fractional core slowdown at 100 % distress (socket-wide throttling
    #: broadcast by a saturated memory controller; Section IV-B).
    backpressure_strength: float = 0.52

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("socket must have cores")
        if not self.memory_controllers:
            raise ConfigurationError(
                "the subdomain model requires at least one channel group "
                "per socket"
            )
        if self.cores < len(self.memory_controllers):
            raise ConfigurationError(
                "socket needs at least one core per channel group "
                f"(cores={self.cores}, channel groups="
                f"{len(self.memory_controllers)})"
            )
        if not 0.0 <= self.backpressure_strength < 1.0:
            raise ConfigurationError("backpressure_strength must be in [0,1)")

    @property
    def peak_bw_gbps(self) -> float:
        """Aggregate socket memory bandwidth, GB/s."""
        return sum(mc.peak_bw_gbps for mc in self.memory_controllers)


@dataclass(frozen=True)
class MachineSpec:
    """A complete dual-socket host."""

    name: str = "generic-host"
    sockets: tuple[SocketSpec, ...] = field(
        default_factory=lambda: (SocketSpec(), SocketSpec())
    )
    upi: UpiSpec = field(default_factory=UpiSpec)
    pcie: PcieSpec = field(default_factory=PcieSpec)
    #: Multiplier on how much cross-socket coherence traffic degrades the
    #: home socket's memory latency (Cloud TPU hosts are notably high).
    remote_sensitivity: float = 1.0
    #: Local-access latency benefit when SNC is enabled: accesses confined to
    #: the local subdomain are this factor faster (paper: "slightly better
    #: than standalone" for CNN1/CNN2 under light pressure).
    snc_local_latency_bonus: float = 0.06
    #: Residual cross-subdomain coupling under SNC: the on-chip mesh and LLC
    #: coherence engine are still shared, so a busy sibling subdomain adds
    #: this much latency factor per unit of its utilization. This is why
    #: subdomains are "almost", not perfectly, isolating even below the
    #: distress threshold.
    mesh_coupling: float = 0.28

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ConfigurationError("machine needs at least one socket")
        if self.remote_sensitivity < 0:
            raise ConfigurationError("remote_sensitivity must be >= 0")

    @property
    def total_cores(self) -> int:
        """Total physical core count across sockets."""
        return sum(s.cores for s in self.sockets)

    def with_name(self, name: str) -> "MachineSpec":
        """Return a copy of this spec under a different name."""
        return replace(self, name=name)


def tpu_host_spec() -> MachineSpec:
    """Host platform for the first-generation TPU (runs RNN1 inference)."""
    return MachineSpec(name="tpu-host", remote_sensitivity=0.7)


def cloud_tpu_host_spec() -> MachineSpec:
    """Host platform for Cloud TPU (runs CNN1/CNN2 training).

    This platform is the one the paper singles out as unusually sensitive to
    remote memory traffic crossing socket boundaries (Fig 15/16).
    """
    return MachineSpec(name="cloud-tpu-host", remote_sensitivity=2.6)


def gpu_host_spec() -> MachineSpec:
    """Host platform for the GPU trainer (runs CNN3 with parameter servers)."""
    return MachineSpec(name="gpu-host", remote_sensitivity=0.8)
