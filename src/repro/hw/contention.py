"""The fluid contention solver.

Every time anything in the machine changes (a phase starts or ends, a policy
reconfigures placements, prefetchers are toggled), the solver converts the
set of active *traffic sources* into a :class:`SolveResult`: per-controller
loads, per-socket distress pressure, UPI state, and per-source rate factors.
Workloads combine those factors with their own phase profiles to obtain the
speed at which their fluid work drains.

The solve is a small fixed-point iteration: the distress-driven core
throttling reduces the demand cores can generate, which reduces distress.
Damped iteration converges in a handful of rounds.

Performance layer
-----------------

Workloads cycle through a small recurring set of source configurations, so
the solver keeps a bounded LRU memo keyed on a canonical *solve signature*
(see :meth:`ContentionSolver.solve_signature`). The signature covers every
input the solve reads:

* the ordered, canonicalized active source set (all profile fields),
* per-source prefetcher-bank state (the enabled fraction over its cores),
* the solver knobs (``snc_enabled``, ``priority_mode``,
  ``qos_aware_prefetch``, the per-CLOS ``mba_caps``), and
* the per-socket LLC CAT mask state.

Anything that can change a solve's outcome MUST be part of the signature —
adding a solver knob without extending the signature produces stale-cache
bugs (see docs/model.md §"Solve signature invariants"). Per-source
prefetch/LLC/SMT *static factors* are additionally memoized independently,
so partial state changes (e.g. only an MBA cap moved) skip the O(n²) SMT
pass and the per-way LLC allocation instead of recomputing from scratch.

Cache observability flows through :class:`SolverStats` (per solver and the
module-level aggregate), surfaced via ``Machine.solver_stats`` and the
experiment harness. Set ``REPRO_SOLVER_CACHE=0`` (or call
:func:`set_cache_default`) to disable all solver caching; the cached and
uncached paths are numerically identical, which the test suite asserts.
"""

from __future__ import annotations

import enum
import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hw.backpressure import SocketPressure, socket_pressure
from repro.hw.interconnect import UpiLoad, UpiModel
from repro.hw.llc import LlcModel, LlcRequest
from repro.hw.memory import McLoad, MemoryControllerModel, idle_load
from repro.hw.prefetcher import PrefetchProfile, PrefetcherBank
from repro.hw.spec import MachineSpec
from repro.hw.topology import Topology
from repro.units import clamp

#: Cross-subdomain (same socket) access latency penalty when SNC is on.
_SNC_CROSS_PENALTY = 1.05

#: Default bound on the per-solver solve-result memo.
DEFAULT_SOLVE_CACHE_SIZE = 256
#: Bound on each per-component static-factor memo (LLC / SMT / prefetch).
_STATIC_CACHE_SIZE = 512

#: Environment switch: ``REPRO_SOLVER_CACHE=0`` disables all solver caching.
_CACHE_ENV = "REPRO_SOLVER_CACHE"

_cache_default_enabled: bool | None = None


def cache_default_enabled() -> bool:
    """Whether new solvers are built with caching enabled."""
    if _cache_default_enabled is not None:
        return _cache_default_enabled
    return os.environ.get(_CACHE_ENV, "1") != "0"


def set_cache_default(enabled: bool | None) -> None:
    """Override the process-wide cache default (``None`` = follow the env).

    Only affects solvers constructed afterwards; used by the equivalence
    tests and the benchmark harness to A/B the cached and uncached paths.
    """
    global _cache_default_enabled
    _cache_default_enabled = enabled


class Priority(enum.IntEnum):
    """Task priority classes (the paper's high-priority ML vs best-effort)."""

    LOW = 0
    HIGH = 1


@dataclass
class SolverStats:
    """Counters describing the solver's work and cache behaviour."""

    #: Total :meth:`ContentionSolver.solve` calls (including cached ones).
    solves: int = 0
    #: Solves answered from the solve-result memo.
    cache_hits: int = 0
    #: Solves that had to run the full fixed point.
    cache_misses: int = 0
    #: Machine-level re-solves skipped because the signature was unchanged.
    signature_short_circuits: int = 0
    #: Total fixed-point resolve passes executed across all full solves.
    fixed_point_rounds: int = 0
    #: Static-factor sub-results (LLC / SMT / prefetch) served from memo.
    static_reuse: int = 0

    @property
    def hit_rate(self) -> float:
        """Memo hit rate over solves that consulted the cache, in [0, 1]."""
        consulted = self.cache_hits + self.cache_misses
        return self.cache_hits / consulted if consulted else 0.0

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot (for telemetry/JSON reporting)."""
        return {
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "signature_short_circuits": self.signature_short_circuits,
            "fixed_point_rounds": self.fixed_point_rounds,
            "static_reuse": self.static_reuse,
        }

    def add(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.solves += other.solves
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.signature_short_circuits += other.signature_short_circuits
        self.fixed_point_rounds += other.fixed_point_rounds
        self.static_reuse += other.static_reuse

    def reset(self) -> None:
        """Zero every counter."""
        self.solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.signature_short_circuits = 0
        self.fixed_point_rounds = 0
        self.static_reuse = 0


#: Process-wide aggregate over every solver (fleet-level observability).
GLOBAL_STATS = SolverStats()


def global_stats() -> SolverStats:
    """The process-wide aggregate :class:`SolverStats`."""
    return GLOBAL_STATS


def reset_global_stats() -> None:
    """Zero the process-wide aggregate counters."""
    GLOBAL_STATS.reset()


@dataclass(frozen=True)
class TrafficSource:
    """One stream of host activity competing for shared resources.

    A task usually contributes a single source; the RNN1 inference server
    aggregates all lanes currently in a CPU phase into one source whose demand
    scales with the number of active lanes.
    """

    source_id: str
    task_id: str
    #: Useful memory-bandwidth demand at full speed, GB/s, before prefetch
    #: inflation, LLC-miss inflation, CPU-share and throttle scaling.
    demand_gbps: float
    #: Subdomain id -> fraction of traffic routed there (normalized).
    mem_weights: dict[int, float]
    #: Cores the generating threads run on (must be on a single socket).
    cores: frozenset[int]
    #: Number of runnable threads (for CPU-share computation).
    threads: int = 1
    clos: int = 0
    priority: Priority = Priority.LOW
    prefetch: PrefetchProfile = field(default_factory=PrefetchProfile)
    #: Hot working set in the socket LLC, MB (0 = cache-oblivious).
    working_set_mb: float = 0.0
    #: Relative LLC access intensity (see :class:`~repro.hw.llc.LlcRequest`).
    llc_intensity: float = 1.0
    #: Demand multiplier at 0 % LLC hit rate (misses become DRAM traffic).
    llc_miss_traffic_gain: float = 0.0
    #: Speed multiplier lost at 0 % LLC hit rate.
    llc_speed_sensitivity: float = 0.0
    #: How strongly this source degrades SMT siblings sharing its cores.
    smt_aggression: float = 0.0
    #: How strongly this source suffers from SMT siblings on its cores.
    smt_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_gbps < 0:
            raise ConfigurationError("demand_gbps must be >= 0")
        if self.threads <= 0:
            raise ConfigurationError("threads must be positive")
        if not self.cores:
            raise ConfigurationError("source needs at least one core")

    def canonical_key(self) -> tuple:
        """A hashable tuple covering every solve-relevant field.

        ``mem_weights`` and ``cores`` are canonicalized by sorting so that
        two sources with equal routing/placement hash identically regardless
        of construction order.
        """
        return (
            self.source_id,
            self.task_id,
            self.demand_gbps,
            tuple(sorted(self.mem_weights.items())),
            tuple(sorted(self.cores)),
            self.threads,
            self.clos,
            int(self.priority),
            self.prefetch,
            self.working_set_mb,
            self.llc_intensity,
            self.llc_miss_traffic_gain,
            self.llc_speed_sensitivity,
            self.smt_aggression,
            self.smt_sensitivity,
        )


@dataclass(frozen=True)
class SourceRates:
    """Per-source factors produced by one solve."""

    #: Achieved/offered bandwidth ratio across the source's routing, (0, 1].
    bw_grant: float
    #: Effective loaded-latency factor (weighted over routing; includes SNC
    #: bonus/penalty, UPI hop latency and home-socket coherence injection).
    latency_factor: float
    #: Socket-wide distress throttle applied to the source's cores.
    core_throttle: float
    #: Prefetcher latency-hiding speed factor for the source's cores.
    prefetch_speed: float
    #: LLC hit fraction resolved for this source.
    llc_hit: float
    #: Speed multiplier from LLC misses, (0, 1].
    llc_speed: float
    #: Speed multiplier from SMT sibling pressure, (0, 1].
    smt_factor: float
    #: min(1, cores/threads): core-count share from CPU-mask throttling.
    cpu_share: float
    #: Core-path slowdown from the MBA rate controller. Intel's MBA sits
    #: between the core and the LLC, so throttling a CLOS's memory requests
    #: also costs it LLC bandwidth — the Section VI-D criticism. 1.0 when
    #: the CLOS is uncapped.
    mba_core_factor: float = 1.0
    #: Request-issue share left by the MBA throttle (the MB% cap itself);
    #: stretches the memory-bound part of the capped task's phases.
    mba_issue: float = 1.0

    def compute_speed(self) -> float:
        """Multiplier for the non-memory-bound (compute) part of a phase.

        Core occupancy effects — SMT sibling pressure, CPU-mask sharing and
        the MBA core-to-LLC rate controller — slow instruction execution
        itself; memory-side effects do not.
        """
        return self.smt_factor * self.cpu_share * self.mba_core_factor

    def memory_stretch(self, bw_bound_weight: float) -> float:
        """Time-stretch of the memory-bound part of a phase.

        ``bw_bound_weight`` blends bandwidth-bound behaviour (stretch =
        1/grant) with latency-bound behaviour (stretch = latency factor).
        The distress core-throttle slows request issue, disabled prefetchers
        stop hiding latency, and LLC misses add trips to DRAM — all three
        stretch the memory-bound portion of a phase, not its compute.
        """
        w = clamp(bw_bound_weight, 0.0, 1.0)
        bw_stretch = 1.0 / max(self.bw_grant, 1e-9)
        raw = w * bw_stretch + (1.0 - w) * self.latency_factor
        issue = max(
            self.core_throttle
            * self.prefetch_speed
            * self.llc_speed
            * self.mba_issue,
            1e-6,
        )
        return raw / issue


@dataclass(frozen=True)
class SolveResult:
    """Machine-wide outcome of one contention solve.

    Instances may be shared between solves through the solver memo; treat
    them (and their maps) as immutable.
    """

    mc_loads: dict[int, McLoad]
    socket_pressures: dict[int, SocketPressure]
    upi_loads: dict[tuple[int, int], UpiLoad]
    source_rates: dict[str, SourceRates]

    def rates_for(self, source_id: str) -> SourceRates:
        """Rates for ``source_id``; unknown sources see an idle machine."""
        rates = self.source_rates.get(source_id)
        if rates is not None:
            return rates
        return IDLE_RATES


#: Rates seen by a source on an otherwise idle machine.
IDLE_RATES = SourceRates(
    bw_grant=1.0,
    latency_factor=1.0,
    core_throttle=1.0,
    prefetch_speed=1.0,
    llc_hit=1.0,
    llc_speed=1.0,
    smt_factor=1.0,
    cpu_share=1.0,
)


def empty_solve_result(spec: MachineSpec) -> SolveResult:
    """The solve result of a machine with no active sources."""
    topo = Topology(spec)
    mc_loads = {
        mc_id: idle_load(topo.mc_spec_of_subdomain(mc_id))
        for mc_id in topo.mc_ids()
    }
    pressures = {
        s: SocketPressure(saturation=0.0, core_throttle=1.0)
        for s in range(topo.num_sockets)
    }
    return SolveResult(
        mc_loads=mc_loads, socket_pressures=pressures, upi_loads={}, source_rates={}
    )


def _lru_get(cache: OrderedDict, key):
    """Fetch + refresh an LRU entry (``None`` on miss)."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _lru_put(cache: OrderedDict, key, value, cap: int) -> None:
    """Insert an LRU entry, evicting the oldest beyond ``cap``."""
    if cap <= 0:
        return
    cache[key] = value
    while len(cache) > cap:
        cache.popitem(last=False)


class ContentionSolver:
    """Resolves traffic sources into rate factors for one machine."""

    def __init__(
        self,
        spec: MachineSpec,
        topology: Topology,
        prefetchers: PrefetcherBank,
        llcs: dict[int, LlcModel],
        cache_size: int | None = None,
    ) -> None:
        self.spec = spec
        self.topology = topology
        self.prefetchers = prefetchers
        self.llcs = llcs
        self._mc_models: dict[int, MemoryControllerModel] = {
            mc_id: MemoryControllerModel(topology.mc_spec_of_subdomain(mc_id))
            for mc_id in topology.mc_ids()
        }
        self._upi = UpiModel(spec.upi)
        #: Request-level prioritization at the controllers (HW-QoS estimate).
        self.priority_mode = False
        #: Per-CLOS offered-demand caps (the resctrl MBA actuator), 0..1.
        self.mba_caps: dict[int, float] = {}
        #: Whether sub-NUMA clustering is enabled (affects latency bonuses).
        self.snc_enabled = False
        #: QoS-aware hardware prefetching (Section VI-B): low-priority
        #: prefetchers self-throttle instantly in proportion to the home
        #: socket's memory saturation — no software sampling loop involved.
        self.qos_aware_prefetch = False

        # ------------------------------------------------ performance layer
        #: Master switch for the solve memo and static-factor memos. When
        #: off, every solve recomputes from scratch (the reference path).
        self.cache_enabled = cache_default_enabled()
        self.cache_size = (
            DEFAULT_SOLVE_CACHE_SIZE if cache_size is None else cache_size
        )
        self.stats = SolverStats()
        self._solve_cache: OrderedDict[tuple, SolveResult] = OrderedDict()
        self._llc_cache: OrderedDict[tuple, dict[str, float]] = OrderedDict()
        self._smt_cache: OrderedDict[tuple, dict[str, float]] = OrderedDict()
        self._pf_cache: OrderedDict[tuple, tuple[float, float]] = OrderedDict()
        self._empty_result: SolveResult | None = None

    # ------------------------------------------------------------ caching
    def _knob_signature(self) -> tuple:
        return (
            self.snc_enabled,
            self.priority_mode,
            self.qos_aware_prefetch,
            tuple(sorted(self.mba_caps.items())),
        )

    def _llc_state_signature(self) -> tuple:
        return tuple(
            (socket_id, llc.state_key())
            for socket_id, llc in sorted(self.llcs.items())
        )

    def source_signature(self, source: TrafficSource) -> tuple:
        """Canonical per-source key, including its prefetcher-bank state."""
        return source.canonical_key() + (
            self.prefetchers.enabled_fraction(source.cores),
        )

    def solve_signature(self, sources: list[TrafficSource]) -> tuple | None:
        """The canonical, hashable key of one solve.

        Covers the ordered active source set (with per-source prefetcher
        state), the solver knobs, and the LLC CAT mask state — i.e. every
        mutable input :meth:`solve` reads. Returns ``None`` when caching is
        disabled (callers then always re-solve).
        """
        if not self.cache_enabled:
            return None
        return (
            tuple(self.source_signature(s) for s in sources),
            self._knob_signature(),
            self._llc_state_signature(),
        )

    def clear_caches(self) -> None:
        """Drop all memoized state (solve results and static factors)."""
        self._solve_cache.clear()
        self._llc_cache.clear()
        self._smt_cache.clear()
        self._pf_cache.clear()

    def note_short_circuit(self) -> None:
        """Record that a machine-level re-solve was skipped entirely."""
        self.stats.signature_short_circuits += 1
        GLOBAL_STATS.signature_short_circuits += 1

    # ------------------------------------------------------------ helpers
    def _socket_of_source(self, source: TrafficSource) -> int:
        sockets = {self.topology.socket_of_core(c) for c in source.cores}
        if len(sockets) != 1:
            raise ConfigurationError(
                f"source {source.source_id} spans sockets {sorted(sockets)}"
            )
        return next(iter(sockets))

    def _subdomains_of_source(self, source: TrafficSource) -> set[int]:
        return {self.topology.subdomain_of_core(c) for c in source.cores}

    # ------------------------------------------------------ static factors
    # The three per-source "static" factor families (prefetch, LLC, SMT) do
    # not depend on the fixed point, only on slices of the source set and
    # hardware state. Each family is memoized on exactly the state it reads,
    # so a solve whose signature differs only in, say, an MBA cap reuses all
    # three instead of redoing the per-way LLC split and the O(n²) SMT pass.

    def _prefetch_factors(self, source: TrafficSource) -> tuple[float, float]:
        """(demand_factor, speed_factor) for one source's prefetch state."""
        enabled = self.prefetchers.enabled_fraction(source.cores)
        if not self.cache_enabled:
            return (
                source.prefetch.demand_factor(enabled),
                source.prefetch.speed_factor(enabled),
            )
        key = (source.prefetch, enabled)
        hit = _lru_get(self._pf_cache, key)
        if hit is not None:
            self.stats.static_reuse += 1
            GLOBAL_STATS.static_reuse += 1
            return hit
        value = (
            source.prefetch.demand_factor(enabled),
            source.prefetch.speed_factor(enabled),
        )
        _lru_put(self._pf_cache, key, value, _STATIC_CACHE_SIZE)
        return value

    def _llc_hit_fractions(
        self, by_socket: dict[int, list[TrafficSource]]
    ) -> dict[str, float]:
        """Per-source LLC hit fractions, memoized per socket."""
        llc_hit: dict[str, float] = {}
        for socket_id, socket_sources in by_socket.items():
            request_key = tuple(
                (s.source_id, s.working_set_mb, s.clos, s.llc_intensity)
                for s in socket_sources
            )
            key = (socket_id, self.llcs[socket_id].state_key(), request_key)
            cached = _lru_get(self._llc_cache, key) if self.cache_enabled else None
            if cached is not None:
                self.stats.static_reuse += 1
                GLOBAL_STATS.static_reuse += 1
                llc_hit.update(cached)
                continue
            requests = [
                LlcRequest(
                    task_id=s.source_id,
                    working_set_mb=s.working_set_mb,
                    clos=s.clos,
                    intensity=s.llc_intensity,
                )
                for s in socket_sources
            ]
            fractions = self.llcs[socket_id].hit_fractions(requests)
            if self.cache_enabled:
                _lru_put(self._llc_cache, key, fractions, _STATIC_CACHE_SIZE)
            llc_hit.update(fractions)
        return llc_hit

    def _smt_factors(self, sources: list[TrafficSource]) -> dict[str, float]:
        """SMT sibling-pressure factors, memoized on the overlap-relevant
        slice of the source set (cores + SMT coefficients)."""
        key = tuple(
            (s.source_id, tuple(sorted(s.cores)), s.smt_aggression, s.smt_sensitivity)
            for s in sources
        )
        if self.cache_enabled:
            cached = _lru_get(self._smt_cache, key)
            if cached is not None:
                self.stats.static_reuse += 1
                GLOBAL_STATS.static_reuse += 1
                return cached
        smt: dict[str, float] = {}
        for source in sources:
            worst = 0.0
            for other in sources:
                if other.source_id == source.source_id:
                    continue
                overlap = len(source.cores & other.cores)
                if not overlap:
                    continue
                fraction = overlap / len(source.cores)
                worst = max(worst, other.smt_aggression * fraction)
            smt[source.source_id] = clamp(
                1.0 - source.smt_sensitivity * worst, 0.05, 1.0
            )
        if self.cache_enabled:
            _lru_put(self._smt_cache, key, smt, _STATIC_CACHE_SIZE)
        return smt

    def _static_factors(
        self, sources: list[TrafficSource]
    ) -> tuple[dict[str, float], dict[str, float], dict[str, float], dict[str, float]]:
        """Per-source factors that do not depend on the fixed point.

        Returns (prefetch_demand, prefetch_speed, llc_hit, smt_factor) maps.
        The prefetch maps are freshly built per call (the QoS-aware-prefetch
        branch mutates them); LLC and SMT maps may be memo-shared and must
        not be mutated.
        """
        pf_demand: dict[str, float] = {}
        pf_speed: dict[str, float] = {}
        for source in sources:
            demand, speed = self._prefetch_factors(source)
            pf_demand[source.source_id] = demand
            pf_speed[source.source_id] = speed

        by_socket: dict[int, list[TrafficSource]] = {}
        for source in sources:
            by_socket.setdefault(self._socket_of_source(source), []).append(source)
        llc_hit = self._llc_hit_fractions(by_socket)
        smt = self._smt_factors(sources)
        return pf_demand, pf_speed, llc_hit, smt

    def _routing_latency_adjust(self, source: TrafficSource, subdomain: int) -> float:
        """SNC locality bonus/penalty for traffic to ``subdomain``."""
        if not self.snc_enabled:
            return 1.0
        source_subdomains = self._subdomains_of_source(source)
        if subdomain in source_subdomains:
            return 1.0 - self.spec.snc_local_latency_bonus
        if self.topology.socket_of_subdomain(subdomain) == self._socket_of_source(
            source
        ):
            return _SNC_CROSS_PENALTY
        return 1.0  # cross-socket handled via UPI terms

    # -------------------------------------------------------------- solve
    def solve(
        self, sources: list[TrafficSource], signature: tuple | None = None
    ) -> SolveResult:
        """Resolve the machine state for the given active sources.

        ``signature`` may carry a pre-computed :meth:`solve_signature` (the
        machine's recompute loop computes it anyway for its short-circuit
        check); when omitted it is derived here.
        """
        self.stats.solves += 1
        GLOBAL_STATS.solves += 1
        if not sources:
            if self._empty_result is None:
                self._empty_result = empty_solve_result(self.spec)
            return self._empty_result

        if self.cache_enabled:
            if signature is None:
                signature = self.solve_signature(sources)
            cached = _lru_get(self._solve_cache, signature)
            if cached is not None:
                self.stats.cache_hits += 1
                GLOBAL_STATS.cache_hits += 1
                return cached
            self.stats.cache_misses += 1
            GLOBAL_STATS.cache_misses += 1

        result = self._solve(sources)
        if self.cache_enabled and signature is not None:
            _lru_put(self._solve_cache, signature, result, self.cache_size)
        return result

    def _solve(self, sources: list[TrafficSource]) -> SolveResult:
        """The full fixed-point computation (reference path, cache-free)."""
        pf_demand, pf_speed, llc_hit, smt = self._static_factors(sources)
        source_socket = {s.source_id: self._socket_of_source(s) for s in sources}

        def offered_demand(source: TrafficSource) -> float:
            # Offered demand is the *queue pressure* a source exerts on the
            # controllers. It is deliberately NOT scaled by the distress
            # throttle: prefetch streams and retried demand misses keep the
            # queues full even while the issuing cores are being throttled —
            # which is exactly why the paper manages saturation by disabling
            # prefetchers rather than relying on the throttle to resolve it.
            hit = llc_hit[source.source_id]
            miss_inflation = 1.0 + source.llc_miss_traffic_gain * (1.0 - hit)
            cpu_share = min(1.0, len(source.cores) / source.threads)
            mba = self.mba_caps.get(source.clos, 1.0)
            return (
                source.demand_gbps
                * pf_demand[source.source_id]
                * miss_inflation
                * cpu_share
                * mba
            )

        def resolve_pass():
            self.stats.fixed_point_rounds += 1
            GLOBAL_STATS.fixed_point_rounds += 1
            demand_hi = {m: 0.0 for m in self._mc_models}
            demand_lo = {m: 0.0 for m in self._mc_models}
            upi_demand: dict[tuple[int, int], float] = {}
            for source in sources:
                home_socket = source_socket[source.source_id]
                demand = offered_demand(source)
                for subdomain, weight in source.mem_weights.items():
                    slice_demand = demand * weight
                    target_socket = self.topology.socket_of_subdomain(subdomain)
                    if target_socket != home_socket:
                        slice_demand *= 1.0 + self.spec.upi.coherence_overhead
                        key = (home_socket, target_socket)
                        upi_demand[key] = upi_demand.get(key, 0.0) + slice_demand
                    bucket = (
                        demand_hi if source.priority == Priority.HIGH else demand_lo
                    )
                    bucket[subdomain] += slice_demand

            mc_loads: dict[int, McLoad] = {}
            hi_grants: dict[int, float] = {}
            lo_grants: dict[int, float] = {}
            for mc_id, model in self._mc_models.items():
                if self.priority_mode:
                    load, hi_g, lo_g = model.resolve_prioritized(
                        demand_hi[mc_id], demand_lo[mc_id]
                    )
                    hi_grants[mc_id] = hi_g
                    lo_grants[mc_id] = lo_g
                else:
                    load = model.resolve(demand_hi[mc_id] + demand_lo[mc_id])
                    hi_grants[mc_id] = load.grant_ratio
                    lo_grants[mc_id] = load.grant_ratio
                mc_loads[mc_id] = load

            upi_loads = {
                key: self._upi.resolve(demand)
                for key, demand in upi_demand.items()
            }

            pressures = {}
            for socket_id in range(self.topology.num_sockets):
                subdomains = self.topology.subdomains_of_socket(socket_id)
                pressures[socket_id] = socket_pressure(
                    [mc_loads[m] for m in subdomains],
                    self.spec.sockets[socket_id].backpressure_strength,
                )
            return mc_loads, hi_grants, lo_grants, upi_loads, pressures

        mc_loads, hi_grants, lo_grants, upi_loads, pressures = resolve_pass()

        if self.qos_aware_prefetch and any(
            p.saturation > 0 for p in pressures.values()
        ):
            # Section VI-B: hardware prefetchers observe memory-resource
            # state directly and throttle low-priority prefetch streams in
            # the same cycle saturation appears — modeled as scaling each
            # low-priority source's prefetcher effect by (1 - saturation)
            # and re-resolving once.
            for source in sources:
                if source.priority == Priority.HIGH:
                    continue
                sat = pressures[source_socket[source.source_id]].saturation
                enabled = self.prefetchers.enabled_fraction(source.cores)
                effective = enabled * (1.0 - sat)
                pf_demand[source.source_id] = source.prefetch.demand_factor(
                    effective
                )
                pf_speed[source.source_id] = source.prefetch.speed_factor(
                    effective
                )
            mc_loads, hi_grants, lo_grants, upi_loads, pressures = resolve_pass()

        # Latency injection from inbound coherence traffic, per home socket.
        home_injection = {s: 0.0 for s in range(self.topology.num_sockets)}
        for (_, target_socket), load in upi_loads.items():
            home_injection[target_socket] += self._upi.home_latency_injection(
                load.utilization, self.spec.remote_sensitivity
            )

        source_rates: dict[str, SourceRates] = {}
        for source in sources:
            home_socket = source_socket[source.source_id]
            grant = 0.0
            latency = 0.0
            grants = (
                hi_grants if source.priority == Priority.HIGH else lo_grants
            )
            for subdomain, weight in source.mem_weights.items():
                target_socket = self.topology.socket_of_subdomain(subdomain)
                mc = mc_loads[subdomain]
                slice_grant = grants[subdomain]
                mc_latency = (
                    mc.hi_latency_factor
                    if source.priority == Priority.HIGH
                    else mc.latency_factor
                )
                slice_latency = mc_latency * self._routing_latency_adjust(
                    source, subdomain
                )
                if self.snc_enabled:
                    # Shared-mesh residual coupling from the sibling
                    # subdomains on the same socket. Convex in a sibling's
                    # utilization: negligible at moderate load (preserving
                    # the paper's better-than-standalone behaviour under
                    # light pressure), material only near saturation.
                    for sibling in self.topology.sibling_subdomains(subdomain):
                        slice_latency += (
                            self.spec.mesh_coupling
                            * mc_loads[sibling].utilization ** 3
                        )
                slice_latency += home_injection[target_socket]
                if target_socket != home_socket:
                    upi = upi_loads.get((home_socket, target_socket))
                    if upi is not None:
                        slice_grant *= upi.grant_ratio
                        slice_latency *= upi.remote_latency_factor
                grant += weight * slice_grant
                latency += weight * slice_latency
            mba_cap = self.mba_caps.get(source.clos, 1.0)
            source_rates[source.source_id] = SourceRates(
                bw_grant=clamp(grant, 1e-9, 1.0),
                latency_factor=max(latency, 0.5),
                core_throttle=pressures[home_socket].core_throttle,
                prefetch_speed=pf_speed[source.source_id],
                llc_hit=llc_hit[source.source_id],
                llc_speed=clamp(
                    1.0
                    - source.llc_speed_sensitivity
                    * (1.0 - llc_hit[source.source_id]),
                    0.05,
                    1.0,
                ),
                smt_factor=smt[source.source_id],
                cpu_share=min(1.0, len(source.cores) / source.threads),
                # The MBA rate controller throttles the core-to-LLC path,
                # so part of the cap lands on compute (Section VI-D).
                mba_core_factor=0.45 + 0.55 * mba_cap,
                mba_issue=mba_cap,
            )

        return SolveResult(
            mc_loads=mc_loads,
            socket_pressures=pressures,
            upi_loads=upi_loads,
            source_rates=source_rates,
        )
