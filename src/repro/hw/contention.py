"""The fluid contention solver.

Every time anything in the machine changes (a phase starts or ends, a policy
reconfigures placements, prefetchers are toggled), the solver converts the
set of active *traffic sources* into a :class:`SolveResult`: per-controller
loads, per-socket distress pressure, UPI state, and per-source rate factors.
Workloads combine those factors with their own phase profiles to obtain the
speed at which their fluid work drains.

The solve is a small fixed-point iteration: the distress-driven core
throttling reduces the demand cores can generate, which reduces distress.
Damped iteration converges in a handful of rounds.

Performance layer
-----------------

Workloads cycle through a small recurring set of source configurations, so
the solver keeps a bounded LRU memo keyed on a canonical *solve signature*
(see :meth:`ContentionSolver.solve_signature`). The signature covers every
input the solve reads:

* the ordered, canonicalized active source set (all profile fields),
* per-source prefetcher-bank state (the enabled fraction over its cores),
* the solver knobs (``snc_enabled``, ``priority_mode``,
  ``qos_aware_prefetch``, the per-CLOS ``mba_caps``), and
* the per-socket LLC CAT mask state.

Anything that can change a solve's outcome MUST be part of the signature —
adding a solver knob without extending the signature produces stale-cache
bugs (see docs/model.md §"Solve signature invariants"). Per-source
prefetch/LLC/SMT *static factors* are additionally memoized independently,
so partial state changes (e.g. only an MBA cap moved) skip the O(n²) SMT
pass and the per-way LLC allocation instead of recomputing from scratch.

Cache observability flows through :class:`SolverStats` (per solver and the
module-level aggregate), surfaced via ``Machine.solver_stats`` and the
experiment harness. Set ``REPRO_SOLVER_CACHE=0`` (or call
:func:`set_cache_default`) to disable all solver caching; the cached and
uncached paths are numerically identical, which the test suite asserts.
"""

from __future__ import annotations

import enum
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.backpressure import SocketPressure, socket_pressure
from repro.hw.interconnect import UpiLoad, UpiModel
from repro.hw.llc import LlcModel, LlcRequest
from repro.hw.memory import McLoad, MemoryControllerModel, idle_load
from repro.hw.prefetcher import PrefetchProfile, PrefetcherBank
from repro.hw.spec import MachineSpec
from repro.hw.topology import Topology
from repro.units import clamp

#: Cross-subdomain (same socket) access latency penalty when SNC is on.
_SNC_CROSS_PENALTY = 1.05

#: Default bound on the per-solver solve-result memo.
DEFAULT_SOLVE_CACHE_SIZE = 256
#: Bound on each per-component static-factor memo (LLC / SMT / prefetch).
_STATIC_CACHE_SIZE = 512

#: Environment switch: ``REPRO_SOLVER_CACHE=0`` disables all solver caching.
_CACHE_ENV = "REPRO_SOLVER_CACHE"

_cache_default_enabled: bool | None = None


def cache_default_enabled() -> bool:
    """Whether new solvers are built with caching enabled."""
    if _cache_default_enabled is not None:
        return _cache_default_enabled
    return os.environ.get(_CACHE_ENV, "1") != "0"


def set_cache_default(enabled: bool | None) -> None:
    """Override the process-wide cache default (``None`` = follow the env).

    Only affects solvers constructed afterwards; used by the equivalence
    tests and the benchmark harness to A/B the cached and uncached paths.
    """
    global _cache_default_enabled
    _cache_default_enabled = enabled


class Priority(enum.IntEnum):
    """Task priority classes (the paper's high-priority ML vs best-effort)."""

    LOW = 0
    HIGH = 1


@dataclass
class SolverStats:
    """Counters describing the solver's work and cache behaviour."""

    #: Total :meth:`ContentionSolver.solve` calls (including cached ones).
    solves: int = 0
    #: Solves answered from the solve-result memo.
    cache_hits: int = 0
    #: Solves that had to run the full fixed point.
    cache_misses: int = 0
    #: Machine-level re-solves skipped because the signature was unchanged.
    signature_short_circuits: int = 0
    #: Total fixed-point resolve passes executed across all full solves.
    fixed_point_rounds: int = 0
    #: Static-factor sub-results (LLC / SMT / prefetch) served from memo.
    static_reuse: int = 0
    #: Cache misses answered by the *incremental* delta path: the previous
    #: solve's static factors were reused because only the MBA cap,
    #: prefetcher state, or cpuset component of the signature changed.
    incremental_solves: int = 0
    #: Cache misses answered from the process-wide shared memo (warm pool
    #: workers reuse solves across sweep points this way).
    shared_hits: int = 0
    #: Candidate states evaluated through :meth:`ContentionSolver.solve_batch`.
    batch_points: int = 0

    @property
    def hit_rate(self) -> float:
        """Memo hit rate over solves that consulted the cache, in [0, 1]."""
        consulted = self.cache_hits + self.cache_misses
        return self.cache_hits / consulted if consulted else 0.0

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot (for telemetry/JSON reporting)."""
        return {
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "signature_short_circuits": self.signature_short_circuits,
            "fixed_point_rounds": self.fixed_point_rounds,
            "static_reuse": self.static_reuse,
            "incremental_solves": self.incremental_solves,
            "shared_hits": self.shared_hits,
            "batch_points": self.batch_points,
        }

    def add(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.solves += other.solves
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.signature_short_circuits += other.signature_short_circuits
        self.fixed_point_rounds += other.fixed_point_rounds
        self.static_reuse += other.static_reuse
        self.incremental_solves += other.incremental_solves
        self.shared_hits += other.shared_hits
        self.batch_points += other.batch_points

    def reset(self) -> None:
        """Zero every counter."""
        self.solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.signature_short_circuits = 0
        self.fixed_point_rounds = 0
        self.static_reuse = 0
        self.incremental_solves = 0
        self.shared_hits = 0
        self.batch_points = 0


#: Process-wide aggregate over every solver (fleet-level observability).
GLOBAL_STATS = SolverStats()

#: Bound on the process-wide shared solve memo (see :data:`_SHARED_CACHE`).
_SHARED_CACHE_SIZE = 4096

#: Process-wide solve memo shared by every solver, keyed on
#: ``(MachineSpec, solve signature)``. Sweep points build a fresh
#: ``Machine`` (and hence a fresh solver with a cold per-instance memo)
#: each time; this cache survives across points within one process, so a
#: warm pool worker reproduces the near-perfect hit rate a long serial run
#: observes. The signature covers every solve input and ``MachineSpec`` is
#: deep-frozen, so entries can never be served across distinct hardware
#: configurations.
_SHARED_CACHE: OrderedDict[tuple, "SolveResult"] = OrderedDict()


def clear_shared_cache() -> None:
    """Drop the process-wide shared solve memo (benchmark/test hook)."""
    _SHARED_CACHE.clear()


def global_stats() -> SolverStats:
    """The process-wide aggregate :class:`SolverStats`."""
    return GLOBAL_STATS


def reset_global_stats() -> None:
    """Zero the process-wide aggregate counters."""
    GLOBAL_STATS.reset()


@dataclass(frozen=True)
class TrafficSource:
    """One stream of host activity competing for shared resources.

    A task usually contributes a single source; the RNN1 inference server
    aggregates all lanes currently in a CPU phase into one source whose demand
    scales with the number of active lanes.
    """

    source_id: str
    task_id: str
    #: Useful memory-bandwidth demand at full speed, GB/s, before prefetch
    #: inflation, LLC-miss inflation, CPU-share and throttle scaling.
    demand_gbps: float
    #: Subdomain id -> fraction of traffic routed there (normalized).
    mem_weights: dict[int, float]
    #: Cores the generating threads run on (must be on a single socket).
    cores: frozenset[int]
    #: Number of runnable threads (for CPU-share computation).
    threads: int = 1
    clos: int = 0
    priority: Priority = Priority.LOW
    prefetch: PrefetchProfile = field(default_factory=PrefetchProfile)
    #: Hot working set in the socket LLC, MB (0 = cache-oblivious).
    working_set_mb: float = 0.0
    #: Relative LLC access intensity (see :class:`~repro.hw.llc.LlcRequest`).
    llc_intensity: float = 1.0
    #: Demand multiplier at 0 % LLC hit rate (misses become DRAM traffic).
    llc_miss_traffic_gain: float = 0.0
    #: Speed multiplier lost at 0 % LLC hit rate.
    llc_speed_sensitivity: float = 0.0
    #: How strongly this source degrades SMT siblings sharing its cores.
    smt_aggression: float = 0.0
    #: How strongly this source suffers from SMT siblings on its cores.
    smt_sensitivity: float = 0.0
    #: Lazily computed :meth:`canonical_key` (instances are immutable, so
    #: the key is computed at most once; excluded from eq/hash/repr).
    _ckey: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Memoized full per-source solve signature: ``(bank, bank_version,
    #: signature)``. Valid while the owning prefetcher bank is the same
    #: object at the same version (see ContentionSolver.source_signature).
    _sig: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.demand_gbps < 0:
            raise ConfigurationError("demand_gbps must be >= 0")
        if self.threads <= 0:
            raise ConfigurationError("threads must be positive")
        if not self.cores:
            raise ConfigurationError("source needs at least one core")

    def canonical_key(self) -> tuple:
        """A hashable tuple covering every solve-relevant field.

        ``mem_weights`` and ``cores`` are canonicalized by sorting so that
        two sources with equal routing/placement hash identically regardless
        of construction order. The key is memoized on the (frozen) instance:
        tasks reuse source objects across solves, so the signature fast path
        sees an O(1) lookup instead of rebuilding the tuple every round.
        """
        key = self._ckey
        if key is not None:
            return key
        key = (
            self.source_id,
            self.task_id,
            self.demand_gbps,
            tuple(sorted(self.mem_weights.items())),
            tuple(sorted(self.cores)),
            self.threads,
            self.clos,
            int(self.priority),
            self.prefetch,
            self.working_set_mb,
            self.llc_intensity,
            self.llc_miss_traffic_gain,
            self.llc_speed_sensitivity,
            self.smt_aggression,
            self.smt_sensitivity,
        )
        object.__setattr__(self, "_ckey", key)
        return key


#: Indices into :meth:`TrafficSource.canonical_key` used by the incremental
#: delta classifier (keep in sync with the tuple above).
_CKEY_CORES = 4
#: Index of the prefetcher-enabled fraction appended by
#: :meth:`ContentionSolver.source_signature`.
_SIG_FRACTION = 15


class _KnobDict(dict):
    """A dict that reports in-place mutation to its owner.

    Actuators and tests write ``solver.mba_caps[clos] = x`` directly; the
    change callback bumps the solver's knob version so its memoized knob
    signature invalidates without a setter API.
    """

    __slots__ = ("_on_change",)

    def __init__(self, on_change: Callable[[], None]) -> None:
        super().__init__()
        self._on_change = on_change

    def __setitem__(self, key: int, value: float) -> None:
        super().__setitem__(key, value)
        self._on_change()

    def __delitem__(self, key: int) -> None:
        super().__delitem__(key)
        self._on_change()

    def clear(self) -> None:
        if self:
            super().clear()
            self._on_change()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        if args or kwargs:
            self._on_change()

    def pop(self, *args):
        result = super().pop(*args)
        self._on_change()
        return result

    def setdefault(self, key: int, default: float | None = None):
        if key in self:
            return self[key]
        self[key] = default
        return default


@dataclass(frozen=True)
class KnobVariant:
    """One candidate knob setting for a batched what-if solve.

    A variant overlays the solver's current state: ``mba_caps`` overrides
    per-CLOS offered-demand caps, ``prefetch_fractions`` overrides the
    prefetcher-enabled fraction seen by specific sources (by ``source_id``).
    Unspecified knobs keep their live values, so ``KnobVariant()`` solves
    the machine exactly as-is.
    """

    mba_caps: tuple[tuple[int, float], ...] = ()
    prefetch_fractions: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class SourceRates:
    """Per-source factors produced by one solve."""

    #: Achieved/offered bandwidth ratio across the source's routing, (0, 1].
    bw_grant: float
    #: Effective loaded-latency factor (weighted over routing; includes SNC
    #: bonus/penalty, UPI hop latency and home-socket coherence injection).
    latency_factor: float
    #: Socket-wide distress throttle applied to the source's cores.
    core_throttle: float
    #: Prefetcher latency-hiding speed factor for the source's cores.
    prefetch_speed: float
    #: LLC hit fraction resolved for this source.
    llc_hit: float
    #: Speed multiplier from LLC misses, (0, 1].
    llc_speed: float
    #: Speed multiplier from SMT sibling pressure, (0, 1].
    smt_factor: float
    #: min(1, cores/threads): core-count share from CPU-mask throttling.
    cpu_share: float
    #: Core-path slowdown from the MBA rate controller. Intel's MBA sits
    #: between the core and the LLC, so throttling a CLOS's memory requests
    #: also costs it LLC bandwidth — the Section VI-D criticism. 1.0 when
    #: the CLOS is uncapped.
    mba_core_factor: float = 1.0
    #: Request-issue share left by the MBA throttle (the MB% cap itself);
    #: stretches the memory-bound part of the capped task's phases.
    mba_issue: float = 1.0

    def compute_speed(self) -> float:
        """Multiplier for the non-memory-bound (compute) part of a phase.

        Core occupancy effects — SMT sibling pressure, CPU-mask sharing and
        the MBA core-to-LLC rate controller — slow instruction execution
        itself; memory-side effects do not.
        """
        return self.smt_factor * self.cpu_share * self.mba_core_factor

    def memory_stretch(self, bw_bound_weight: float) -> float:
        """Time-stretch of the memory-bound part of a phase.

        ``bw_bound_weight`` blends bandwidth-bound behaviour (stretch =
        1/grant) with latency-bound behaviour (stretch = latency factor).
        The distress core-throttle slows request issue, disabled prefetchers
        stop hiding latency, and LLC misses add trips to DRAM — all three
        stretch the memory-bound portion of a phase, not its compute.
        """
        w = clamp(bw_bound_weight, 0.0, 1.0)
        bw_stretch = 1.0 / max(self.bw_grant, 1e-9)
        raw = w * bw_stretch + (1.0 - w) * self.latency_factor
        issue = max(
            self.core_throttle
            * self.prefetch_speed
            * self.llc_speed
            * self.mba_issue,
            1e-6,
        )
        return raw / issue


@dataclass(frozen=True)
class SolveResult:
    """Machine-wide outcome of one contention solve.

    Instances may be shared between solves through the solver memo; treat
    them (and their maps) as immutable.
    """

    mc_loads: dict[int, McLoad]
    socket_pressures: dict[int, SocketPressure]
    upi_loads: dict[tuple[int, int], UpiLoad]
    source_rates: dict[str, SourceRates]

    def rates_for(self, source_id: str) -> SourceRates:
        """Rates for ``source_id``; unknown sources see an idle machine."""
        rates = self.source_rates.get(source_id)
        if rates is not None:
            return rates
        return IDLE_RATES


#: Rates seen by a source on an otherwise idle machine.
IDLE_RATES = SourceRates(
    bw_grant=1.0,
    latency_factor=1.0,
    core_throttle=1.0,
    prefetch_speed=1.0,
    llc_hit=1.0,
    llc_speed=1.0,
    smt_factor=1.0,
    cpu_share=1.0,
)


def empty_solve_result(spec: MachineSpec) -> SolveResult:
    """The solve result of a machine with no active sources."""
    topo = Topology(spec)
    mc_loads = {
        mc_id: idle_load(topo.mc_spec_of_subdomain(mc_id))
        for mc_id in topo.mc_ids()
    }
    pressures = {
        s: SocketPressure(saturation=0.0, core_throttle=1.0)
        for s in range(topo.num_sockets)
    }
    return SolveResult(
        mc_loads=mc_loads, socket_pressures=pressures, upi_loads={}, source_rates={}
    )


def _lru_get(cache: OrderedDict, key):
    """Fetch + refresh an LRU entry (``None`` on miss)."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _lru_put(cache: OrderedDict, key, value, cap: int) -> None:
    """Insert an LRU entry, evicting the oldest beyond ``cap``."""
    if cap <= 0:
        return
    cache[key] = value
    while len(cache) > cap:
        cache.popitem(last=False)


class ContentionSolver:
    """Resolves traffic sources into rate factors for one machine."""

    def __init__(
        self,
        spec: MachineSpec,
        topology: Topology,
        prefetchers: PrefetcherBank,
        llcs: dict[int, LlcModel],
        cache_size: int | None = None,
    ) -> None:
        self.spec = spec
        self.topology = topology
        self.prefetchers = prefetchers
        self.llcs = llcs
        self._mc_models: dict[int, MemoryControllerModel] = {
            mc_id: MemoryControllerModel(topology.mc_spec_of_subdomain(mc_id))
            for mc_id in topology.mc_ids()
        }
        self._upi = UpiModel(spec.upi)
        #: Bumped whenever any solver knob changes; versions the memoized
        #: knob signature. Knob attributes are properties so direct writes
        #: (actuators, tests) are tracked without a dedicated setter API.
        self._knob_version = 0
        self._knob_sig: tuple | None = None
        #: Whole-signature memo for :meth:`solve_signature`, keyed by
        #: (source ids, bank version, knob version, LLC versions); values
        #: pin the source objects (see solve_signature).
        self._sig_memo: dict[tuple, tuple] = {}
        self._priority_mode = False
        self._mba_caps: _KnobDict = _KnobDict(self._bump_knob_version)
        self._snc_enabled = False
        self._qos_aware_prefetch = False

        # ------------------------------------------------ performance layer
        #: Master switch for the solve memo and static-factor memos. When
        #: off, every solve recomputes from scratch (the reference path).
        self.cache_enabled = cache_default_enabled()
        self.cache_size = (
            DEFAULT_SOLVE_CACHE_SIZE if cache_size is None else cache_size
        )
        self.stats = SolverStats()
        self._solve_cache: dict[tuple, SolveResult] = {}
        self._llc_cache: OrderedDict[tuple, dict[str, float]] = OrderedDict()
        self._smt_cache: OrderedDict[tuple, dict[str, float]] = OrderedDict()
        self._pf_cache: OrderedDict[tuple, tuple[float, float]] = OrderedDict()
        #: LLC membership is fixed at construction; keep the iteration order
        #: pre-sorted so the per-solve signature build avoids a sort.
        self._llc_sorted = sorted(llcs.items())
        self._empty_result: SolveResult | None = None
        #: Inputs of the most recent full/incremental solve, kept for the
        #: incremental delta path: (signature, pre-QoS static factor maps,
        #: source→socket map). ``None`` until the first cached solve.
        self._delta_state: tuple | None = None

    # -------------------------------------------------------------- knobs
    def _bump_knob_version(self) -> None:
        self._knob_version += 1

    @property
    def priority_mode(self) -> bool:
        """Request-level prioritization at the controllers (HW-QoS)."""
        return self._priority_mode

    @priority_mode.setter
    def priority_mode(self, value: bool) -> None:
        if value != self._priority_mode:
            self._priority_mode = value
            self._knob_version += 1

    @property
    def snc_enabled(self) -> bool:
        """Whether sub-NUMA clustering is enabled."""
        return self._snc_enabled

    @snc_enabled.setter
    def snc_enabled(self, value: bool) -> None:
        if value != self._snc_enabled:
            self._snc_enabled = value
            self._knob_version += 1

    @property
    def qos_aware_prefetch(self) -> bool:
        """QoS-aware hardware prefetching (Section VI-B)."""
        return self._qos_aware_prefetch

    @qos_aware_prefetch.setter
    def qos_aware_prefetch(self, value: bool) -> None:
        if value != self._qos_aware_prefetch:
            self._qos_aware_prefetch = value
            self._knob_version += 1

    @property
    def mba_caps(self) -> "_KnobDict":
        """Per-CLOS offered-demand caps (the resctrl MBA actuator), 0..1.

        A change-tracking dict: in-place mutation bumps the knob version so
        the memoized knob signature invalidates.
        """
        return self._mba_caps

    @mba_caps.setter
    def mba_caps(self, value: Mapping[int, float]) -> None:
        self._mba_caps.clear()
        self._mba_caps.update(value)

    # ------------------------------------------------------------ caching
    def _knob_signature(self) -> tuple:
        memo = self._knob_sig
        if memo is not None and memo[0] == self._knob_version:
            return memo[1]
        sig = (
            self._snc_enabled,
            self._priority_mode,
            self._qos_aware_prefetch,
            tuple(sorted(self._mba_caps.items())),
        )
        self._knob_sig = (self._knob_version, sig)
        return sig

    def _llc_state_signature(self) -> tuple:
        return tuple(
            (socket_id, llc.state_key()) for socket_id, llc in self._llc_sorted
        )

    def source_signature(self, source: TrafficSource) -> tuple:
        """Canonical per-source key, including its prefetcher-bank state.

        Memoized on the source instance against the bank's identity and
        version counter: tasks hand the solver the same source objects every
        round, so between prefetcher writes this is a couple of attribute
        compares instead of a tuple build.
        """
        bank = self.prefetchers
        memo = source._sig
        if memo is not None and memo[0] is bank and memo[1] == bank.version:
            return memo[2]
        sig = source.canonical_key() + (bank.enabled_fraction(source.cores),)
        object.__setattr__(source, "_sig", (bank, bank.version, sig))
        return sig

    def solve_signature(self, sources: list[TrafficSource]) -> tuple | None:
        """The canonical, hashable key of one solve.

        Covers the ordered active source set (with per-source prefetcher
        state), the solver knobs, and the LLC CAT mask state — i.e. every
        mutable input :meth:`solve` reads. Returns ``None`` when caching is
        disabled (callers then always re-solve).
        """
        if not self.cache_enabled:
            return None
        bank = self.prefetchers
        # Whole-signature memo. Tasks hand the solver interned source
        # objects and the active set cycles among a handful of variants
        # (lanes entering/leaving phases), so keying on the id tuple plus
        # the version counters of every other signature input (prefetcher
        # bank, knobs incl. MBA caps, CAT masks) turns the tuple build into
        # one dict probe. Values pin the source lists: an id in a live key
        # therefore always names the object it was built from (a freed
        # source's id could otherwise be recycled for a different one).
        key = (
            tuple(map(id, sources)),
            bank.version,
            self._knob_version,
            tuple(llc.version for _, llc in self._llc_sorted),
        )
        memo = self._sig_memo
        hit = memo.get(key)
        if hit is not None and hit[1] is bank:
            return hit[2]
        sig = (
            tuple(self.source_signature(s) for s in sources),
            self._knob_signature(),
            self._llc_state_signature(),
        )
        if len(memo) >= 128:
            memo.clear()
        memo[key] = (list(sources), bank, sig)
        return sig

    def clear_caches(self) -> None:
        """Drop all memoized state (solve results and static factors)."""
        self._solve_cache.clear()
        self._llc_cache.clear()
        self._smt_cache.clear()
        self._pf_cache.clear()
        self._delta_state = None
        self._sig_memo.clear()

    def note_short_circuit(self) -> None:
        """Record that a machine-level re-solve was skipped entirely."""
        self.stats.signature_short_circuits += 1
        GLOBAL_STATS.signature_short_circuits += 1

    # ------------------------------------------------------------ helpers
    def _socket_of_source(self, source: TrafficSource) -> int:
        sockets = {self.topology.socket_of_core(c) for c in source.cores}
        if len(sockets) != 1:
            raise ConfigurationError(
                f"source {source.source_id} spans sockets {sorted(sockets)}"
            )
        return next(iter(sockets))

    def _subdomains_of_source(self, source: TrafficSource) -> set[int]:
        return {self.topology.subdomain_of_core(c) for c in source.cores}

    # ------------------------------------------------------ static factors
    # The three per-source "static" factor families (prefetch, LLC, SMT) do
    # not depend on the fixed point, only on slices of the source set and
    # hardware state. Each family is memoized on exactly the state it reads,
    # so a solve whose signature differs only in, say, an MBA cap reuses all
    # three instead of redoing the per-way LLC split and the O(n²) SMT pass.

    def _prefetch_factors(self, source: TrafficSource) -> tuple[float, float]:
        """(demand_factor, speed_factor) for one source's prefetch state."""
        enabled = self.prefetchers.enabled_fraction(source.cores)
        if not self.cache_enabled:
            return (
                source.prefetch.demand_factor(enabled),
                source.prefetch.speed_factor(enabled),
            )
        key = (source.prefetch, enabled)
        hit = _lru_get(self._pf_cache, key)
        if hit is not None:
            self.stats.static_reuse += 1
            GLOBAL_STATS.static_reuse += 1
            return hit
        value = (
            source.prefetch.demand_factor(enabled),
            source.prefetch.speed_factor(enabled),
        )
        _lru_put(self._pf_cache, key, value, _STATIC_CACHE_SIZE)
        return value

    def _llc_hit_fractions(
        self, by_socket: dict[int, list[TrafficSource]]
    ) -> dict[str, float]:
        """Per-source LLC hit fractions, memoized per socket."""
        llc_hit: dict[str, float] = {}
        for socket_id, socket_sources in by_socket.items():
            request_key = tuple(
                (s.source_id, s.working_set_mb, s.clos, s.llc_intensity)
                for s in socket_sources
            )
            key = (socket_id, self.llcs[socket_id].state_key(), request_key)
            cached = _lru_get(self._llc_cache, key) if self.cache_enabled else None
            if cached is not None:
                self.stats.static_reuse += 1
                GLOBAL_STATS.static_reuse += 1
                llc_hit.update(cached)
                continue
            requests = [
                LlcRequest(
                    task_id=s.source_id,
                    working_set_mb=s.working_set_mb,
                    clos=s.clos,
                    intensity=s.llc_intensity,
                )
                for s in socket_sources
            ]
            fractions = self.llcs[socket_id].hit_fractions(requests)
            if self.cache_enabled:
                _lru_put(self._llc_cache, key, fractions, _STATIC_CACHE_SIZE)
            llc_hit.update(fractions)
        return llc_hit

    def _smt_factors(self, sources: list[TrafficSource]) -> dict[str, float]:
        """SMT sibling-pressure factors, memoized on the overlap-relevant
        slice of the source set (cores + SMT coefficients)."""
        key = tuple(
            (s.source_id, tuple(sorted(s.cores)), s.smt_aggression, s.smt_sensitivity)
            for s in sources
        )
        if self.cache_enabled:
            cached = _lru_get(self._smt_cache, key)
            if cached is not None:
                self.stats.static_reuse += 1
                GLOBAL_STATS.static_reuse += 1
                return cached
        smt: dict[str, float] = {}
        for source in sources:
            worst = 0.0
            for other in sources:
                if other.source_id == source.source_id:
                    continue
                overlap = len(source.cores & other.cores)
                if not overlap:
                    continue
                fraction = overlap / len(source.cores)
                worst = max(worst, other.smt_aggression * fraction)
            smt[source.source_id] = clamp(
                1.0 - source.smt_sensitivity * worst, 0.05, 1.0
            )
        if self.cache_enabled:
            _lru_put(self._smt_cache, key, smt, _STATIC_CACHE_SIZE)
        return smt

    def _static_factors(
        self, sources: list[TrafficSource]
    ) -> tuple[dict[str, float], dict[str, float], dict[str, float], dict[str, float]]:
        """Per-source factors that do not depend on the fixed point.

        Returns (prefetch_demand, prefetch_speed, llc_hit, smt_factor) maps.
        The prefetch maps are freshly built per call (the QoS-aware-prefetch
        branch mutates them); LLC and SMT maps may be memo-shared and must
        not be mutated.
        """
        pf_demand: dict[str, float] = {}
        pf_speed: dict[str, float] = {}
        for source in sources:
            demand, speed = self._prefetch_factors(source)
            pf_demand[source.source_id] = demand
            pf_speed[source.source_id] = speed

        by_socket: dict[int, list[TrafficSource]] = {}
        for source in sources:
            by_socket.setdefault(self._socket_of_source(source), []).append(source)
        llc_hit = self._llc_hit_fractions(by_socket)
        smt = self._smt_factors(sources)
        return pf_demand, pf_speed, llc_hit, smt

    def _routing_latency_adjust(self, source: TrafficSource, subdomain: int) -> float:
        """SNC locality bonus/penalty for traffic to ``subdomain``."""
        if not self.snc_enabled:
            return 1.0
        source_subdomains = self._subdomains_of_source(source)
        if subdomain in source_subdomains:
            return 1.0 - self.spec.snc_local_latency_bonus
        if self.topology.socket_of_subdomain(subdomain) == self._socket_of_source(
            source
        ):
            return _SNC_CROSS_PENALTY
        return 1.0  # cross-socket handled via UPI terms

    # -------------------------------------------------------------- solve
    def solve(
        self, sources: list[TrafficSource], signature: tuple | None = None
    ) -> SolveResult:
        """Resolve the machine state for the given active sources.

        ``signature`` may carry a pre-computed :meth:`solve_signature` (the
        machine's recompute loop computes it anyway for its short-circuit
        check); when omitted it is derived here.
        """
        self.stats.solves += 1
        GLOBAL_STATS.solves += 1
        if not sources:
            if self._empty_result is None:
                self._empty_result = empty_solve_result(self.spec)
            return self._empty_result

        if self.cache_enabled:
            if signature is None:
                signature = self.solve_signature(sources)
            # The local memo is a flat dict cleared when full rather than a
            # true LRU: steady-state working sets are a handful of
            # signatures (far below the cap), and a plain ``get`` hashes
            # the nested signature tuple once per solve instead of twice.
            # Recency-aware eviction lives in the process-wide shared cache.
            cache = self._solve_cache
            cached = cache.get(signature)
            if cached is None:
                shared = _lru_get(_SHARED_CACHE, (self.spec, signature))
                if shared is not None:
                    self.stats.shared_hits += 1
                    GLOBAL_STATS.shared_hits += 1
                    self._cache_put(signature, shared)
                    cached = shared
            if cached is not None:
                self.stats.cache_hits += 1
                GLOBAL_STATS.cache_hits += 1
                return cached
            self.stats.cache_misses += 1
            GLOBAL_STATS.cache_misses += 1

        result = self._solve(sources, signature=signature)
        if self.cache_enabled and signature is not None:
            self._cache_put(signature, result)
            _lru_put(
                _SHARED_CACHE, (self.spec, signature), result, _SHARED_CACHE_SIZE
            )
        return result

    def _cache_put(self, signature: tuple, result: SolveResult) -> None:
        """Insert into the flat local memo (clear-on-full, see solve())."""
        if self.cache_size <= 0:
            return
        cache = self._solve_cache
        if len(cache) >= self.cache_size:
            cache.clear()
        cache[signature] = result

    # --------------------------------------------------- incremental deltas
    def _classify_delta(self, signature: tuple) -> tuple | None:
        """Reusable static factors when ``signature`` is a small knob delta.

        Control ticks change one knob at a time: an MBA cap (knob
        signature), prefetcher MSRs (per-source enabled fraction), or a
        cpuset (per-source cores). For those deltas the previous solve's
        per-source static factors are still valid — recomputing them would
        produce identical values — so they are reused wholesale and only the
        fixed point reruns. Returns ``(pf_demand, pf_speed, llc_hit, smt,
        source_socket, changed_sources)`` or ``None`` when the delta is not
        one of the recognized shapes (full recompute).
        """
        if self._delta_state is None:
            return None
        (p_src_sigs, p_knob, p_llc), statics, p_socket = self._delta_state
        src_sigs, knob_sig, llc_sig = signature
        if llc_sig != p_llc or len(src_sigs) != len(p_src_sigs):
            return None
        if knob_sig != p_knob:
            # Only the MBA-cap component may differ; snc / priority-mode /
            # qos-aware-prefetch flips change the solve structure itself.
            if knob_sig[:3] != p_knob[:3]:
                return None
        pf_demand, pf_speed, llc_hit, smt = statics
        changed: list[int] = []
        cores_changed = False
        for index, (old, new) in enumerate(zip(p_src_sigs, src_sigs)):
            if old == new:
                continue
            for pos, (a, b) in enumerate(zip(old, new)):
                if a == b:
                    continue
                if pos == _CKEY_CORES:
                    cores_changed = True
                elif pos != _SIG_FRACTION:
                    return None  # some other profile field moved: full solve
            changed.append(index)
        return pf_demand, pf_speed, llc_hit, smt, p_socket, changed, cores_changed

    def _solve_incremental(
        self, sources: list[TrafficSource], signature: tuple
    ) -> SolveResult | None:
        """Try the delta path; ``None`` means the caller must solve fully."""
        delta = self._classify_delta(signature)
        if delta is None:
            return None
        pf_demand, pf_speed, llc_hit, smt, source_socket, changed, cores_changed = (
            delta
        )
        if changed or cores_changed:
            pf_demand = dict(pf_demand)
            pf_speed = dict(pf_speed)
            if cores_changed:
                source_socket = dict(source_socket)
            for index in changed:
                source = sources[index]
                if cores_changed:
                    # A cpuset move on the same socket keeps the per-socket
                    # LLC grouping (and hence the reused hit fractions)
                    # valid; a cross-socket move needs a full solve.
                    if self._socket_of_source(source) != source_socket.get(
                        source.source_id
                    ):
                        return None
                demand, speed = self._prefetch_factors(source)
                pf_demand[source.source_id] = demand
                pf_speed[source.source_id] = speed
            if cores_changed:
                smt = self._smt_factors(sources)
        self.stats.incremental_solves += 1
        GLOBAL_STATS.incremental_solves += 1
        self._delta_state = (
            signature,
            (dict(pf_demand), dict(pf_speed), llc_hit, smt),
            source_socket,
        )
        return self._solve_core(
            sources, pf_demand, pf_speed, llc_hit, smt, source_socket
        )

    def _solve(
        self, sources: list[TrafficSource], signature: tuple | None = None
    ) -> SolveResult:
        """The full fixed-point computation (reference path, cache-free)."""
        if signature is not None:
            incremental = self._solve_incremental(sources, signature)
            if incremental is not None:
                return incremental
        pf_demand, pf_speed, llc_hit, smt = self._static_factors(sources)
        source_socket = {s.source_id: self._socket_of_source(s) for s in sources}
        if signature is not None:
            self._delta_state = (
                signature,
                (dict(pf_demand), dict(pf_speed), llc_hit, smt),
                source_socket,
            )
        return self._solve_core(
            sources, pf_demand, pf_speed, llc_hit, smt, source_socket
        )

    def _solve_core(
        self,
        sources: list[TrafficSource],
        pf_demand: dict[str, float],
        pf_speed: dict[str, float],
        llc_hit: dict[str, float],
        smt: dict[str, float],
        source_socket: dict[str, int],
        mba_caps: Mapping[int, float] | None = None,
        fraction_of: Callable[[TrafficSource], float] | None = None,
    ) -> SolveResult:
        """The fixed point given precomputed static factors.

        ``mba_caps`` / ``fraction_of`` override the live knob state for
        what-if (variant) solves; by default the solver's own state is read.
        ``pf_demand`` / ``pf_speed`` may be mutated (the QoS-aware-prefetch
        branch rewrites them), so callers pass throwaway dicts.
        """
        caps = self.mba_caps if mba_caps is None else mba_caps

        def offered_demand(source: TrafficSource) -> float:
            # Offered demand is the *queue pressure* a source exerts on the
            # controllers. It is deliberately NOT scaled by the distress
            # throttle: prefetch streams and retried demand misses keep the
            # queues full even while the issuing cores are being throttled —
            # which is exactly why the paper manages saturation by disabling
            # prefetchers rather than relying on the throttle to resolve it.
            hit = llc_hit[source.source_id]
            miss_inflation = 1.0 + source.llc_miss_traffic_gain * (1.0 - hit)
            cpu_share = min(1.0, len(source.cores) / source.threads)
            mba = caps.get(source.clos, 1.0)
            return (
                source.demand_gbps
                * pf_demand[source.source_id]
                * miss_inflation
                * cpu_share
                * mba
            )

        def resolve_pass():
            self.stats.fixed_point_rounds += 1
            GLOBAL_STATS.fixed_point_rounds += 1
            demand_hi = {m: 0.0 for m in self._mc_models}
            demand_lo = {m: 0.0 for m in self._mc_models}
            upi_demand: dict[tuple[int, int], float] = {}
            for source in sources:
                home_socket = source_socket[source.source_id]
                demand = offered_demand(source)
                for subdomain, weight in source.mem_weights.items():
                    slice_demand = demand * weight
                    target_socket = self.topology.socket_of_subdomain(subdomain)
                    if target_socket != home_socket:
                        slice_demand *= 1.0 + self.spec.upi.coherence_overhead
                        key = (home_socket, target_socket)
                        upi_demand[key] = upi_demand.get(key, 0.0) + slice_demand
                    bucket = (
                        demand_hi if source.priority == Priority.HIGH else demand_lo
                    )
                    bucket[subdomain] += slice_demand

            mc_loads: dict[int, McLoad] = {}
            hi_grants: dict[int, float] = {}
            lo_grants: dict[int, float] = {}
            for mc_id, model in self._mc_models.items():
                if self.priority_mode:
                    load, hi_g, lo_g = model.resolve_prioritized(
                        demand_hi[mc_id], demand_lo[mc_id]
                    )
                    hi_grants[mc_id] = hi_g
                    lo_grants[mc_id] = lo_g
                else:
                    load = model.resolve(demand_hi[mc_id] + demand_lo[mc_id])
                    hi_grants[mc_id] = load.grant_ratio
                    lo_grants[mc_id] = load.grant_ratio
                mc_loads[mc_id] = load

            upi_loads = {
                key: self._upi.resolve(demand)
                for key, demand in upi_demand.items()
            }

            pressures = {}
            for socket_id in range(self.topology.num_sockets):
                subdomains = self.topology.subdomains_of_socket(socket_id)
                pressures[socket_id] = socket_pressure(
                    [mc_loads[m] for m in subdomains],
                    self.spec.sockets[socket_id].backpressure_strength,
                )
            return mc_loads, hi_grants, lo_grants, upi_loads, pressures

        mc_loads, hi_grants, lo_grants, upi_loads, pressures = resolve_pass()

        if self.qos_aware_prefetch and any(
            p.saturation > 0 for p in pressures.values()
        ):
            # Section VI-B: hardware prefetchers observe memory-resource
            # state directly and throttle low-priority prefetch streams in
            # the same cycle saturation appears — modeled as scaling each
            # low-priority source's prefetcher effect by (1 - saturation)
            # and re-resolving once.
            for source in sources:
                if source.priority == Priority.HIGH:
                    continue
                sat = pressures[source_socket[source.source_id]].saturation
                enabled = (
                    fraction_of(source)
                    if fraction_of is not None
                    else self.prefetchers.enabled_fraction(source.cores)
                )
                effective = enabled * (1.0 - sat)
                pf_demand[source.source_id] = source.prefetch.demand_factor(
                    effective
                )
                pf_speed[source.source_id] = source.prefetch.speed_factor(
                    effective
                )
            mc_loads, hi_grants, lo_grants, upi_loads, pressures = resolve_pass()

        # Latency injection from inbound coherence traffic, per home socket.
        home_injection = {s: 0.0 for s in range(self.topology.num_sockets)}
        for (_, target_socket), load in upi_loads.items():
            home_injection[target_socket] += self._upi.home_latency_injection(
                load.utilization, self.spec.remote_sensitivity
            )

        source_rates: dict[str, SourceRates] = {}
        for source in sources:
            home_socket = source_socket[source.source_id]
            grant = 0.0
            latency = 0.0
            grants = (
                hi_grants if source.priority == Priority.HIGH else lo_grants
            )
            for subdomain, weight in source.mem_weights.items():
                target_socket = self.topology.socket_of_subdomain(subdomain)
                mc = mc_loads[subdomain]
                slice_grant = grants[subdomain]
                mc_latency = (
                    mc.hi_latency_factor
                    if source.priority == Priority.HIGH
                    else mc.latency_factor
                )
                slice_latency = mc_latency * self._routing_latency_adjust(
                    source, subdomain
                )
                if self.snc_enabled:
                    # Shared-mesh residual coupling from the sibling
                    # subdomains on the same socket. Convex in a sibling's
                    # utilization: negligible at moderate load (preserving
                    # the paper's better-than-standalone behaviour under
                    # light pressure), material only near saturation.
                    for sibling in self.topology.sibling_subdomains(subdomain):
                        slice_latency += (
                            self.spec.mesh_coupling
                            * mc_loads[sibling].utilization ** 3
                        )
                slice_latency += home_injection[target_socket]
                if target_socket != home_socket:
                    upi = upi_loads.get((home_socket, target_socket))
                    if upi is not None:
                        slice_grant *= upi.grant_ratio
                        slice_latency *= upi.remote_latency_factor
                grant += weight * slice_grant
                latency += weight * slice_latency
            mba_cap = caps.get(source.clos, 1.0)
            source_rates[source.source_id] = SourceRates(
                bw_grant=clamp(grant, 1e-9, 1.0),
                latency_factor=max(latency, 0.5),
                core_throttle=pressures[home_socket].core_throttle,
                prefetch_speed=pf_speed[source.source_id],
                llc_hit=llc_hit[source.source_id],
                llc_speed=clamp(
                    1.0
                    - source.llc_speed_sensitivity
                    * (1.0 - llc_hit[source.source_id]),
                    0.05,
                    1.0,
                ),
                smt_factor=smt[source.source_id],
                cpu_share=min(1.0, len(source.cores) / source.threads),
                # The MBA rate controller throttles the core-to-LLC path,
                # so part of the cap lands on compute (Section VI-D).
                mba_core_factor=0.45 + 0.55 * mba_cap,
                mba_issue=mba_cap,
            )

        return SolveResult(
            mc_loads=mc_loads,
            socket_pressures=pressures,
            upi_loads=upi_loads,
            source_rates=source_rates,
        )

    # ------------------------------------------------------- what-if solves
    def _variant_inputs(
        self, sources: list[TrafficSource], variant: KnobVariant
    ) -> tuple[dict[int, float], dict[str, float]]:
        """Materialize a variant's effective MBA caps and fraction overrides."""
        caps = dict(self.mba_caps)
        caps.update(dict(variant.mba_caps))
        overrides = dict(variant.prefetch_fractions)
        return caps, overrides

    def solve_variant(
        self, sources: list[TrafficSource], variant: KnobVariant
    ) -> SolveResult:
        """Scalar what-if solve under a knob overlay (the batch reference).

        Runs the exact scalar fixed point with the variant's MBA caps and
        per-source prefetcher fractions substituted for the live ones; the
        machine's state is never touched and nothing is cached.
        """
        self.stats.solves += 1
        GLOBAL_STATS.solves += 1
        if not sources:
            if self._empty_result is None:
                self._empty_result = empty_solve_result(self.spec)
            return self._empty_result
        caps, overrides = self._variant_inputs(sources, variant)

        def fraction_of(source: TrafficSource) -> float:
            override = overrides.get(source.source_id)
            if override is not None:
                return override
            return self.prefetchers.enabled_fraction(source.cores)

        pf_demand: dict[str, float] = {}
        pf_speed: dict[str, float] = {}
        for source in sources:
            fraction = fraction_of(source)
            pf_demand[source.source_id] = source.prefetch.demand_factor(fraction)
            pf_speed[source.source_id] = source.prefetch.speed_factor(fraction)
        by_socket: dict[int, list[TrafficSource]] = {}
        for source in sources:
            by_socket.setdefault(self._socket_of_source(source), []).append(source)
        llc_hit = self._llc_hit_fractions(by_socket)
        smt = self._smt_factors(sources)
        source_socket = {s.source_id: self._socket_of_source(s) for s in sources}
        return self._solve_core(
            sources,
            pf_demand,
            pf_speed,
            llc_hit,
            smt,
            source_socket,
            mba_caps=caps,
            fraction_of=fraction_of,
        )

    def solve_batch(
        self, sources: list[TrafficSource], variants: Sequence[KnobVariant]
    ) -> list[SolveResult]:
        """Vectorized what-if solve over many knob variants at once.

        Evaluates the bandwidth-contention fixed point for every variant in
        one set of numpy array passes — the per-controller latency/grant
        curves, UPI link state, socket distress pressure, and per-source
        rate assembly are all batched over the variant axis. The source
        *structure* (placements, working sets, priorities) is shared; only
        knobs vary, which is exactly the fig05/fig13/fig16 what-if shape.

        The scalar :meth:`solve_variant` is the semantic reference: results
        agree to floating-point round-off with identical fixed-point round
        counts (asserted by the property suite).
        """
        variants = list(variants)
        if not variants:
            return []
        self.stats.solves += len(variants)
        GLOBAL_STATS.solves += len(variants)
        self.stats.batch_points += len(variants)
        GLOBAL_STATS.batch_points += len(variants)
        if not sources:
            if self._empty_result is None:
                self._empty_result = empty_solve_result(self.spec)
            return [self._empty_result] * len(variants)

        topo = self.topology
        n_var = len(variants)
        n_src = len(sources)
        mc_ids = list(self._mc_models)
        mc_index = {mc_id: j for j, mc_id in enumerate(mc_ids)}
        n_mc = len(mc_ids)

        # ---------------------------------------------- variant-independent
        by_socket: dict[int, list[TrafficSource]] = {}
        for source in sources:
            by_socket.setdefault(self._socket_of_source(source), []).append(source)
        llc_hit = self._llc_hit_fractions(by_socket)
        smt = self._smt_factors(sources)
        source_socket = {s.source_id: self._socket_of_source(s) for s in sources}
        source_index = {s.source_id: i for i, s in enumerate(sources)}

        base_demand = np.array([s.demand_gbps for s in sources])
        miss_inflation = np.array(
            [
                1.0 + s.llc_miss_traffic_gain * (1.0 - llc_hit[s.source_id])
                for s in sources
            ]
        )
        cpu_share = np.array(
            [min(1.0, len(s.cores) / s.threads) for s in sources]
        )
        hi_mask = np.array(
            [s.priority == Priority.HIGH for s in sources], dtype=float
        )
        lo_mask = 1.0 - hi_mask
        pf_gain = np.array([s.prefetch.traffic_gain for s in sources])
        pf_off_demand = np.array([s.prefetch.off_demand for s in sources])
        pf_off_speed = np.array([s.prefetch.off_speed for s in sources])

        # Routing structure: per-source slice weights onto controllers (with
        # the cross-socket coherence amplification folded in) and onto the
        # ordered UPI socket pairs.
        weights = np.zeros((n_src, n_mc))
        pair_index: dict[tuple[int, int], int] = {}
        pair_of_slice: dict[tuple[int, int], int] = {}  # (src, mc) -> pair
        for si, source in enumerate(sources):
            home = source_socket[source.source_id]
            for subdomain, weight in source.mem_weights.items():
                j = mc_index[subdomain]
                target = topo.socket_of_subdomain(subdomain)
                slice_weight = weight
                if target != home:
                    slice_weight *= 1.0 + self.spec.upi.coherence_overhead
                    pair = (home, target)
                    if pair not in pair_index:
                        pair_index[pair] = len(pair_index)
                    pair_of_slice[(si, j)] = pair_index[pair]
                weights[si, j] = slice_weight
        n_pair = len(pair_index)
        upi_weights = np.zeros((n_src, n_pair))
        for (si, j), p in pair_of_slice.items():
            upi_weights[si, p] += weights[si, j]

        # ------------------------------------------------- variant overlays
        base_fraction = np.array(
            [self.prefetchers.enabled_fraction(s.cores) for s in sources]
        )
        fraction = np.tile(base_fraction, (n_var, 1))
        caps_bs = np.ones((n_var, n_src))
        for b, variant in enumerate(variants):
            caps, overrides = self._variant_inputs(sources, variant)
            for source_id, value in overrides.items():
                si = source_index.get(source_id)
                if si is not None:
                    fraction[b, si] = value
            for si, source in enumerate(sources):
                caps_bs[b, si] = caps.get(source.clos, 1.0)

        def pf_factors(frac: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            f = np.clip(frac, 0.0, 1.0)
            return (
                pf_off_demand + f * (pf_gain - pf_off_demand),
                pf_off_speed + f * (1.0 - pf_off_speed),
            )

        pf_demand, pf_speed = pf_factors(fraction)

        sockets = range(topo.num_sockets)
        socket_mc_cols = {
            sk: [mc_index[m] for m in topo.subdomains_of_socket(sk)]
            for sk in sockets
        }
        strength = np.array(
            [self.spec.sockets[sk].backpressure_strength for sk in sockets]
        )

        def resolve_pass(pf_demand: np.ndarray) -> dict[str, np.ndarray]:
            demand = base_demand * pf_demand * miss_inflation * cpu_share * caps_bs
            demand_hi = (demand * hi_mask) @ weights
            demand_lo = (demand * lo_mask) @ weights
            out = {
                "demand": demand_hi + demand_lo,
                "delivered": np.empty((n_var, n_mc)),
                "grant": np.empty((n_var, n_mc)),
                "hi_grant": np.empty((n_var, n_mc)),
                "lo_grant": np.empty((n_var, n_mc)),
                "util": np.empty((n_var, n_mc)),
                "lat": np.empty((n_var, n_mc)),
                "hi_lat": np.empty((n_var, n_mc)),
                "sat": np.empty((n_var, n_mc)),
            }
            with np.errstate(divide="ignore", invalid="ignore"):
                for j, mc_id in enumerate(mc_ids):
                    spec = self._mc_models[mc_id].spec
                    peak = spec.peak_bw_gbps

                    def curve(util: np.ndarray) -> np.ndarray:
                        u = np.clip(util, 0.0, 0.999)
                        factor = 1.0 + spec.latency_curve_a * (
                            u ** spec.latency_curve_b
                        ) / (1.0 - u)
                        return np.minimum(factor, spec.latency_factor_cap)

                    def distress(ratio: np.ndarray) -> np.ndarray:
                        return np.clip(
                            (ratio - spec.distress_start) / spec.distress_span,
                            0.0,
                            1.0,
                        )

                    hi_d = demand_hi[:, j]
                    lo_d = demand_lo[:, j]
                    total = hi_d + lo_d
                    if self.priority_mode:
                        hi_del = np.minimum(hi_d, peak)
                        hi_grant = np.where(
                            hi_d <= peak, 1.0, peak / np.maximum(hi_d, 1e-300)
                        )
                        residual = peak - hi_del
                        lo_del = np.minimum(lo_d, residual)
                        lo_grant = np.where(
                            lo_d <= residual,
                            1.0,
                            lo_del / np.maximum(lo_d, 1e-300),
                        )
                        delivered = hi_del + lo_del
                        grant = np.where(
                            total > 0, delivered / np.maximum(total, 1e-300), 1.0
                        )
                        sat = distress(delivered / peak)
                        hi_eff = np.minimum(
                            0.999, (hi_del + 0.15 * lo_del) / peak
                        )
                        hi_lat = curve(hi_eff)
                    else:
                        delivered = np.minimum(total, peak)
                        grant = np.where(
                            total <= peak, 1.0, peak / np.maximum(total, 1e-300)
                        )
                        hi_grant = lo_grant = grant
                        sat = distress(total / peak)
                        hi_lat = None
                    util = delivered / peak
                    lat = curve(util)
                    out["delivered"][:, j] = delivered
                    out["grant"][:, j] = grant
                    out["hi_grant"][:, j] = hi_grant
                    out["lo_grant"][:, j] = lo_grant
                    out["util"][:, j] = util
                    out["lat"][:, j] = lat
                    out["hi_lat"][:, j] = lat if hi_lat is None else hi_lat
                    out["sat"][:, j] = sat

                demand = base_demand * pf_demand * miss_inflation
                demand = demand * cpu_share * caps_bs
                upi_demand = demand @ upi_weights  # [n_var, n_pair]
                upi_peak = self.spec.upi.peak_bw_gbps
                upi_delivered = np.minimum(upi_demand, upi_peak)
                out["upi_demand"] = upi_demand
                out["upi_util"] = upi_delivered / upi_peak
                out["upi_grant"] = np.where(
                    upi_demand <= upi_peak,
                    1.0,
                    upi_peak / np.maximum(upi_demand, 1e-300),
                )
                u = np.clip(out["upi_util"], 0.0, 0.999)
                out["upi_rlat"] = np.minimum(
                    1.25 + 0.6 * (u ** 2) / (1.0 - u), 8.0
                )

            sat_socket = np.zeros((n_var, topo.num_sockets))
            for sk in sockets:
                cols = socket_mc_cols[sk]
                if cols:
                    sat_socket[:, sk] = np.clip(
                        out["sat"][:, cols].max(axis=1), 0.0, 1.0
                    )
            out["sat_socket"] = sat_socket
            out["throttle"] = 1.0 - strength[np.newaxis, :] * sat_socket
            return out

        state = resolve_pass(pf_demand)
        rounds = n_var
        if self.qos_aware_prefetch:
            triggered = state["sat_socket"].max(axis=1) > 0.0
            if triggered.any():
                rounds += int(triggered.sum())
                home_sat = state["sat_socket"][
                    :, [source_socket[s.source_id] for s in sources]
                ]
                effective = fraction * (1.0 - home_sat)
                qos_rows = triggered[:, np.newaxis] & (lo_mask > 0)[np.newaxis, :]
                new_fraction = np.where(qos_rows, effective, fraction)
                pf_demand, pf_speed = pf_factors(new_fraction)
                state = resolve_pass(pf_demand)
        self.stats.fixed_point_rounds += rounds
        GLOBAL_STATS.fixed_point_rounds += rounds

        # Home-socket latency injection from inbound coherence traffic.
        injection = np.zeros((n_var, topo.num_sockets))
        for (_, target), p in pair_index.items():
            u = np.clip(state["upi_util"][:, p], 0.0, 1.0)
            injection[:, target] += (
                self.spec.upi.latency_injection
                * self.spec.remote_sensitivity
                * (u ** 1.5)
            )

        # ------------------------------------------------- rate assembly
        grant_bs = np.zeros((n_var, n_src))
        latency_bs = np.zeros((n_var, n_src))
        for si, source in enumerate(sources):
            home = source_socket[source.source_id]
            grants = (
                state["hi_grant"]
                if source.priority == Priority.HIGH
                else state["lo_grant"]
            )
            mc_lat = (
                state["hi_lat"]
                if source.priority == Priority.HIGH
                else state["lat"]
            )
            for subdomain, weight in source.mem_weights.items():
                j = mc_index[subdomain]
                target = topo.socket_of_subdomain(subdomain)
                slice_grant = grants[:, j].copy()
                slice_latency = mc_lat[:, j] * self._routing_latency_adjust(
                    source, subdomain
                )
                if self.snc_enabled:
                    for sibling in topo.sibling_subdomains(subdomain):
                        slice_latency = slice_latency + (
                            self.spec.mesh_coupling
                            * state["util"][:, mc_index[sibling]] ** 3
                        )
                slice_latency = slice_latency + injection[:, target]
                if target != home:
                    p = pair_of_slice.get((si, j))
                    if p is not None:
                        slice_grant *= state["upi_grant"][:, p]
                        slice_latency = slice_latency * state["upi_rlat"][:, p]
                grant_bs[:, si] += weight * slice_grant
                latency_bs[:, si] += weight * slice_latency

        grant_bs = np.clip(grant_bs, 1e-9, 1.0)
        latency_bs = np.maximum(latency_bs, 0.5)
        llc_speed = {
            s.source_id: clamp(
                1.0
                - s.llc_speed_sensitivity * (1.0 - llc_hit[s.source_id]),
                0.05,
                1.0,
            )
            for s in sources
        }

        # ------------------------------------------- per-variant re-assembly
        results: list[SolveResult] = []
        for b in range(n_var):
            mc_loads = {
                mc_id: McLoad(
                    demand_gbps=float(state["demand"][b, j]),
                    delivered_gbps=float(state["delivered"][b, j]),
                    grant_ratio=float(state["grant"][b, j]),
                    utilization=float(state["util"][b, j]),
                    latency_factor=float(state["lat"][b, j]),
                    saturation=float(state["sat"][b, j]),
                    hi_latency_factor=float(state["hi_lat"][b, j]),
                )
                for j, mc_id in enumerate(mc_ids)
            }
            pressures = {
                sk: SocketPressure(
                    saturation=float(state["sat_socket"][b, sk]),
                    core_throttle=float(state["throttle"][b, sk]),
                )
                for sk in sockets
            }
            upi_loads = {
                pair: UpiLoad(
                    demand_gbps=float(state["upi_demand"][b, p]),
                    utilization=float(state["upi_util"][b, p]),
                    grant_ratio=float(state["upi_grant"][b, p]),
                    remote_latency_factor=float(state["upi_rlat"][b, p]),
                )
                for pair, p in pair_index.items()
            }
            source_rates = {}
            for si, source in enumerate(sources):
                cap = float(caps_bs[b, si])
                source_rates[source.source_id] = SourceRates(
                    bw_grant=float(grant_bs[b, si]),
                    latency_factor=float(latency_bs[b, si]),
                    core_throttle=float(
                        state["throttle"][b, source_socket[source.source_id]]
                    ),
                    prefetch_speed=float(pf_speed[b, si]),
                    llc_hit=llc_hit[source.source_id],
                    llc_speed=llc_speed[source.source_id],
                    smt_factor=smt[source.source_id],
                    cpu_share=float(cpu_share[si]),
                    mba_core_factor=0.45 + 0.55 * cap,
                    mba_issue=cap,
                )
            results.append(
                SolveResult(
                    mc_loads=mc_loads,
                    socket_pressures=pressures,
                    upi_loads=upi_loads,
                    source_rates=source_rates,
                )
            )
        return results
