"""Host hardware model.

This package is the substrate the paper's runtime manipulates: a dual-socket
server with per-socket cores, a last-level cache partitionable with CAT, two
memory controllers per socket that can be exposed as NUMA subdomains
(SNC/Cluster-on-Die), a cross-socket UPI link, PCIe-attached accelerators,
per-core L2 prefetchers, and the socket-wide memory-backpressure (distress)
mechanism.

The model is *fluid*: workloads declare bandwidth demands and compute needs;
the :class:`~repro.hw.contention.ContentionSolver` resolves them into per-task
speed multipliers every time anything changes, and the discrete-event engine
advances work analytically between changes.
"""

from repro.hw.machine import Machine
from repro.hw.placement import Placement
from repro.hw.spec import (
    LlcSpec,
    MachineSpec,
    MemoryControllerSpec,
    PcieSpec,
    SocketSpec,
    UpiSpec,
    cloud_tpu_host_spec,
    gpu_host_spec,
    tpu_host_spec,
)
from repro.hw.topology import Topology

__all__ = [
    "LlcSpec",
    "Machine",
    "MachineSpec",
    "MemoryControllerSpec",
    "PcieSpec",
    "Placement",
    "SocketSpec",
    "Topology",
    "UpiSpec",
    "cloud_tpu_host_spec",
    "gpu_host_spec",
    "tpu_host_spec",
]
