"""Time-integrated hardware telemetry.

The contention state is piecewise constant between solves; the accumulator
integrates each signal over time so that the simulated perf-counter interface
(:mod:`repro.hostif.perf`) can expose *windowed averages* exactly the way a
runtime samples real counters: read, wait, read again, divide by elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.contention import SolveResult


@dataclass
class TelemetrySnapshot:
    """Raw integral values at one instant (monotonically non-decreasing)."""

    time: float = 0.0
    #: Integral of delivered GB/s per controller (i.e. gigabytes moved).
    mc_bytes: dict[int, float] = field(default_factory=dict)
    #: Integral of the latency factor per controller (factor-seconds).
    mc_latency: dict[int, float] = field(default_factory=dict)
    #: Integral of saturation per controller (distress-seconds).
    mc_saturation: dict[int, float] = field(default_factory=dict)
    #: Integral of the distress throttle per socket (factor-seconds).
    socket_throttle: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TelemetryWindow:
    """Averages over the interval between two snapshots."""

    elapsed: float
    mc_bandwidth_gbps: dict[int, float]
    mc_latency_factor: dict[int, float]
    mc_saturation: dict[int, float]
    socket_throttle: dict[int, float]

    def bandwidth_of(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Summed average bandwidth over a set of controllers, GB/s."""
        return sum(self.mc_bandwidth_gbps.get(m, 0.0) for m in subdomains)

    def max_latency_factor(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Worst average latency factor over a set of controllers."""
        return max(
            (self.mc_latency_factor.get(m, 1.0) for m in subdomains), default=1.0
        )

    def max_saturation(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Worst average saturation over a set of controllers."""
        return max((self.mc_saturation.get(m, 0.0) for m in subdomains), default=0.0)


class TelemetryAccumulator:
    """Integrates solve-state signals over simulated time."""

    def __init__(self) -> None:
        self._snapshot = TelemetrySnapshot()
        self._last_time = 0.0
        self._state: SolveResult | None = None
        #: How many distinct solve states have been installed. Together with
        #: ``Machine.solver_stats`` this shows how much work the signature
        #: short-circuit is avoiding: skipped re-solves never land here.
        self.state_changes = 0

    @property
    def snapshot(self) -> TelemetrySnapshot:
        """The current integral values (advance first via :meth:`advance`)."""
        return self._snapshot

    def set_state(self, state: SolveResult, now: float) -> None:
        """Switch to a new constant state, integrating the previous one."""
        self.advance(now)
        self._state = state
        self.state_changes += 1

    def advance(self, now: float) -> None:
        """Integrate the current state up to ``now``."""
        dt = now - self._last_time
        if dt < 0:
            dt = 0.0
        if self._state is not None and dt > 0:
            snap = self._snapshot
            for mc_id, load in self._state.mc_loads.items():
                snap.mc_bytes[mc_id] = (
                    snap.mc_bytes.get(mc_id, 0.0) + load.delivered_gbps * dt
                )
                snap.mc_latency[mc_id] = (
                    snap.mc_latency.get(mc_id, 0.0) + load.latency_factor * dt
                )
                snap.mc_saturation[mc_id] = (
                    snap.mc_saturation.get(mc_id, 0.0) + load.saturation * dt
                )
            for socket_id, pressure in self._state.socket_pressures.items():
                snap.socket_throttle[socket_id] = (
                    snap.socket_throttle.get(socket_id, 0.0)
                    + pressure.core_throttle * dt
                )
        self._last_time = max(self._last_time, now)
        self._snapshot.time = self._last_time

    def window_since(self, previous: TelemetrySnapshot, now: float) -> TelemetryWindow:
        """Averages between a previously-copied snapshot and ``now``.

        A degenerate (zero-width) window — two reads at the same simulated
        instant — has no information in it; it reports the documented
        defaults (bandwidth 0.0, latency factor 1.0, saturation 0.0,
        throttle 1.0) rather than a garbage ``delta / epsilon`` ratio.
        """
        self.advance(now)
        current = self._snapshot
        elapsed = max(current.time - previous.time, 0.0)

        def averages(
            cur: dict[int, float], prev: dict[int, float], default: float
        ) -> dict[int, float]:
            keys = set(cur) | set(prev)
            out = {}
            for key in keys:
                delta = cur.get(key, 0.0) - prev.get(key, 0.0)
                out[key] = delta / elapsed if elapsed > 0 else default
            return out

        return TelemetryWindow(
            elapsed=elapsed,
            mc_bandwidth_gbps=averages(current.mc_bytes, previous.mc_bytes, 0.0),
            mc_latency_factor=averages(current.mc_latency, previous.mc_latency, 1.0),
            mc_saturation=averages(
                current.mc_saturation, previous.mc_saturation, 0.0
            ),
            socket_throttle=averages(
                current.socket_throttle, previous.socket_throttle, 1.0
            ),
        )

    def copy_snapshot(self) -> TelemetrySnapshot:
        """A deep copy of the current integrals, for later windowed reads."""
        snap = self._snapshot
        return TelemetrySnapshot(
            time=snap.time,
            mc_bytes=dict(snap.mc_bytes),
            mc_latency=dict(snap.mc_latency),
            mc_saturation=dict(snap.mc_saturation),
            socket_throttle=dict(snap.socket_throttle),
        )
