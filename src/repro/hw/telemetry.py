"""Time-integrated hardware telemetry.

The contention state is piecewise constant between solves; the accumulator
integrates each signal over time so that the simulated perf-counter interface
(:mod:`repro.hostif.perf`) can expose *windowed averages* exactly the way a
runtime samples real counters: read, wait, read again, divide by elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.contention import SolveResult


@dataclass
class TelemetrySnapshot:
    """Raw integral values at one instant (monotonically non-decreasing)."""

    time: float = 0.0
    #: Integral of delivered GB/s per controller (i.e. gigabytes moved).
    mc_bytes: dict[int, float] = field(default_factory=dict)
    #: Integral of the latency factor per controller (factor-seconds).
    mc_latency: dict[int, float] = field(default_factory=dict)
    #: Integral of saturation per controller (distress-seconds).
    mc_saturation: dict[int, float] = field(default_factory=dict)
    #: Integral of the distress throttle per socket (factor-seconds).
    socket_throttle: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TelemetryWindow:
    """Averages over the interval between two snapshots."""

    elapsed: float
    mc_bandwidth_gbps: dict[int, float]
    mc_latency_factor: dict[int, float]
    mc_saturation: dict[int, float]
    socket_throttle: dict[int, float]

    def bandwidth_of(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Summed average bandwidth over a set of controllers, GB/s."""
        return sum(self.mc_bandwidth_gbps.get(m, 0.0) for m in subdomains)

    def max_latency_factor(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Worst average latency factor over a set of controllers."""
        return max(
            (self.mc_latency_factor.get(m, 1.0) for m in subdomains), default=1.0
        )

    def max_saturation(self, subdomains: tuple[int, ...] | list[int]) -> float:
        """Worst average saturation over a set of controllers."""
        return max((self.mc_saturation.get(m, 0.0) for m in subdomains), default=0.0)


class TelemetryAccumulator:
    """Integrates solve-state signals over simulated time."""

    def __init__(self) -> None:
        self._snapshot = TelemetrySnapshot()
        self._last_time = 0.0
        self._state: SolveResult | None = None
        #: Flattened per-state signal rows so the hot :meth:`advance` loop
        #: avoids attribute walks per segment. The solver cache interns
        #: results, so the same few state objects recur; rows are memoized
        #: per object (the memo pins the state to keep ids valid). Integration
        #: stays eager and chronological on purpose: grouping spans per state
        #: would regroup floating-point sums and break the bit-equivalence
        #: between cache-on (interned states) and cache-off (fresh objects).
        self._mc_rows: list[tuple[int, float, float, float]] = []
        self._socket_rows: list[tuple[int, float]] = []
        self._rows_memo: dict[int, tuple] = {}
        #: How many distinct solve states have been installed. Together with
        #: ``Machine.solver_stats`` this shows how much work the signature
        #: short-circuit is avoiding: skipped re-solves never land here.
        self.state_changes = 0

    @property
    def snapshot(self) -> TelemetrySnapshot:
        """The current integral values (advance first via :meth:`advance`)."""
        return self._snapshot

    def set_state(self, state: SolveResult, now: float) -> None:
        """Switch to a new constant state, integrating the previous one."""
        self.advance(now)
        self._state = state
        memo = self._rows_memo.get(id(state))
        if memo is not None and memo[0] is state:
            self._mc_rows = memo[1]
            self._socket_rows = memo[2]
        else:
            self._mc_rows = [
                (mc_id, load.delivered_gbps, load.latency_factor, load.saturation)
                for mc_id, load in state.mc_loads.items()
            ]
            self._socket_rows = [
                (socket_id, pressure.core_throttle)
                for socket_id, pressure in state.socket_pressures.items()
            ]
            if len(self._rows_memo) >= 128:
                self._rows_memo.clear()
            self._rows_memo[id(state)] = (state, self._mc_rows, self._socket_rows)
            # Seed the integral dicts so :meth:`advance` can use plain
            # ``d[k] += x`` (no per-row ``dict.get`` bound-method call).
            # ``0.0 + value * dt`` is the exact expression the missing-key
            # path computed, so the integrals are bit-identical.
            snap = self._snapshot
            for mc_id, _, _, _ in self._mc_rows:
                snap.mc_bytes.setdefault(mc_id, 0.0)
                snap.mc_latency.setdefault(mc_id, 0.0)
                snap.mc_saturation.setdefault(mc_id, 0.0)
            for socket_id, _ in self._socket_rows:
                snap.socket_throttle.setdefault(socket_id, 0.0)
        self.state_changes += 1

    def advance(self, now: float) -> None:
        """Integrate the current state up to ``now``."""
        dt = now - self._last_time
        if dt <= 0:
            # Time did not move (or moved backwards, which integrates as
            # zero width): the integrals are already up to date.
            return
        if self._state is not None:
            snap = self._snapshot
            mc_bytes = snap.mc_bytes
            mc_latency = snap.mc_latency
            mc_saturation = snap.mc_saturation
            socket_throttle = snap.socket_throttle
            for mc_id, delivered, latency, saturation in self._mc_rows:
                mc_bytes[mc_id] += delivered * dt
                mc_latency[mc_id] += latency * dt
                mc_saturation[mc_id] += saturation * dt
            for socket_id, throttle in self._socket_rows:
                socket_throttle[socket_id] += throttle * dt
        self._last_time = now
        self._snapshot.time = now

    def window_since(self, previous: TelemetrySnapshot, now: float) -> TelemetryWindow:
        """Averages between a previously-copied snapshot and ``now``.

        A degenerate (zero-width) window — two reads at the same simulated
        instant — has no information in it; it reports the documented
        defaults (bandwidth 0.0, latency factor 1.0, saturation 0.0,
        throttle 1.0) rather than a garbage ``delta / epsilon`` ratio.
        """
        self.advance(now)
        current = self._snapshot
        elapsed = max(current.time - previous.time, 0.0)

        def averages(
            cur: dict[int, float], prev: dict[int, float], default: float
        ) -> dict[int, float]:
            # Integral dicts only grow, so a snapshot copied earlier from
            # this accumulator satisfies ``prev.keys() <= cur.keys()`` and
            # one pass over ``cur`` suffices (``value - prev.get(...)`` is
            # the exact delta expression of the general path, so results
            # are bit-identical). Snapshots from elsewhere fall back to the
            # key-union walk.
            if prev.keys() <= cur.keys():
                prev_get = prev.get
                if elapsed > 0:
                    return {
                        key: (value - prev_get(key, 0.0)) / elapsed
                        for key, value in cur.items()
                    }
                return {key: default for key in cur}
            keys = set(cur) | set(prev)
            out = {}
            for key in keys:
                delta = cur.get(key, 0.0) - prev.get(key, 0.0)
                out[key] = delta / elapsed if elapsed > 0 else default
            return out

        return TelemetryWindow(
            elapsed=elapsed,
            mc_bandwidth_gbps=averages(current.mc_bytes, previous.mc_bytes, 0.0),
            mc_latency_factor=averages(current.mc_latency, previous.mc_latency, 1.0),
            mc_saturation=averages(
                current.mc_saturation, previous.mc_saturation, 0.0
            ),
            socket_throttle=averages(
                current.socket_throttle, previous.socket_throttle, 1.0
            ),
        )

    def copy_snapshot(self) -> TelemetrySnapshot:
        """A deep copy of the current integrals, for later windowed reads."""
        snap = self._snapshot
        return TelemetrySnapshot(
            time=snap.time,
            mc_bytes=dict(snap.mc_bytes),
            mc_latency=dict(snap.mc_latency),
            mc_saturation=dict(snap.mc_saturation),
            socket_throttle=dict(snap.socket_throttle),
        )
