"""Task placement: CPU affinity, memory-routing weights, and CAT class.

A :class:`Placement` is the full description of *where* a task runs and where
its memory traffic goes. The host-interface layer (``repro.hostif``) mutates
placements the way the real runtime would via cgroup cpusets, numactl and
resctrl; the contention solver consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


def normalized_weights(weights: dict[int, float]) -> dict[int, float]:
    """Normalize routing weights to sum to 1; reject empty/negative input."""
    if not weights:
        raise ConfigurationError("memory weights must be non-empty")
    total = float(sum(weights.values()))
    if total <= 0:
        raise ConfigurationError("memory weights must sum to a positive value")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("memory weights must be non-negative")
    return {node: w / total for node, w in weights.items() if w > 0}


@dataclass(frozen=True)
class Placement:
    """Where a task runs.

    Attributes:
        cores: global core ids the task's threads may run on.
        mem_weights: fraction of the task's memory traffic routed to each
            subdomain's controller (normalized at construction).
        clos: resctrl class-of-service id, selecting a CAT way-mask (and,
            under the hardware-QoS policy, an MBA throttle level).
    """

    cores: frozenset[int]
    mem_weights: dict[int, float] = field(default_factory=dict)
    clos: int = 0

    def __post_init__(self) -> None:
        if not self.cores:
            raise ConfigurationError("placement needs at least one core")
        object.__setattr__(self, "cores", frozenset(self.cores))
        object.__setattr__(
            self, "mem_weights", normalized_weights(dict(self.mem_weights))
        )
        if self.clos < 0:
            raise ConfigurationError("clos must be non-negative")

    @property
    def num_cores(self) -> int:
        """Number of cores the task may use."""
        return len(self.cores)

    def with_cores(self, cores: frozenset[int] | set[int] | tuple[int, ...]) -> "Placement":
        """Return a copy with a different CPU mask."""
        return replace(self, cores=frozenset(cores))

    def with_mem_weights(self, mem_weights: dict[int, float]) -> "Placement":
        """Return a copy with different memory-routing weights."""
        return replace(self, mem_weights=dict(mem_weights))

    def with_clos(self, clos: int) -> "Placement":
        """Return a copy assigned to a different resctrl class of service."""
        return replace(self, clos=clos)

    def overlaps_cores(self, other: "Placement") -> bool:
        """True if the two placements share any core (SMT colocation)."""
        return bool(self.cores & other.cores)
