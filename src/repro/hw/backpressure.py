"""Socket-wide memory backpressure (the distress / ``FAST_ASSERTED`` model).

When any memory controller on a socket is pushed past its distress threshold,
it broadcasts a distress signal that throttles *every* core on that socket —
including cores in the other NUMA subdomain whose own controller is idle.
This deliberately subdomain-oblivious behaviour is the central hardware
pathology of Section IV-B: it is why NUMA subdomains alone cannot isolate an
accelerated task, and why Kelp manages saturation by disabling low-priority
prefetchers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import McLoad
from repro.units import clamp


@dataclass(frozen=True)
class SocketPressure:
    """Distress state of one socket for the current fluid epoch."""

    #: Fraction of cycles the distress signal is asserted, in [0, 1].
    saturation: float
    #: Multiplicative issue-rate factor applied to every core on the socket.
    core_throttle: float


def socket_pressure(
    mc_loads: list[McLoad], backpressure_strength: float
) -> SocketPressure:
    """Combine controller saturations into the socket's distress state.

    The broadcast wire is shared: the most-saturated controller dominates,
    and the throttle factor is ``1 - strength * saturation``.
    """
    saturation = max((load.saturation for load in mc_loads), default=0.0)
    saturation = clamp(saturation, 0.0, 1.0)
    throttle = 1.0 - backpressure_strength * saturation
    return SocketPressure(saturation=saturation, core_throttle=throttle)
