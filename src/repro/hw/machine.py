"""Machine assembly: the live host that tasks attach to.

The :class:`Machine` owns the hardware models, the set of attached tasks, the
telemetry accumulator, and the recompute loop that keeps fluid rates
consistent: any state change calls :meth:`Machine.notify_change`, which syncs
all tasks at the old rates, re-solves contention, and pushes new rates.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence

from repro.errors import SimulationError, TopologyError
from repro.hw.contention import (
    ContentionSolver,
    KnobVariant,
    SolveResult,
    SolverStats,
    TrafficSource,
    empty_solve_result,
)
from repro.hw.llc import LlcModel
from repro.hw.prefetcher import PrefetcherBank
from repro.hw.spec import MachineSpec
from repro.hw.telemetry import TelemetryAccumulator
from repro.hw.topology import Topology

if TYPE_CHECKING:
    from repro.sim import Simulator

#: Guard against runaway recompute feedback.
_MAX_RECOMPUTE_ROUNDS = 25


class AttachedTask(Protocol):
    """The contract tasks must implement to live on a :class:`Machine`."""

    task_id: str

    def traffic_sources(self) -> list[TrafficSource]:
        """Current active sources (may be empty while idle)."""

    def sync(self, now: float) -> None:
        """Integrate progress at the rates in force since the last sync."""

    def apply_rates(self, result: SolveResult, now: float) -> None:
        """Adopt new rates; reschedule any pending completion events."""


class Machine:
    """A live dual-socket accelerated host."""

    def __init__(self, spec: MachineSpec, sim: "Simulator") -> None:
        self.spec = spec
        self.sim = sim
        self.topology = Topology(spec)
        self.prefetchers = PrefetcherBank(spec.total_cores)
        self.llcs = {
            socket_id: LlcModel(socket.llc)
            for socket_id, socket in enumerate(spec.sockets)
        }
        self.solver = ContentionSolver(spec, self.topology, self.prefetchers, self.llcs)
        self.telemetry = TelemetryAccumulator()
        self._tasks: dict[str, AttachedTask] = {}
        self._state: SolveResult = empty_solve_result(spec)
        self._in_recompute = False
        self._dirty = False
        #: Depth of :meth:`hold_recompute` nesting; while positive,
        #: :meth:`notify_change` only marks work as deferred.
        self._hold = 0
        self._deferred = False
        #: Simulated instant every attached task was last synced at. Fluid
        #: progress only accrues as time advances, so repeat recompute
        #: rounds at one instant skip the whole sync pass.
        self._synced_at = -1.0
        #: Solve signature of the state currently in force; ``None`` both
        #: before the first solve and whenever caching is disabled.
        self._last_signature: object | None = None
        self.telemetry.set_state(self._state, sim.now)

    # ---------------------------------------------------------- attributes
    @property
    def state(self) -> SolveResult:
        """The most recent contention solve."""
        return self._state

    @property
    def solver_stats(self) -> SolverStats:
        """Performance counters of the embedded contention solver."""
        return self.solver.stats

    @property
    def snc_enabled(self) -> bool:
        """Whether sub-NUMA clustering is active."""
        return self.solver.snc_enabled

    def set_snc(self, enabled: bool) -> None:
        """Toggle SNC/Cluster-on-Die (a boot-time knob on real hardware)."""
        if self.solver.snc_enabled != enabled:
            self.solver.snc_enabled = enabled
            self.notify_change()

    def set_priority_mode(self, enabled: bool) -> None:
        """Toggle the request-level prioritization estimate (Section VI-D)."""
        if self.solver.priority_mode != enabled:
            self.solver.priority_mode = enabled
            self.notify_change()

    # --------------------------------------------------------------- tasks
    def attach(self, task: AttachedTask) -> None:
        """Register a task; its sources join the next solve."""
        if task.task_id in self._tasks:
            raise TopologyError(f"task {task.task_id!r} already attached")
        self._tasks[task.task_id] = task
        self.notify_change()

    def detach(self, task_id: str) -> None:
        """Remove a task from the machine."""
        if task_id not in self._tasks:
            raise TopologyError(f"task {task_id!r} not attached")
        del self._tasks[task_id]
        self.notify_change()

    def tasks(self) -> list[AttachedTask]:
        """All currently attached tasks."""
        return list(self._tasks.values())

    def task(self, task_id: str) -> AttachedTask:
        """Look up an attached task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TopologyError(f"task {task_id!r} not attached") from None

    # ----------------------------------------------------------- recompute
    @contextmanager
    def hold_recompute(self) -> Iterator[None]:
        """Coalesce :meth:`notify_change` calls inside the block into one.

        A control tick writes several knobs back-to-back at the same
        simulated instant; without the hold every write triggers a full
        sync/solve/apply round. Under the hold, notifications are deferred
        and a single recompute runs at block exit (only if any arrived).
        No simulated time passes inside the block, so the final state —
        solved from the final knob values — is identical to running the
        intermediate recomputes.
        """
        self.begin_hold()
        try:
            yield
        finally:
            self.end_hold()

    def begin_hold(self) -> None:
        """Enter a recompute hold (plain-call form of :meth:`hold_recompute`).

        The per-tick control loop brackets its enforcement writes with
        ``begin_hold``/``end_hold`` directly: at half a million ticks per
        simulated fleet-day, the contextmanager-generator machinery is
        measurable overhead.
        """
        self._hold += 1

    def end_hold(self) -> None:
        """Exit a recompute hold; runs the deferred recompute at depth 0."""
        self._hold -= 1
        if self._hold == 0 and self._deferred:
            self._deferred = False
            self.notify_change()

    def what_if(self, variants: Sequence[KnobVariant]) -> list[SolveResult]:
        """Evaluate knob variants against the current source set, batched.

        Runs the solver's vectorized batch fixed point over the live traffic
        sources without touching machine state — the what-if primitive sweep
        experiments use to score many candidate knob settings at once.
        """
        sources: list[TrafficSource] = []
        for task in self._tasks.values():
            sources.extend(task.traffic_sources())
        return self.solver.solve_batch(sources, variants)

    def notify_change(self) -> None:
        """Re-solve contention after any state change.

        Re-entrant calls (a task reacting to new rates by changing phase) are
        coalesced into additional rounds of the outer loop.

        Fast path: the solver's *solve signature* canonically captures every
        input the solve depends on. When the signature matches the state
        already in force, the solve (and the redundant telemetry segment) is
        skipped entirely — tasks are still synced and re-offered the current
        rates, because phase changes may need to reschedule completion events
        even when contention is unchanged.
        """
        if self._hold:
            self._deferred = True
            return
        self._dirty = True
        if self._in_recompute:
            return
        self._in_recompute = True
        try:
            rounds = 0
            while self._dirty:
                rounds += 1
                if rounds > _MAX_RECOMPUTE_ROUNDS:
                    raise SimulationError(
                        "recompute did not stabilize; a task is oscillating"
                    )
                self._dirty = False
                now = self.sim.now
                tasks = list(self._tasks.values())
                if now != self._synced_at:
                    # Fluid progress only accrues as simulated time advances;
                    # repeat rounds at one instant skip the whole sync pass.
                    for task in tasks:
                        task.sync(now)
                    self._synced_at = now
                sources: list[TrafficSource] = []
                for task in tasks:
                    sources.extend(task.traffic_sources())
                signature = self.solver.solve_signature(sources)
                if signature is not None and signature == self._last_signature:
                    # Inputs identical to the state in force: skip the solve.
                    self.solver.note_short_circuit()
                else:
                    self._state = self.solver.solve(sources, signature=signature)
                    self._last_signature = signature
                    self.telemetry.set_state(self._state, now)
                for task in tasks:
                    task.apply_rates(self._state, now)
        finally:
            self._in_recompute = False
