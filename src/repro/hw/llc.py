"""Last-level cache model with CAT way partitioning.

The LLC determines, for each task, a *hit fraction*: how much of its hot
working set actually fits in the cache capacity it effectively owns. Misses
convert into extra memory traffic and a speed penalty — the workload supplies
the sensitivities, the cache supplies the hit fraction.

CAT (Intel Cache Allocation Technology) is modeled via resctrl way masks: a
class of service owns a set of ways; tasks in a CLOS share the capacity of
that CLOS's ways proportionally to their working sets. Overlapping way masks
share capacity between classes the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.spec import LlcSpec
from repro.units import clamp


@dataclass(frozen=True)
class LlcRequest:
    """One task's cache footprint inside a socket's LLC."""

    task_id: str
    #: Hot working-set size, MB. Zero means the task is cache-oblivious.
    working_set_mb: float
    #: resctrl class of service (selects the way mask).
    clos: int
    #: Relative access intensity; hotter tasks win more of a shared
    #: partition, matching LRU behaviour under unequal access rates.
    intensity: float = 1.0


def full_mask(spec: LlcSpec) -> int:
    """A way mask covering the entire cache."""
    return (1 << spec.ways) - 1


class LlcModel:
    """Computes per-task hit fractions for a single socket's LLC."""

    def __init__(self, spec: LlcSpec) -> None:
        self.spec = spec
        self._clos_masks: dict[int, int] = {0: full_mask(spec)}
        self._state_key: tuple[tuple[int, int], ...] | None = None
        #: Monotonic mutation counter (for external memo keys).
        self.version = 0

    # -------------------------------------------------------------- masks
    def set_clos_mask(self, clos: int, mask: int) -> None:
        """Assign a CAT way mask to a class of service."""
        if mask <= 0 or mask >= (1 << (self.spec.ways + 1)):
            raise ConfigurationError(
                f"way mask {mask:#x} invalid for {self.spec.ways}-way cache"
            )
        if self._clos_masks.get(clos) != mask:
            self._clos_masks[clos] = mask
            self._state_key = None
            self.version += 1

    def clos_mask(self, clos: int) -> int:
        """The way mask of ``clos`` (unknown classes default to all ways)."""
        return self._clos_masks.get(clos, full_mask(self.spec))

    def clos_capacity_mb(self, clos: int) -> float:
        """Capacity reachable by ``clos``, MB."""
        mask = self.clos_mask(clos)
        return bin(mask).count("1") * self.spec.mb_per_way

    def reset(self) -> None:
        """Drop all masks back to the default (everyone sees all ways)."""
        self._clos_masks = {0: full_mask(self.spec)}
        self._state_key = None
        self.version += 1

    def state_key(self) -> tuple[tuple[int, int], ...]:
        """Canonical, hashable snapshot of the CLOS→mask table.

        Part of the solver's *solve signature*: any mutation that changes
        hit-fraction outcomes (``set_clos_mask``/``reset``) changes this key,
        so cached :class:`~repro.hw.contention.SolveResult` entries can never
        be served across a CAT reconfiguration.
        """
        if self._state_key is None:
            self._state_key = tuple(sorted(self._clos_masks.items()))
        return self._state_key

    # -------------------------------------------------------------- solve
    def hit_fractions(self, requests: list[LlcRequest]) -> dict[str, float]:
        """Resolve hit fractions for all tasks sharing this LLC.

        Each way's capacity is divided among the tasks whose CLOS mask covers
        it, weighted by ``working_set * intensity``; a task's allocation is
        the sum over its ways, and its hit fraction is ``min(1, alloc/ws)``.
        """
        if not requests:
            return {}
        per_way = self.spec.mb_per_way
        allocations = {r.task_id: 0.0 for r in requests}
        weights = {
            r.task_id: max(0.0, r.working_set_mb) * max(0.0, r.intensity)
            for r in requests
        }
        for way in range(self.spec.ways):
            bit = 1 << way
            sharers = [r for r in requests if self.clos_mask(r.clos) & bit]
            total_weight = sum(weights[r.task_id] for r in sharers)
            if total_weight <= 0:
                continue
            for r in sharers:
                allocations[r.task_id] += per_way * weights[r.task_id] / total_weight
        fractions: dict[str, float] = {}
        for r in requests:
            if r.working_set_mb <= 0:
                fractions[r.task_id] = 1.0
            else:
                fractions[r.task_id] = clamp(
                    allocations[r.task_id] / r.working_set_mb, 0.0, 1.0
                )
        return fractions
