"""Memory-controller contention model.

Each channel group (NUMA subdomain) is a fluid server: demands are summed,
bandwidth over-subscription is resolved by proportional (or priority-ordered)
sharing, loaded latency follows a queueing-style curve, and heavy
over-subscription asserts the *distress* signal — the ``FAST_ASSERTED``
analogue — whose socket-wide throttling effect is computed in
:mod:`repro.hw.backpressure`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.spec import MemoryControllerSpec
from repro.units import clamp


@dataclass(frozen=True)
class McLoad:
    """Resolved state of one memory controller for the current fluid epoch."""

    #: Total raw demand offered (GB/s), before any grant scaling.
    demand_gbps: float
    #: Bandwidth actually delivered (GB/s), <= peak.
    delivered_gbps: float
    #: delivered/demand for proportional requesters, in (0, 1].
    grant_ratio: float
    #: delivered/peak utilization, in [0, 1].
    utilization: float
    #: Loaded-latency factor over the unloaded baseline, >= 1.
    latency_factor: float
    #: Fraction of cycles the distress signal is asserted, in [0, 1].
    saturation: float
    #: Latency factor seen by prioritized (high-priority) requesters; equals
    #: ``latency_factor`` except under request-level prioritization.
    hi_latency_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.hi_latency_factor <= 0.0:
            object.__setattr__(self, "hi_latency_factor", self.latency_factor)


class MemoryControllerModel:
    """Analytic model of one channel group.

    The model is stateless between solves; it converts an offered demand into
    an :class:`McLoad`. Priority-ordered allocation (used by the hardware-QoS
    policy estimate of Section VI-D) serves high-priority demand first and
    gives low priority the remainder.
    """

    def __init__(self, spec: MemoryControllerSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------- curves
    def latency_factor(self, utilization: float) -> float:
        """Loaded-latency multiplier at ``utilization`` of peak bandwidth."""
        u = clamp(utilization, 0.0, 0.999)
        spec = self.spec
        factor = 1.0 + spec.latency_curve_a * (u ** spec.latency_curve_b) / (1.0 - u)
        return min(factor, spec.latency_factor_cap)

    def saturation(self, demand_ratio: float) -> float:
        """Fraction of cycles distress is asserted, given demand/peak."""
        spec = self.spec
        return clamp((demand_ratio - spec.distress_start) / spec.distress_span, 0.0, 1.0)

    # -------------------------------------------------------------- solve
    def resolve(self, demand_gbps: float) -> McLoad:
        """Resolve a purely proportional-sharing controller."""
        if demand_gbps < 0:
            raise ConfigurationError(f"negative demand {demand_gbps}")
        peak = self.spec.peak_bw_gbps
        delivered = min(demand_gbps, peak)
        grant = 1.0 if demand_gbps <= peak else peak / demand_gbps
        utilization = delivered / peak
        return McLoad(
            demand_gbps=demand_gbps,
            delivered_gbps=delivered,
            grant_ratio=grant,
            utilization=utilization,
            latency_factor=self.latency_factor(utilization),
            saturation=self.saturation(demand_gbps / peak),
        )

    def resolve_prioritized(
        self, hi_demand_gbps: float, lo_demand_gbps: float
    ) -> tuple[McLoad, float, float]:
        """Resolve with strict priority: high-priority demand served first.

        Returns ``(load, hi_grant, lo_grant)``. The latency factor seen by the
        high-priority stream is computed at *its own* utilization share plus a
        fraction of the low-priority load (request-level prioritization hides
        most, not all, of the queueing behind low-priority traffic).
        """
        if hi_demand_gbps < 0 or lo_demand_gbps < 0:
            raise ConfigurationError("negative prioritized demand")
        peak = self.spec.peak_bw_gbps
        hi_delivered = min(hi_demand_gbps, peak)
        hi_grant = 1.0 if hi_demand_gbps <= peak else peak / hi_demand_gbps
        residual = peak - hi_delivered
        lo_delivered = min(lo_demand_gbps, residual)
        lo_grant = (
            1.0
            if lo_demand_gbps <= residual
            else (lo_delivered / lo_demand_gbps if lo_demand_gbps > 0 else 1.0)
        )
        total_demand = hi_demand_gbps + lo_demand_gbps
        delivered = hi_delivered + lo_delivered
        utilization = delivered / peak
        # Prioritized requests jump the queue: the high-priority stream only
        # queues behind itself plus a small unhideable slice of in-flight
        # low-priority requests (bank/bus occupancy it cannot preempt).
        hi_effective_util = min(
            0.999, (hi_delivered + 0.15 * lo_delivered) / peak
        )
        load = McLoad(
            demand_gbps=total_demand,
            delivered_gbps=delivered,
            grant_ratio=delivered / total_demand if total_demand > 0 else 1.0,
            utilization=utilization,
            latency_factor=self.latency_factor(utilization),
            # With request prioritization the distress signal is only driven
            # by traffic the controller cannot re-order away: saturation is
            # computed on delivered (capped) traffic, so it never asserts.
            saturation=self.saturation(delivered / peak),
            hi_latency_factor=self.latency_factor(hi_effective_util),
        )
        return load, hi_grant, lo_grant


def idle_load(spec: MemoryControllerSpec) -> McLoad:
    """The :class:`McLoad` of a controller with zero offered demand."""
    return McLoad(
        demand_gbps=0.0,
        delivered_gbps=0.0,
        grant_ratio=1.0,
        utilization=0.0,
        latency_factor=1.0,
        saturation=0.0,
    )
