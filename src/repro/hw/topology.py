"""Core / socket / NUMA-subdomain topology queries.

Numbering conventions used throughout the library:

* **Cores** are numbered globally: socket ``s`` owns cores
  ``[s * cores_per_socket, (s+1) * cores_per_socket)``.
* **Subdomains** (== channel groups == memory controllers) are numbered
  globally in socket order: socket ``s`` owns the contiguous id range
  starting at the sum of the preceding sockets' channel-group counts. With
  the standard dual-socket / two-channel-group presets this reduces to the
  familiar ``{2s, 2s + 1}``. These ids double as NUMA node ids when SNC is
  enabled.
* When SNC is **off**, the OS-visible NUMA nodes are the sockets, and memory
  bound to a socket interleaves across all of its subdomain controllers.
  The library always routes traffic in terms of subdomain ids; binding to a
  socket simply means equal weights across its subdomains.

All subdomain/controller indexing in the library flows through this class —
nothing else is allowed to hard-code the ``2s + local`` arithmetic, so hosts
with one, two, or more channel groups per socket index consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.hw.spec import MachineSpec


@dataclass(frozen=True)
class Topology:
    """Derived topology facts for a :class:`~repro.hw.spec.MachineSpec`."""

    spec: MachineSpec

    # ----------------------------------------------------------- sockets
    @property
    def num_sockets(self) -> int:
        """Number of processor packages."""
        return len(self.spec.sockets)

    @property
    def num_subdomains(self) -> int:
        """Total channel groups across all sockets."""
        return sum(len(s.memory_controllers) for s in self.spec.sockets)

    def cores_per_socket(self, socket: int) -> int:
        """Physical core count of ``socket``."""
        self._check_socket(socket)
        return self.spec.sockets[socket].cores

    def subdomains_per_socket(self, socket: int) -> int:
        """Channel-group count of ``socket``."""
        self._check_socket(socket)
        return len(self.spec.sockets[socket].memory_controllers)

    # -------------------------------------------------------------- cores
    def socket_of_core(self, core: int) -> int:
        """Socket owning global core id ``core``."""
        remaining = core
        for socket_id, socket in enumerate(self.spec.sockets):
            if remaining < socket.cores:
                return socket_id
            remaining -= socket.cores
        raise TopologyError(f"core {core} out of range")

    def subdomain_of_core(self, core: int) -> int:
        """Subdomain owning ``core``.

        A socket's cores are split into contiguous, near-equal chunks, one
        per channel group, in subdomain-id order (for the two-group presets:
        lower half of a socket's cores belong to its even subdomain, upper
        half to the odd one).
        """
        socket = self.socket_of_core(core)
        offset = core - self.first_core(socket)
        cores = self.spec.sockets[socket].cores
        groups = self.subdomains_per_socket(socket)
        for local in range(groups):
            if offset < ((local + 1) * cores) // groups:
                return self.first_subdomain(socket) + local
        # Unreachable: offset < cores by construction.
        raise TopologyError(f"core {core} not mapped to a subdomain")

    def first_core(self, socket: int) -> int:
        """Global id of the first core on ``socket``."""
        self._check_socket(socket)
        return sum(s.cores for s in self.spec.sockets[:socket])

    def cores_of_socket(self, socket: int) -> tuple[int, ...]:
        """All global core ids on ``socket``."""
        base = self.first_core(socket)
        return tuple(range(base, base + self.spec.sockets[socket].cores))

    def cores_of_subdomain(self, subdomain: int) -> tuple[int, ...]:
        """All global core ids in ``subdomain``."""
        socket = self.socket_of_subdomain(subdomain)
        cores = self.cores_of_socket(socket)
        groups = self.subdomains_per_socket(socket)
        local = subdomain - self.first_subdomain(socket)
        lo = (local * len(cores)) // groups
        hi = ((local + 1) * len(cores)) // groups
        return cores[lo:hi]

    # --------------------------------------------------------- subdomains
    def first_subdomain(self, socket: int) -> int:
        """Global id of the first subdomain on ``socket``."""
        self._check_socket(socket)
        return sum(
            len(s.memory_controllers) for s in self.spec.sockets[:socket]
        )

    def socket_of_subdomain(self, subdomain: int) -> int:
        """Socket owning ``subdomain``."""
        remaining = subdomain
        for socket_id, socket in enumerate(self.spec.sockets):
            if remaining < len(socket.memory_controllers):
                return socket_id
            remaining -= len(socket.memory_controllers)
        raise TopologyError(f"subdomain {subdomain} out of range")

    def subdomains_of_socket(self, socket: int) -> tuple[int, ...]:
        """The subdomain ids of ``socket`` (ascending)."""
        first = self.first_subdomain(socket)
        return tuple(range(first, first + self.subdomains_per_socket(socket)))

    def sibling_subdomains(self, subdomain: int) -> tuple[int, ...]:
        """The other subdomains sharing ``subdomain``'s socket.

        These share the on-chip mesh and LLC coherence engine, which is what
        the residual ``mesh_coupling`` term in the solver models.
        """
        socket = self.socket_of_subdomain(subdomain)
        return tuple(
            s for s in self.subdomains_of_socket(socket) if s != subdomain
        )

    def mc_ids(self) -> tuple[int, ...]:
        """All global memory-controller (subdomain) ids, ascending."""
        return tuple(range(self.num_subdomains))

    def mc_spec_of_subdomain(self, subdomain: int):
        """The :class:`~repro.hw.spec.MemoryControllerSpec` of ``subdomain``."""
        socket = self.socket_of_subdomain(subdomain)
        local = subdomain - self.first_subdomain(socket)
        return self.spec.sockets[socket].memory_controllers[local]

    def socket_memory_weights(self, socket: int) -> dict[int, float]:
        """Interleaved routing weights for memory bound to a whole socket."""
        subdomains = self.subdomains_of_socket(socket)
        weight = 1.0 / len(subdomains)
        return {s: weight for s in subdomains}

    # ------------------------------------------------------------ helpers
    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.num_sockets:
            raise TopologyError(f"socket {socket} out of range")
