"""Core / socket / NUMA-subdomain topology queries.

Numbering conventions used throughout the library:

* **Cores** are numbered globally: socket ``s`` owns cores
  ``[s * cores_per_socket, (s+1) * cores_per_socket)``.
* **Subdomains** (== channel groups == memory controllers) are numbered
  globally as well: socket ``s`` owns subdomains ``2s`` and ``2s + 1``.
  These ids double as NUMA node ids when SNC is enabled.
* When SNC is **off**, the OS-visible NUMA nodes are the sockets, and memory
  bound to a socket interleaves across both of its subdomain controllers.
  The library always routes traffic in terms of subdomain ids; binding to a
  socket simply means a 50/50 weight across its two subdomains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.hw.spec import MachineSpec


@dataclass(frozen=True)
class Topology:
    """Derived topology facts for a :class:`~repro.hw.spec.MachineSpec`."""

    spec: MachineSpec

    # ----------------------------------------------------------- sockets
    @property
    def num_sockets(self) -> int:
        """Number of processor packages."""
        return len(self.spec.sockets)

    @property
    def num_subdomains(self) -> int:
        """Total channel groups (two per socket)."""
        return 2 * self.num_sockets

    def cores_per_socket(self, socket: int) -> int:
        """Physical core count of ``socket``."""
        self._check_socket(socket)
        return self.spec.sockets[socket].cores

    # -------------------------------------------------------------- cores
    def socket_of_core(self, core: int) -> int:
        """Socket owning global core id ``core``."""
        remaining = core
        for socket_id, socket in enumerate(self.spec.sockets):
            if remaining < socket.cores:
                return socket_id
            remaining -= socket.cores
        raise TopologyError(f"core {core} out of range")

    def subdomain_of_core(self, core: int) -> int:
        """Subdomain owning ``core`` (lower half of a socket's cores belong
        to its even subdomain, upper half to the odd one)."""
        socket = self.socket_of_core(core)
        base = self.first_core(socket)
        half = self.spec.sockets[socket].cores // 2
        return 2 * socket + (0 if core - base < half else 1)

    def first_core(self, socket: int) -> int:
        """Global id of the first core on ``socket``."""
        self._check_socket(socket)
        return sum(s.cores for s in self.spec.sockets[:socket])

    def cores_of_socket(self, socket: int) -> tuple[int, ...]:
        """All global core ids on ``socket``."""
        base = self.first_core(socket)
        return tuple(range(base, base + self.spec.sockets[socket].cores))

    def cores_of_subdomain(self, subdomain: int) -> tuple[int, ...]:
        """All global core ids in ``subdomain``."""
        socket = self.socket_of_subdomain(subdomain)
        cores = self.cores_of_socket(socket)
        half = len(cores) // 2
        return cores[:half] if subdomain % 2 == 0 else cores[half:]

    # --------------------------------------------------------- subdomains
    def socket_of_subdomain(self, subdomain: int) -> int:
        """Socket owning ``subdomain``."""
        if not 0 <= subdomain < self.num_subdomains:
            raise TopologyError(f"subdomain {subdomain} out of range")
        return subdomain // 2

    def subdomains_of_socket(self, socket: int) -> tuple[int, int]:
        """The two subdomain ids of ``socket``."""
        self._check_socket(socket)
        return (2 * socket, 2 * socket + 1)

    def socket_memory_weights(self, socket: int) -> dict[int, float]:
        """Interleaved routing weights for memory bound to a whole socket."""
        a, b = self.subdomains_of_socket(socket)
        return {a: 0.5, b: 0.5}

    # ------------------------------------------------------------ helpers
    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.num_sockets:
            raise TopologyError(f"socket {socket} out of range")
