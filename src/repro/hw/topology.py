"""Core / socket / NUMA-subdomain topology queries.

Numbering conventions used throughout the library:

* **Cores** are numbered globally: socket ``s`` owns cores
  ``[s * cores_per_socket, (s+1) * cores_per_socket)``.
* **Subdomains** (== channel groups == memory controllers) are numbered
  globally in socket order: socket ``s`` owns the contiguous id range
  starting at the sum of the preceding sockets' channel-group counts. With
  the standard dual-socket / two-channel-group presets this reduces to the
  familiar ``{2s, 2s + 1}``. These ids double as NUMA node ids when SNC is
  enabled.
* When SNC is **off**, the OS-visible NUMA nodes are the sockets, and memory
  bound to a socket interleaves across all of its subdomain controllers.
  The library always routes traffic in terms of subdomain ids; binding to a
  socket simply means equal weights across its subdomains.

All subdomain/controller indexing in the library flows through this class —
nothing else is allowed to hard-code the ``2s + local`` arithmetic, so hosts
with one, two, or more channel groups per socket index consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.hw.spec import MachineSpec


@dataclass(frozen=True)
class Topology:
    """Derived topology facts for a :class:`~repro.hw.spec.MachineSpec`.

    The spec is immutable, so every mapping below is precomputed once in
    ``__post_init__`` and each query is a table lookup. This matters: the
    per-tick measurement path (perf reads on every node of a fleet, every
    control interval) goes through these queries millions of times in a
    day-long 256-node replay.
    """

    spec: MachineSpec

    def __post_init__(self) -> None:
        sockets = self.spec.sockets
        first_core, first_sub = [], []
        core_base = sub_base = 0
        for socket in sockets:
            first_core.append(core_base)
            first_sub.append(sub_base)
            core_base += socket.cores
            sub_base += len(socket.memory_controllers)
        subs_of_socket = tuple(
            tuple(
                range(first_sub[s], first_sub[s] + len(sockets[s].memory_controllers))
            )
            for s in range(len(sockets))
        )
        cores_of_socket = tuple(
            tuple(range(first_core[s], first_core[s] + sockets[s].cores))
            for s in range(len(sockets))
        )
        socket_of_sub, cores_of_sub = [], []
        for s, socket in enumerate(sockets):
            cores = cores_of_socket[s]
            groups = len(socket.memory_controllers)
            for local in range(groups):
                socket_of_sub.append(s)
                lo = (local * len(cores)) // groups
                hi = ((local + 1) * len(cores)) // groups
                cores_of_sub.append(cores[lo:hi])
        socket_of_core = [
            s for s in range(len(sockets)) for _ in range(sockets[s].cores)
        ]
        sub_of_core = [
            sub for sub, cores in enumerate(cores_of_sub) for _ in cores
        ]
        # ``object.__setattr__``: the dataclass is frozen, the caches are not.
        set_ = object.__setattr__
        set_(self, "_first_core", tuple(first_core))
        set_(self, "_first_subdomain", tuple(first_sub))
        set_(self, "_subdomains_of_socket", subs_of_socket)
        set_(self, "_cores_of_socket", cores_of_socket)
        set_(self, "_socket_of_subdomain", tuple(socket_of_sub))
        set_(self, "_cores_of_subdomain", tuple(cores_of_sub))
        set_(self, "_socket_of_core", tuple(socket_of_core))
        set_(self, "_subdomain_of_core", tuple(sub_of_core))
        set_(self, "_num_sockets", len(sockets))
        set_(self, "_num_subdomains", sub_base)

    # ----------------------------------------------------------- sockets
    @property
    def num_sockets(self) -> int:
        """Number of processor packages."""
        return self._num_sockets

    @property
    def num_subdomains(self) -> int:
        """Total channel groups across all sockets."""
        return self._num_subdomains

    def cores_per_socket(self, socket: int) -> int:
        """Physical core count of ``socket``."""
        self._check_socket(socket)
        return self.spec.sockets[socket].cores

    def subdomains_per_socket(self, socket: int) -> int:
        """Channel-group count of ``socket``."""
        self._check_socket(socket)
        return len(self._subdomains_of_socket[socket])

    # -------------------------------------------------------------- cores
    def socket_of_core(self, core: int) -> int:
        """Socket owning global core id ``core``."""
        if not 0 <= core < len(self._socket_of_core):
            raise TopologyError(f"core {core} out of range")
        return self._socket_of_core[core]

    def subdomain_of_core(self, core: int) -> int:
        """Subdomain owning ``core``.

        A socket's cores are split into contiguous, near-equal chunks, one
        per channel group, in subdomain-id order (for the two-group presets:
        lower half of a socket's cores belong to its even subdomain, upper
        half to the odd one).
        """
        if not 0 <= core < len(self._subdomain_of_core):
            raise TopologyError(f"core {core} out of range")
        return self._subdomain_of_core[core]

    def first_core(self, socket: int) -> int:
        """Global id of the first core on ``socket``."""
        self._check_socket(socket)
        return self._first_core[socket]

    def cores_of_socket(self, socket: int) -> tuple[int, ...]:
        """All global core ids on ``socket``."""
        self._check_socket(socket)
        return self._cores_of_socket[socket]

    def cores_of_subdomain(self, subdomain: int) -> tuple[int, ...]:
        """All global core ids in ``subdomain``."""
        self._check_subdomain(subdomain)
        return self._cores_of_subdomain[subdomain]

    # --------------------------------------------------------- subdomains
    def first_subdomain(self, socket: int) -> int:
        """Global id of the first subdomain on ``socket``."""
        self._check_socket(socket)
        return self._first_subdomain[socket]

    def socket_of_subdomain(self, subdomain: int) -> int:
        """Socket owning ``subdomain``."""
        self._check_subdomain(subdomain)
        return self._socket_of_subdomain[subdomain]

    def subdomains_of_socket(self, socket: int) -> tuple[int, ...]:
        """The subdomain ids of ``socket`` (ascending)."""
        self._check_socket(socket)
        return self._subdomains_of_socket[socket]

    def sibling_subdomains(self, subdomain: int) -> tuple[int, ...]:
        """The other subdomains sharing ``subdomain``'s socket.

        These share the on-chip mesh and LLC coherence engine, which is what
        the residual ``mesh_coupling`` term in the solver models.
        """
        socket = self.socket_of_subdomain(subdomain)
        return tuple(
            s for s in self._subdomains_of_socket[socket] if s != subdomain
        )

    def mc_ids(self) -> tuple[int, ...]:
        """All global memory-controller (subdomain) ids, ascending."""
        return tuple(range(self._num_subdomains))

    def mc_spec_of_subdomain(self, subdomain: int):
        """The :class:`~repro.hw.spec.MemoryControllerSpec` of ``subdomain``."""
        socket = self.socket_of_subdomain(subdomain)
        local = subdomain - self._first_subdomain[socket]
        return self.spec.sockets[socket].memory_controllers[local]

    def socket_memory_weights(self, socket: int) -> dict[int, float]:
        """Interleaved routing weights for memory bound to a whole socket."""
        subdomains = self.subdomains_of_socket(socket)
        weight = 1.0 / len(subdomains)
        return {s: weight for s in subdomains}

    # ------------------------------------------------------------ helpers
    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self._num_sockets:
            raise TopologyError(f"socket {socket} out of range")

    def _check_subdomain(self, subdomain: int) -> None:
        if not 0 <= subdomain < self._num_subdomains:
            raise TopologyError(f"subdomain {subdomain} out of range")
