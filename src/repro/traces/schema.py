"""Versioned on-disk trace schema and the in-memory columnar trace.

A trace file is JSONL (gzipped when the path ends in ``.gz``):

* Line 1 — a header object::

      {"schema": "repro.trace/1", "duration_s": 86400.0, "requests": 1000000,
       "tenants": [{"name": "search", "slo_p99_ms": 60.0, "weight": 2.0}, ...],
       "families": [{"name": "short", "demand": 0.5, "weight": 0.6}, ...],
       "meta": {...}}

* Lines 2..N+1 — one compact array per request::

      [arrival_s, tenant_id, family_id]

  ``arrival_s`` is the absolute arrival timestamp (seconds, non-decreasing);
  ``tenant_id``/``family_id`` index the header's ``tenants``/``families``
  lists. Per-request accelerator demand is the family's ``demand`` — rows
  carry indices, not floats, so a million-request day stays compact.

The in-memory :class:`Trace` holds the columns as numpy arrays, ready for
vectorized statistics and zero-copy handoff to the replay generator.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Version tag written to (and required of) every trace file header.
TRACE_SCHEMA = "repro.trace/1"


@dataclass(frozen=True)
class TraceTenant:
    """One tenant appearing in a trace.

    ``weight`` is the tenant's share of overall traffic (relative, not
    normalized); ``slo_p99_ms`` is its p99 latency target, carried in the
    trace so replay builds the fleet's SLO accounting from the data alone.
    """

    name: str
    slo_p99_ms: float = 60.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace tenant needs a name")
        if self.slo_p99_ms <= 0:
            raise ConfigurationError(f"tenant {self.name!r}: slo_p99_ms must be positive")
        if self.weight <= 0:
            raise ConfigurationError(f"tenant {self.name!r}: weight must be positive")


@dataclass(frozen=True)
class TraceFamily:
    """One job family: a class of requests with a shared service demand.

    ``demand`` multiplies the model's nominal per-request work (host compute,
    PCIe transfer and accelerator op alike); ``weight`` is the family's
    relative share of requests.
    """

    name: str
    demand: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace family needs a name")
        if self.demand <= 0:
            raise ConfigurationError(f"family {self.name!r}: demand must be positive")
        if self.weight <= 0:
            raise ConfigurationError(f"family {self.name!r}: weight must be positive")


@dataclass(frozen=True)
class Trace:
    """A workload trace as parallel columns over requests.

    Columns are index-aligned: request ``i`` arrives at ``arrivals_s[i]``,
    belongs to ``tenants[tenant_ids[i]]`` and runs job family
    ``families[family_ids[i]]``.
    """

    arrivals_s: np.ndarray
    tenant_ids: np.ndarray
    family_ids: np.ndarray
    tenants: tuple[TraceTenant, ...]
    families: tuple[TraceFamily, ...]
    duration_s: float
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrivals_s, dtype=np.float64)
        tenant_ids = np.ascontiguousarray(self.tenant_ids, dtype=np.int32)
        family_ids = np.ascontiguousarray(self.family_ids, dtype=np.int32)
        object.__setattr__(self, "arrivals_s", arrivals)
        object.__setattr__(self, "tenant_ids", tenant_ids)
        object.__setattr__(self, "family_ids", family_ids)
        if arrivals.ndim != 1 or tenant_ids.ndim != 1 or family_ids.ndim != 1:
            raise ConfigurationError("trace columns must be one-dimensional")
        if not (arrivals.size == tenant_ids.size == family_ids.size):
            raise ConfigurationError("trace columns must be index-aligned")
        if not self.tenants:
            raise ConfigurationError("trace needs at least one tenant")
        if not self.families:
            raise ConfigurationError("trace needs at least one family")
        if self.duration_s <= 0:
            raise ConfigurationError("trace duration_s must be positive")
        if arrivals.size:
            if np.any(np.diff(arrivals) < 0):
                raise ConfigurationError("trace arrivals must be non-decreasing")
            if arrivals[0] < 0 or arrivals[-1] > self.duration_s:
                raise ConfigurationError(
                    "trace arrivals must lie within [0, duration_s]"
                )
            if tenant_ids.min() < 0 or tenant_ids.max() >= len(self.tenants):
                raise ConfigurationError("tenant_ids out of range")
            if family_ids.min() < 0 or family_ids.max() >= len(self.families):
                raise ConfigurationError("family_ids out of range")

    def __len__(self) -> int:
        return int(self.arrivals_s.size)

    @property
    def demands(self) -> np.ndarray:
        """Per-request accelerator demand (the family demand, gathered)."""
        table = np.array([f.demand for f in self.families], dtype=np.float64)
        return table[self.family_ids]

    def tenant_request_counts(self) -> np.ndarray:
        """Requests per tenant (index-aligned with :attr:`tenants`)."""
        return np.bincount(self.tenant_ids, minlength=len(self.tenants))

    def mean_rate_qps(self) -> float:
        """Long-run mean arrival rate over the trace's full duration."""
        return len(self) / self.duration_s

    def header(self) -> dict[str, Any]:
        """The JSON header object for this trace."""
        return {
            "schema": TRACE_SCHEMA,
            "duration_s": self.duration_s,
            "requests": len(self),
            "tenants": [
                {"name": t.name, "slo_p99_ms": t.slo_p99_ms, "weight": t.weight}
                for t in self.tenants
            ],
            "families": [
                {"name": f.name, "demand": f.demand, "weight": f.weight}
                for f in self.families
            ],
            "meta": dict(self.meta),
        }


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (gzipped when the name ends in ``.gz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Python lists of native scalars: repr() of a Python float is the
    # shortest round-tripping decimal, so save→load is bit-exact.
    arrivals = trace.arrivals_s.tolist()
    tenant_ids = trace.tenant_ids.tolist()
    family_ids = trace.family_ids.tolist()
    with _open(path, "w") as fh:
        fh.write(json.dumps(trace.header(), separators=(",", ":")) + "\n")
        write = fh.write
        for arrival, tenant, family in zip(arrivals, tenant_ids, family_ids):
            write(f"[{arrival!r},{tenant},{family}]\n")


def _parse_header(line: str, path: Path) -> dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: malformed trace header: {exc}") from exc
    if not isinstance(header, dict):
        raise ConfigurationError(f"{path}: trace header must be an object")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported trace schema {schema!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    return header


def _iter_rows(fh: IO[str], path: Path) -> Iterator[Sequence[Any]]:
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: malformed trace row: {exc}"
            ) from exc
        if not isinstance(row, list) or len(row) != 3:
            raise ConfigurationError(
                f"{path}:{lineno}: trace row must be [arrival_s, tenant_id, "
                "family_id]"
            )
        yield row


def load_trace(path: str | Path) -> Trace:
    """Load a trace file written by :func:`save_trace`."""
    path = Path(path)
    try:
        fh = _open(path, "r")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path}: {exc}") from exc
    with fh:
        first = fh.readline()
        if not first:
            raise ConfigurationError(f"{path}: empty trace file")
        header = _parse_header(first, path)
        tenants = tuple(
            TraceTenant(
                name=t["name"],
                slo_p99_ms=float(t.get("slo_p99_ms", 60.0)),
                weight=float(t.get("weight", 1.0)),
            )
            for t in header.get("tenants", [])
        )
        families = tuple(
            TraceFamily(
                name=f["name"],
                demand=float(f.get("demand", 1.0)),
                weight=float(f.get("weight", 1.0)),
            )
            for f in header.get("families", [])
        )
        arrivals: list[float] = []
        tenant_ids: list[int] = []
        family_ids: list[int] = []
        for row in _iter_rows(fh, path):
            arrivals.append(float(row[0]))
            tenant_ids.append(int(row[1]))
            family_ids.append(int(row[2]))
    declared = header.get("requests")
    if declared is not None and int(declared) != len(arrivals):
        raise ConfigurationError(
            f"{path}: header declares {declared} requests, file has "
            f"{len(arrivals)}"
        )
    return Trace(
        arrivals_s=np.asarray(arrivals, dtype=np.float64),
        tenant_ids=np.asarray(tenant_ids, dtype=np.int32),
        family_ids=np.asarray(family_ids, dtype=np.int32),
        tenants=tenants,
        families=families,
        duration_s=float(header["duration_s"]),
        meta=header.get("meta", {}),
    )


def trace_digest(trace: Trace) -> str:
    """A stable content digest of a trace's replayable substance.

    Covers the arrival/tenant/family columns (exact bytes), the horizon,
    and the tenant/family tables — everything replay behaviour depends on;
    ``meta`` is excluded. Checkpoints store this digest so a restore can
    refuse a trace that differs from the one the run was driven by.
    """
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(trace.arrivals_s, dtype=np.float64))
    hasher.update(np.ascontiguousarray(trace.tenant_ids, dtype=np.int32))
    hasher.update(np.ascontiguousarray(trace.family_ids, dtype=np.int32))
    header = {
        "duration_s": trace.duration_s,
        "tenants": [
            [t.name, t.weight, t.slo_p99_ms] for t in trace.tenants
        ],
        "families": [
            [f.name, f.demand, f.weight] for f in trace.families
        ],
    }
    hasher.update(json.dumps(header, sort_keys=True).encode("utf-8"))
    return hasher.hexdigest()
