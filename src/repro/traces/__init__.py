"""Production workload traces: schema, synthesis and replay support.

The fleet orchestrator can be driven from a *trace* — a recorded (or
synthesized) day of production traffic — instead of fixed-rate open-loop
generators. This package owns the trace data model:

* :mod:`repro.traces.schema` — the versioned on-disk format (JSONL, plain
  or gzipped) and the in-memory :class:`Trace` (columnar numpy arrays:
  arrival time, tenant, job family, accelerator demand).
* :mod:`repro.traces.generate` — a seeded synthetic-trace generator
  scalable to millions of requests: diurnal rate curves, Markov-modulated
  bursts, tenant arrival/departure churn and heterogeneous job families,
  in the style of public GPU-cluster traces (Alibaba cluster-trace-gpu,
  AcmeTrace) and the multi-tenant scenarios of MoCA/Strait.

Replay itself lives where the consumers are:
:class:`repro.workloads.loadgen.TraceReplayGenerator` turns the arrival
column into simulator events, and ``repro.fleet`` routes each request to a
node with its tenant's SLO accounting and its family's service demand.
"""

from repro.traces.generate import (
    DAY_S,
    TraceGenConfig,
    default_trace_families,
    default_trace_tenants,
    expected_requests,
    generate_trace,
)
from repro.traces.schema import (
    TRACE_SCHEMA,
    Trace,
    TraceFamily,
    TraceTenant,
    load_trace,
    save_trace,
)

__all__ = [
    "DAY_S",
    "TRACE_SCHEMA",
    "Trace",
    "TraceFamily",
    "TraceGenConfig",
    "TraceTenant",
    "default_trace_families",
    "default_trace_tenants",
    "expected_requests",
    "generate_trace",
    "load_trace",
    "save_trace",
]
