"""Seeded synthetic production-trace generator.

Synthesizes a day (or any horizon) of multi-tenant inference traffic with
the structure seen in public accelerator-cluster traces:

* **Diurnal rate curves** — a sinusoid with a 24-hour period, peak hour and
  amplitude, so offered load sweeps through under- and over-provisioned
  regimes across the simulated day.
* **Markov-modulated bursts** — each tenant alternates between OFF and ON
  states with exponentially distributed dwell times; the ON state multiplies
  the tenant's rate. Factors are normalized so the configured ``rate_qps``
  stays the long-run mean.
* **Tenant churn** — tenants arrive and depart: alternating active/idle
  periods, again exponentially distributed and mean-normalized.
* **Heterogeneous job families** — every request draws a job family whose
  ``demand`` scales its service requirement.

Generation is fully vectorized (Poisson thinning against the per-tenant
peak rate), so million-request traces synthesize in well under a second,
and fully deterministic: every tenant draws from dedicated
``SeedSequence((seed, tag, tenant))`` streams, so adding a tenant never
perturbs another tenant's arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.schema import Trace, TraceFamily, TraceTenant

#: Seconds in the diurnal period (one day).
DAY_S = 86_400.0

# Dedicated stream tags: one independent RNG stream per (tenant, purpose).
_TAG_ARRIVAL = 0x7A10
_TAG_THIN = 0x7A11
_TAG_BURST = 0x7A12
_TAG_CHURN = 0x7A13
_TAG_FAMILY = 0x7A14


def default_trace_tenants() -> tuple[TraceTenant, ...]:
    """A small production-like tenant mix (weights are traffic shares)."""
    return (
        TraceTenant(name="search", slo_p99_ms=60.0, weight=2.0),
        TraceTenant(name="ads", slo_p99_ms=60.0, weight=1.0),
        TraceTenant(name="assist", slo_p99_ms=120.0, weight=0.5),
    )


def default_trace_families() -> tuple[TraceFamily, ...]:
    """A short/nominal/long job-family mix around unit mean demand."""
    return (
        TraceFamily(name="short", demand=0.5, weight=0.25),
        TraceFamily(name="nominal", demand=1.0, weight=0.6),
        TraceFamily(name="long", demand=2.0, weight=0.15),
    )


@dataclass(frozen=True)
class TraceGenConfig:
    """Knobs for :func:`generate_trace`.

    ``rate_qps`` is the *long-run mean* aggregate arrival rate: diurnal,
    burst and churn modulation are all normalized to unit mean, so the
    expected request count is ``rate_qps * duration_s`` (exactly — see
    :func:`expected_requests` for the finite-horizon diurnal correction).
    """

    seed: int = 0
    duration_s: float = DAY_S
    rate_qps: float = 40.0
    tenants: tuple[TraceTenant, ...] = field(default_factory=default_trace_tenants)
    families: tuple[TraceFamily, ...] = field(default_factory=default_trace_families)
    #: Peak-to-mean diurnal swing, in [0, 1). 0 disables the diurnal curve.
    diurnal_amplitude: float = 0.4
    #: Hour of day (0-24) at which the diurnal curve peaks.
    diurnal_peak_hour: float = 14.0
    #: Rate multiplier while a tenant's burst state is ON. 1 disables bursts.
    burst_multiplier: float = 4.0
    #: Mean dwell time of the ON (bursting) state, seconds.
    burst_on_s: float = 30.0
    #: Mean dwell time of the OFF (quiet) state, seconds.
    burst_off_s: float = 570.0
    #: Mean active period before a tenant departs, seconds.
    churn_active_s: float = 4 * 3600.0
    #: Mean idle period before a departed tenant returns. 0 disables churn.
    churn_idle_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.rate_qps <= 0:
            raise ConfigurationError("rate_qps must be positive")
        if not self.tenants:
            raise ConfigurationError("trace generation needs at least one tenant")
        if not self.families:
            raise ConfigurationError("trace generation needs at least one family")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.diurnal_peak_hour < 24.0:
            raise ConfigurationError("diurnal_peak_hour must be in [0, 24)")
        if self.burst_multiplier < 1.0:
            raise ConfigurationError("burst_multiplier must be >= 1")
        if self.burst_multiplier > 1.0 and (
            self.burst_on_s <= 0 or self.burst_off_s <= 0
        ):
            raise ConfigurationError("burst dwell times must be positive")
        if self.churn_idle_s < 0:
            raise ConfigurationError("churn_idle_s must be non-negative")
        if self.churn_idle_s > 0 and self.churn_active_s <= 0:
            raise ConfigurationError(
                "churn_active_s must be positive when churn is enabled"
            )

    @property
    def bursty(self) -> bool:
        return self.burst_multiplier > 1.0

    @property
    def churning(self) -> bool:
        return self.churn_idle_s > 0.0


def _diurnal_integral(config: TraceGenConfig) -> float:
    """Exact integral of the unit-mean diurnal factor over the horizon."""
    if config.diurnal_amplitude == 0.0:
        return config.duration_s
    peak = config.diurnal_peak_hour * 3600.0
    omega = 2.0 * math.pi / DAY_S
    # ∫0^D 1 + A·cos(ω(t - peak)) dt
    return config.duration_s + (config.diurnal_amplitude / omega) * (
        math.sin(omega * (config.duration_s - peak)) + math.sin(omega * peak)
    )


def expected_requests(config: TraceGenConfig) -> float:
    """Expected request count for ``config`` (burst/churn are mean-1)."""
    return config.rate_qps * _diurnal_integral(config)


def _stream(seed: int, tag: int, tenant: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence((seed, tag, tenant)))


def _diurnal_factor(config: TraceGenConfig, times: np.ndarray) -> np.ndarray:
    if config.diurnal_amplitude == 0.0:
        return np.ones_like(times)
    peak = config.diurnal_peak_hour * 3600.0
    omega = 2.0 * math.pi / DAY_S
    return 1.0 + config.diurnal_amplitude * np.cos(omega * (times - peak))


def _alternating_boundaries(
    rng: np.random.Generator, mean_first: float, mean_second: float, duration: float
) -> np.ndarray:
    """Cumulative boundaries of alternating exponential dwell segments.

    Segment ``k`` spans ``[boundaries[k-1], boundaries[k])`` (with an
    implicit start at 0); even segments are in the *first* state. Batches
    are drawn in pairs so alternation parity survives the refill loop.
    """
    batch = max(8, int(duration / (mean_first + mean_second)) + 8)
    chunks: list[np.ndarray] = []
    total = 0.0
    while total <= duration:
        pair = np.empty(2 * batch, dtype=np.float64)
        pair[0::2] = rng.exponential(mean_first, size=batch)
        pair[1::2] = rng.exponential(mean_second, size=batch)
        chunks.append(pair)
        total += float(pair.sum())
    return np.cumsum(np.concatenate(chunks))


def _two_state_factor(
    rng: np.random.Generator,
    times: np.ndarray,
    mean_first: float,
    mean_second: float,
    first_factor: float,
    second_factor: float,
    duration: float,
) -> np.ndarray:
    """Evaluate an alternating two-state rate factor at ``times``."""
    boundaries = _alternating_boundaries(rng, mean_first, mean_second, duration)
    segment = np.searchsorted(boundaries, times, side="right")
    return np.where(segment % 2 == 0, first_factor, second_factor)


def _burst_factors(config: TraceGenConfig) -> tuple[float, float]:
    """(off_factor, on_factor), normalized so the time average is 1."""
    p_on = config.burst_on_s / (config.burst_on_s + config.burst_off_s)
    off = 1.0 / ((1.0 - p_on) + config.burst_multiplier * p_on)
    return off, off * config.burst_multiplier


def _churn_factors(config: TraceGenConfig) -> tuple[float, float]:
    """(active_factor, idle_factor), normalized so the time average is 1."""
    p_active = config.churn_active_s / (config.churn_active_s + config.churn_idle_s)
    return 1.0 / p_active, 0.0


def _tenant_arrivals(
    config: TraceGenConfig, tenant: int, base_rate: float
) -> np.ndarray:
    """Accepted arrival times for one tenant, via Poisson thinning.

    Homogeneous arrivals at the tenant's peak modulated rate are thinned by
    the ratio of the instantaneous rate to the peak — an exact simulation of
    the non-homogeneous process, with every step vectorized.
    """
    peak = 1.0 + config.diurnal_amplitude
    burst_off = burst_on = 1.0
    if config.bursty:
        burst_off, burst_on = _burst_factors(config)
        peak *= burst_on
    churn_active = 1.0
    if config.churning:
        churn_active, _ = _churn_factors(config)
        peak *= churn_active
    lam_max = base_rate * peak

    arrival_rng = _stream(config.seed, _TAG_ARRIVAL, tenant)
    count = int(arrival_rng.poisson(lam_max * config.duration_s))
    if count == 0:
        return np.empty(0, dtype=np.float64)
    times = np.sort(arrival_rng.uniform(0.0, config.duration_s, size=count))

    rate = base_rate * _diurnal_factor(config, times)
    if config.bursty:
        rate = rate * _two_state_factor(
            _stream(config.seed, _TAG_BURST, tenant),
            times,
            config.burst_off_s,
            config.burst_on_s,
            burst_off,
            burst_on,
            config.duration_s,
        )
    if config.churning:
        rate = rate * _two_state_factor(
            _stream(config.seed, _TAG_CHURN, tenant),
            times,
            config.churn_active_s,
            config.churn_idle_s,
            churn_active,
            0.0,
            config.duration_s,
        )
    accept = _stream(config.seed, _TAG_THIN, tenant).uniform(size=count) * lam_max
    return times[accept < rate]


def _family_column(
    config: TraceGenConfig, count: int
) -> np.ndarray:
    weights = np.array([f.weight for f in config.families], dtype=np.float64)
    probabilities = weights / weights.sum()
    rng = _stream(config.seed, _TAG_FAMILY, 0)
    return rng.choice(
        len(config.families), size=count, p=probabilities
    ).astype(np.int32)


def generate_trace(config: TraceGenConfig) -> Trace:
    """Synthesize a :class:`~repro.traces.schema.Trace` from ``config``."""
    total_weight = sum(t.weight for t in config.tenants)
    per_tenant: list[np.ndarray] = []
    for index, tenant in enumerate(config.tenants):
        base_rate = config.rate_qps * tenant.weight / total_weight
        per_tenant.append(_tenant_arrivals(config, index, base_rate))

    times = np.concatenate(per_tenant) if per_tenant else np.empty(0)
    tenant_ids = np.concatenate(
        [
            np.full(arr.size, index, dtype=np.int32)
            for index, arr in enumerate(per_tenant)
        ]
    )
    # lexsort's last key is primary: order by time, tenant id breaking ties
    # deterministically.
    order = np.lexsort((tenant_ids, times))
    times = times[order]
    tenant_ids = tenant_ids[order]
    family_ids = _family_column(config, times.size)

    meta = {
        "generator": "repro.traces.generate/1",
        "seed": config.seed,
        "rate_qps": config.rate_qps,
        "diurnal_amplitude": config.diurnal_amplitude,
        "diurnal_peak_hour": config.diurnal_peak_hour,
        "burst_multiplier": config.burst_multiplier,
        "burst_on_s": config.burst_on_s,
        "burst_off_s": config.burst_off_s,
        "churn_active_s": config.churn_active_s,
        "churn_idle_s": config.churn_idle_s,
    }
    return Trace(
        arrivals_s=times,
        tenant_ids=tenant_ids,
        family_ids=family_ids,
        tenants=config.tenants,
        families=config.families,
        duration_s=config.duration_s,
        meta=meta,
    )
