"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was built or reconfigured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SchedulingError(ReproError):
    """A task could not be placed or an event could not be scheduled."""


class TopologyError(ReproError):
    """A hardware-topology lookup failed (unknown core, socket, domain...)."""


class HostInterfaceError(ReproError):
    """A simulated host control interface (msr/resctrl/cpuset) was misused."""


class WorkloadError(ReproError):
    """A workload definition or runtime state is invalid."""


class MeasurementError(ReproError):
    """A metric or counter read was requested in an invalid state."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with unusable parameters."""
