"""A managed node: machine + host control interfaces + task bookkeeping.

The :class:`Node` is what an isolation policy manipulates — it bundles the
hardware model with the simulated kernel surfaces (perf, MSR, cpuset,
resctrl, numactl) and tracks which tasks play which role (the high-priority
ML task, low-priority CPU tasks, and any backfilled CPU tasks in the
high-priority subdomain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hostif.cpuset import CpusetController, PlaceableTask
from repro.hostif.msr import MsrInterface
from repro.hostif.numactl import NumaPolicy
from repro.hostif.perf import PerfCounters
from repro.hostif.resctrl import ResctrlFs
from repro.hw.machine import Machine
from repro.hw.spec import MachineSpec
from repro.sim import Simulator

#: The socket hosting the accelerator and therefore the experiments.
ACCEL_SOCKET = 0
#: The subdomain Kelp dedicates to the high-priority ML task.
HI_SUBDOMAIN = 0
#: The subdomain Kelp assigns to low-priority CPU tasks.
LO_SUBDOMAIN = 1


@dataclass
class Node:
    """One accelerated server under runtime management."""

    machine: Machine
    msr: MsrInterface
    cpuset: CpusetController
    resctrl: ResctrlFs
    numa: NumaPolicy
    perf: PerfCounters
    #: Low-priority tasks living in the low-priority subdomain (or anywhere,
    #: for policies without subdomains).
    lo_tasks: list[PlaceableTask] = field(default_factory=list)
    #: Low-priority tasks backfilled into the high-priority subdomain.
    backfill_tasks: list[PlaceableTask] = field(default_factory=list)

    @classmethod
    def create(cls, spec: MachineSpec, sim: Simulator) -> "Node":
        """Assemble a node with all host interfaces over a fresh machine."""
        machine = Machine(spec, sim)
        return cls(
            machine=machine,
            msr=MsrInterface(machine),
            cpuset=CpusetController(machine),
            resctrl=ResctrlFs(machine),
            numa=NumaPolicy(machine),
            perf=PerfCounters(machine),
        )

    @property
    def sim(self) -> Simulator:
        """The simulator this node lives in."""
        return self.machine.sim

    # ------------------------------------------------------------ topology
    def accel_socket_cores(self) -> tuple[int, ...]:
        """All cores of the accelerator-local socket."""
        return self.machine.topology.cores_of_socket(ACCEL_SOCKET)

    def hi_subdomain_cores(self) -> tuple[int, ...]:
        """Cores of the high-priority subdomain."""
        return self.machine.topology.cores_of_subdomain(HI_SUBDOMAIN)

    def lo_subdomain_cores(self) -> tuple[int, ...]:
        """Cores of the low-priority subdomain."""
        return self.machine.topology.cores_of_subdomain(LO_SUBDOMAIN)

    # -------------------------------------------------------- prefetchers
    def lo_prefetchers_enabled(self) -> int:
        """Cores among the low-priority subdomain with prefetching on."""
        return sum(
            1
            for core in self.lo_subdomain_cores()
            if self.machine.prefetchers.is_enabled(core)
        )

    def set_lo_prefetchers_enabled(self, count: int) -> None:
        """Enable prefetchers on exactly ``count`` low-subdomain cores.

        Cores are enabled lowest-id first, mirroring how the runtime writes
        MSR 0x1A4 per logical CPU in a fixed order.
        """
        cores = self.lo_subdomain_cores()
        count = max(0, min(count, len(cores)))
        for index, core in enumerate(cores):
            self.msr.set_prefetchers(core, index < count)
