"""Deprecated alias for :mod:`repro.node` (see the package shim docstring)."""

from repro.node import (  # noqa: F401
    ACCEL_SOCKET,
    HI_SUBDOMAIN,
    LO_SUBDOMAIN,
    Node,
)

__all__ = ["ACCEL_SOCKET", "HI_SUBDOMAIN", "LO_SUBDOMAIN", "Node"]
