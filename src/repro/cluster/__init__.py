"""Deprecated seed-era package — the cluster model moved into the modern stack.

* :class:`Node` now lives at :mod:`repro.node` (also re-exported from the
  top-level :mod:`repro` package).
* The Fig 2 fleet survey (:class:`FleetSurvey`, :func:`fleet_bandwidth_cdf`)
  now lives at :mod:`repro.fleet.survey`.

This shim re-exports the old names and emits a single
:class:`DeprecationWarning` on first import (module caching makes repeat
imports silent); new code should import from the consolidated modules
directly.
"""

import warnings

from repro.fleet.survey import FleetSurvey, fleet_bandwidth_cdf
from repro.node import Node

warnings.warn(
    "repro.cluster is deprecated: import Node from repro.node and the "
    "Fig 2 survey from repro.fleet.survey",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["FleetSurvey", "Node", "fleet_bandwidth_cdf"]
