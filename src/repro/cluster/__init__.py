"""Node- and fleet-level layers.

* :class:`~repro.cluster.node.Node` — one accelerated server with its host
  control interfaces, playing the role of the machine the Borglet + Kelp pair
  manages.
* :mod:`repro.cluster.fleet` — the synthetic fleet used to regenerate the
  Fig 2 memory-bandwidth survey.
"""

from repro.cluster.fleet import FleetSurvey, fleet_bandwidth_cdf
from repro.cluster.node import Node

__all__ = ["FleetSurvey", "Node", "fleet_bandwidth_cdf"]
