"""Deprecated alias for :mod:`repro.fleet.survey` (see the package shim)."""

from repro.fleet.survey import (  # noqa: F401
    FLEET_BLOCK_MACHINES,
    FleetCdf,
    FleetSurvey,
    fleet_bandwidth_cdf,
)

__all__ = [
    "FLEET_BLOCK_MACHINES",
    "FleetCdf",
    "FleetSurvey",
    "fleet_bandwidth_cdf",
]
