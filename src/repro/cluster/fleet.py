"""Synthetic fleet memory-bandwidth survey (Fig 2).

Figure 2 plots, for one server generation over one day, the CDF of each
machine's 99 %-ile memory-bandwidth utilization; 16 % of machines exceed
70 % of peak — the motivation that bandwidth saturation is widespread. We
regenerate the curve from a generative model: each machine draws a base
utilization from the fleet mix, rides a diurnal swing, and suffers random
load bursts; the 99 %-ile of its day of samples lands on the CDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FleetSurvey:
    """Parameters of the fleet generative model."""

    machines: int = 1000
    #: Samples per machine over the profiled day (one per ~86 s).
    samples_per_machine: int = 1000
    #: Beta-distribution shape of per-machine mean utilization.
    base_alpha: float = 2.0
    base_beta: float = 4.0
    #: Amplitude of the diurnal swing (fraction of peak).
    diurnal_amplitude: float = 0.10
    #: Probability a sample is a burst, and the burst magnitude scale.
    burst_probability: float = 0.02
    burst_scale: float = 0.18
    seed: int = 42

    def __post_init__(self) -> None:
        if self.machines <= 0 or self.samples_per_machine <= 0:
            raise ConfigurationError("machines and samples must be positive")

    def machine_p99(self) -> np.ndarray:
        """Per-machine 99 %-ile utilization for the whole fleet, in [0, 1]."""
        rng = np.random.default_rng(self.seed)
        base = rng.beta(self.base_alpha, self.base_beta, size=self.machines)
        phase = rng.uniform(0, 2 * np.pi, size=self.machines)
        t = np.linspace(0, 2 * np.pi, self.samples_per_machine)
        # machines x samples utilization matrix
        diurnal = self.diurnal_amplitude * np.sin(t[None, :] + phase[:, None])
        noise = rng.normal(0.0, 0.03, size=(self.machines, self.samples_per_machine))
        bursts = rng.random((self.machines, self.samples_per_machine))
        burst_term = np.where(
            bursts < self.burst_probability,
            rng.exponential(
                self.burst_scale, size=(self.machines, self.samples_per_machine)
            ),
            0.0,
        )
        usage = np.clip(base[:, None] + diurnal + noise + burst_term, 0.0, 1.0)
        return np.percentile(usage, 99, axis=1)


@dataclass(frozen=True)
class FleetCdf:
    """The Fig 2 curve: fraction of machines at or below each utilization."""

    utilization: np.ndarray
    fraction_of_machines: np.ndarray
    #: The paper's headline statistic: share of machines whose 99 %-ile
    #: bandwidth exceeds 70 % of peak.
    fraction_above_70pct: float = field(default=0.0)


def fleet_bandwidth_cdf(survey: FleetSurvey | None = None) -> FleetCdf:
    """Regenerate the Fig 2 CDF from the fleet model."""
    survey = survey if survey is not None else FleetSurvey()
    p99 = np.sort(survey.machine_p99())
    fraction = np.arange(1, len(p99) + 1) / len(p99)
    above = float(np.mean(p99 > 0.70))
    return FleetCdf(
        utilization=p99, fraction_of_machines=fraction, fraction_above_70pct=above
    )
