"""The run observer: one object threaded through a figure/suite run.

``RunObserver`` bundles the three export surfaces — JSONL metrics/records,
the Chrome trace, and the run manifest — behind a tiny API that is a no-op
when observability is off: every public method returns immediately unless
the observer was built with at least one output destination, so the hot
simulation path pays only a falsy attribute check.

Typical use::

    config = ObsConfig.from_env(trace_out="out/", metrics_out="out/m.jsonl")
    with RunObserver(config, name="fig13") as obs:
        run_fig13(duration=16.0, observer=obs)
    # out/ now holds trace.json + manifest.json, m.jsonl the metric rows.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ChromeTraceBuilder

if TYPE_CHECKING:
    from repro.control.records import ActuationRecord, ControlTickRecord
    from repro.experiments.common import ColocationResult
    from repro.sim.tracing import TimelineTracer

#: Environment variable naming a default trace output directory.
TRACE_ENV = "REPRO_TRACE"


@dataclass(frozen=True)
class ObsConfig:
    """Where (and whether) one run's observability output goes."""

    #: Directory receiving ``trace.json`` + ``manifest.json`` (created).
    trace_dir: Path | None = None
    #: File receiving the JSONL metric/record stream.
    metrics_path: Path | None = None

    @property
    def enabled(self) -> bool:
        """True when at least one output destination is configured."""
        return self.trace_dir is not None or self.metrics_path is not None

    @classmethod
    def from_env(
        cls,
        trace_out: str | os.PathLike | None = None,
        metrics_out: str | os.PathLike | None = None,
    ) -> "ObsConfig":
        """Build a config from CLI values, falling back to ``REPRO_TRACE``."""
        if trace_out is None:
            trace_out = os.environ.get(TRACE_ENV) or None
        return cls(
            trace_dir=Path(trace_out) if trace_out else None,
            metrics_path=Path(metrics_out) if metrics_out else None,
        )

    @classmethod
    def disabled(cls) -> "ObsConfig":
        """A config with no outputs (every observer method is a no-op)."""
        return cls()


def _plain(value):
    """Best-effort conversion of config objects to JSON-clean values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _StreamingJsonlWriter:
    """Buffered incremental JSONL emission: flush every N rows.

    Rows are serialized on arrival and appended to the target file in
    ``flush_every``-row batches, so a day-long fleet replay streams its
    metric rows to disk instead of holding millions of dicts until
    finalize. The file content is byte-identical to the buffered-in-memory
    path: same rows, same order, same ``json.dumps(row) + "\\n"`` framing.
    """

    def __init__(self, path: Path, flush_every: int) -> None:
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.path = path
        self.flush_every = flush_every
        self._pending: list[str] = []
        self._opened = False

    def add(self, row: dict) -> None:
        """Queue one row; flushes to disk when the buffer fills."""
        self._pending.append(json.dumps(row))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Append every pending line to the file (creating it first)."""
        if not self._pending and self._opened:
            return
        mode = "a" if self._opened else "w"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, mode, encoding="utf-8") as handle:
            for line in self._pending:
                handle.write(line + "\n")
        self._pending.clear()
        self._opened = True


class RunObserver:
    """Collects records, metrics and trace events for one run.

    ``flush_every`` switches the JSONL record stream to incremental
    buffered writes (see :class:`_StreamingJsonlWriter`): rows stream to
    ``metrics_path`` in batches instead of accumulating in
    :attr:`records`, bounding memory over day-long replays. The written
    file is byte-identical either way; callers that introspect
    :attr:`records` after a run should leave it unset.
    """

    def __init__(
        self,
        config: ObsConfig,
        name: str = "run",
        flush_every: int | None = None,
    ) -> None:
        self.config = config
        self.name = name
        self.enabled = config.enabled
        self.metrics = MetricsRegistry()
        self.trace = ChromeTraceBuilder()
        self.records: list[dict] = []
        self._writer: _StreamingJsonlWriter | None = None
        if flush_every is not None and config.metrics_path is not None:
            self._writer = _StreamingJsonlWriter(
                config.metrics_path, flush_every
            )
        self._seeds: dict[str, int] = {}
        self._run_config: dict = {}
        self._started = time.perf_counter()
        self._finalized: list[Path] | None = None

    # --------------------------------------------------------- raw records
    def record(self, kind: str, **fields) -> None:
        """Append one JSONL row of ``kind`` to the record stream."""
        if not self.enabled:
            return
        row = {"kind": kind, **_plain(fields)}
        if self._writer is not None:
            self._writer.add(row)
        else:
            self.records.append(row)

    def note_seed(self, name: str, seed: int) -> None:
        """Register a seed for the manifest."""
        if not self.enabled:
            return
        self._seeds[name] = seed

    def note_config(self, **fields) -> None:
        """Merge run-level configuration into the manifest."""
        if not self.enabled:
            return
        self._run_config.update(_plain(fields))

    # ------------------------------------------------------- domain hooks
    def record_colocation(
        self,
        label: str,
        result: "ColocationResult",
        ticks: Iterable["ControlTickRecord"] = (),
        telemetry: Iterable[dict] = (),
        journal: Iterable["ActuationRecord"] = (),
    ) -> None:
        """Export everything one colocation run saw, decided and wrote.

        Emits a ``run`` summary row, a ``solver_stats`` row, one ``tick``
        row per controller interval (the Algorithm-1 measurement/decision
        stream), one ``telemetry`` row per sampler interval, and one
        ``actuation`` row per journaled physical knob write; the same data
        also lands in the trace as counter series and action markers.
        """
        if not self.enabled:
            return
        config = result.config
        self.note_seed(f"{label}.seed", config.seed)
        self.record(
            "run",
            label=label,
            config=config,
            ml_perf=result.ml_perf,
            ml_perf_norm=result.ml_perf_norm,
            ml_tail=result.ml_tail,
            ml_tail_norm=result.ml_tail_norm,
            cpu_throughput=result.cpu_throughput,
            events_dispatched=result.events_dispatched,
        )
        self.record("solver_stats", label=label, **result.solver_stats)
        tick_list = list(ticks)
        for tick in tick_list:
            self.record("tick", label=label, **tick.as_dict())
        self.trace.add_tick_records(label, tick_list)
        for sample in telemetry:
            self.record("telemetry", label=label, **sample)
            self.trace.add_counter(
                label,
                "telemetry",
                sample.get("time", 0.0),
                {
                    k: v
                    for k, v in sample.items()
                    if k != "time" and isinstance(v, (int, float))
                },
            )
        journal_list = list(journal)
        for write in journal_list:
            self.record("actuation", label=label, **write.as_dict())
            if write.status != "applied":
                self.trace.add_instant(
                    label,
                    "actuation faults",
                    f"{write.kind}:{write.status}",
                    write.time,
                    category="controller",
                )
        # Registry roll-ups for the metrics stream.
        self.metrics.counter("colocation.runs", policy=config.policy).inc()
        self.metrics.counter("colocation.actuation_writes").inc(
            len(journal_list)
        )
        self.metrics.histogram(
            "colocation.ml_perf_norm", policy=config.policy
        ).observe(result.ml_perf_norm)
        if result.cpu_throughput:
            self.metrics.histogram(
                "colocation.cpu_throughput", policy=config.policy
            ).observe(result.cpu_throughput)
        self.metrics.counter("colocation.controller_ticks").inc(len(tick_list))
        self.metrics.counter("colocation.events_dispatched").inc(
            result.events_dispatched
        )

    def observe_tracer(self, process: str, tracer: "TimelineTracer") -> int:
        """Ingest a :class:`TimelineTracer`'s intervals into the trace."""
        if not self.enabled:
            return 0
        return self.trace.add_intervals(process, tracer.intervals)

    def add_span(
        self,
        process: str,
        track: str,
        name: str,
        start_s: float,
        duration_s: float,
        args: dict | None = None,
    ) -> None:
        """Record one complete span on a named lane (e.g. suite timing)."""
        if not self.enabled:
            return
        self.trace.add_complete(process, track, name, start_s, duration_s, args)

    # ------------------------------------------------------------ output
    def finalize(self, command: str | None = None) -> list[Path]:
        """Write every configured output; returns the paths written.

        Idempotent: a second call returns the already-written paths.
        """
        if not self.enabled:
            return []
        if self._finalized is not None:
            return self._finalized
        wall = time.perf_counter() - self._started
        written: list[Path] = []

        metrics_path = self.config.metrics_path
        if metrics_path is not None:
            if self._writer is not None:
                # Streaming mode: the record rows are already on disk (or
                # pending); append the metrics snapshot and flush the tail.
                for row in self.metrics.snapshot():
                    self._writer.add(row)
                self._writer.flush()
            else:
                metrics_path.parent.mkdir(parents=True, exist_ok=True)
                with open(metrics_path, "w", encoding="utf-8") as handle:
                    for row in self.records + self.metrics.snapshot():
                        handle.write(json.dumps(row) + "\n")
            written.append(metrics_path)

        trace_dir = self.config.trace_dir
        if trace_dir is not None:
            trace_dir.mkdir(parents=True, exist_ok=True)
            trace_path = trace_dir / "trace.json"
            self.trace.write(trace_path)
            written.append(trace_path)

        manifest_dir = trace_dir if trace_dir is not None else metrics_path.parent
        manifest_path = manifest_dir / f"{self.name}.manifest.json"
        write_manifest(
            manifest_path,
            build_manifest(
                run_id=self.name,
                command=command or self.name,
                config=self._run_config,
                seeds=self._seeds,
                wall_s=wall,
                outputs=[str(p) for p in written],
            ),
        )
        written.append(manifest_path)
        self._finalized = written
        return written

    # ------------------------------------------------------ context mgmt
    def __enter__(self) -> "RunObserver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
