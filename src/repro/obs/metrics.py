"""Metrics primitives: counters, gauges, histograms, and a registry.

The registry is the publishing surface experiments and the fleet survey
write into: get-or-create a metric by ``(name, labels)``, mutate it, and
let the exporter snapshot everything into JSONL rows at the end of the run.
Histograms are backed by :class:`~repro.metrics.percentile.StreamingPercentiles`
so tail statistics stay exact up to the reservoir cap.
"""

from __future__ import annotations

from repro.errors import MeasurementError
from repro.metrics.percentile import StreamingPercentiles

#: Canonical hashable form of a label set.
LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict[str, object]) -> LabelKey:
    """Normalize a label dict to a sorted, hashable key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MeasurementError("counters only go up")
        self.value += amount

    def sample(self) -> dict[str, float]:
        """The exported fields of this metric."""
        return {"value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def sample(self) -> dict[str, float]:
        """The exported fields of this metric."""
        return {"value": self.value}


class Histogram:
    """A distribution of observations with exact streamed percentiles."""

    kind = "histogram"
    __slots__ = ("_percentiles", "_sum", "_min", "_max")

    def __init__(self, max_samples: int = 100_000) -> None:
        self._percentiles = StreamingPercentiles(max_samples=max_samples)
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._percentiles.count

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._percentiles.add(value)
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def sample(self) -> dict[str, float]:
        """Count, sum, mean, extrema and the standard tail percentiles."""
        count = self.count
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "sum": self._sum,
            "mean": self._sum / count,
            "min": self._min,
            "max": self._max,
            "p50": self._percentiles.percentile(50),
            "p90": self._percentiles.percentile(90),
            "p99": self._percentiles.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, cls, name: str, labels: dict[str, object]):
        key = (name, label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise MeasurementError(
                f"metric {name!r} {dict(labels)!r} already registered "
                f"as a {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, labels)

    def snapshot(self) -> list[dict]:
        """All metrics as plain-dict rows, sorted by (name, labels).

        Each row carries ``kind="metric"`` so the rows can be interleaved
        with other record kinds in one JSONL stream and filtered back out.
        """
        rows = []
        for (name, labels) in sorted(self._metrics):
            metric = self._metrics[(name, labels)]
            rows.append(
                {
                    "kind": "metric",
                    "name": name,
                    "type": metric.kind,
                    "labels": dict(labels),
                    **metric.sample(),
                }
            )
        return rows
