"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Builds the JSON object format of the Trace Event specification from
:class:`~repro.sim.tracing.TimelineTracer` intervals and controller tick
records. Tracks map to (pid, tid) pairs with ``process_name`` /
``thread_name`` metadata so Perfetto renders human-readable lanes:

* each :class:`TraceInterval` becomes a complete (``ph="X"``) event;
* controller knob values become counter (``ph="C"``) series, which Perfetto
  plots as stacked area charts over time;
* THROTTLE/BOOST decisions become instant (``ph="i"``) markers.

Simulated seconds are exported as microseconds, the unit the format expects.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.control.records import ControlTickRecord
    from repro.sim.tracing import TraceInterval

#: Microseconds per simulated second.
_US = 1e6


class ChromeTraceBuilder:
    """Accumulates trace events and serializes the trace JSON."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}

    def __len__(self) -> int:
        """Number of non-metadata events recorded."""
        return sum(1 for e in self._events if e["ph"] != "M")

    # ------------------------------------------------------------- lanes
    def _pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._events.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": process},
                }
            )
        return pid

    def _lane(self, process: str, track: str) -> tuple[int, int]:
        pid = self._pid(process)
        key = (process, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for p, _ in self._tids if p == process) + 1
            self._tids[key] = tid
            self._events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": track},
                }
            )
        return pid, tid

    # ------------------------------------------------------------ events
    def add_complete(
        self,
        process: str,
        track: str,
        name: str,
        start_s: float,
        duration_s: float,
        args: dict | None = None,
        category: str = "sim",
    ) -> None:
        """One complete-duration (``ph="X"``) event."""
        pid, tid = self._lane(process, track)
        event = {
            "ph": "X", "name": name, "cat": category, "pid": pid, "tid": tid,
            "ts": start_s * _US, "dur": max(duration_s, 0.0) * _US,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def add_instant(
        self,
        process: str,
        track: str,
        name: str,
        ts_s: float,
        args: dict | None = None,
        category: str = "sim",
    ) -> None:
        """One thread-scoped instant (``ph="i"``) marker."""
        pid, tid = self._lane(process, track)
        event = {
            "ph": "i", "s": "t", "name": name, "cat": category,
            "pid": pid, "tid": tid, "ts": ts_s * _US,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def add_counter(
        self, process: str, name: str, ts_s: float, values: dict[str, float]
    ) -> None:
        """One sample of a counter (``ph="C"``) series."""
        pid = self._pid(process)
        self._events.append(
            {
                "ph": "C", "name": name, "pid": pid, "tid": 0,
                "ts": ts_s * _US, "args": dict(values),
            }
        )

    # ------------------------------------------------- domain ingestion
    def add_intervals(
        self, process: str, intervals: Iterable["TraceInterval"]
    ) -> int:
        """Ingest :class:`TimelineTracer` intervals; returns events added."""
        count = 0
        for interval in intervals:
            args = {"detail": interval.detail} if interval.detail else None
            self.add_complete(
                process,
                interval.track,
                interval.kind,
                interval.start,
                interval.duration,
                args=args,
                category="phase",
            )
            count += 1
        return count

    def add_tick_records(
        self, process: str, records: Iterable["ControlTickRecord"]
    ) -> int:
        """Ingest controller ticks as knob/measurement counters + markers."""
        count = 0
        for record in records:
            knobs = {
                "lo_cores": record.lo_cores,
                "lo_prefetchers": record.lo_prefetchers,
                "backfill_cores": record.backfill_cores,
            }
            knobs.update(record.extra)
            self.add_counter(process, "controller knobs", record.time, knobs)
            m = record.measurements
            if m is not None:
                self.add_counter(
                    process,
                    "measurements",
                    record.time,
                    {
                        "socket_bw_gbps": m.socket_bw,
                        "hipri_bw_gbps": m.hipri_bw,
                        "socket_latency": m.socket_latency,
                        "saturation": m.saturation,
                    },
                )
            for domain, action in (
                ("hi", record.action_hi), ("lo", record.action_lo)
            ):
                if action.value != "nop":
                    self.add_instant(
                        process,
                        f"actions:{domain}",
                        f"{domain}:{action.value}",
                        record.time,
                        category="controller",
                    )
            count += 1
        return count

    # ------------------------------------------------------------ output
    def to_dict(self) -> dict:
        """The trace as the Trace Event JSON object format."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs", "time_unit": "us"},
        }

    def write(self, path) -> None:
        """Serialize the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
