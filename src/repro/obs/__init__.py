"""repro.obs — structured observability for the Kelp reproduction.

Three export surfaces behind one no-op-when-disabled observer:

* **JSONL metrics/records** (:mod:`repro.obs.metrics`,
  :class:`RunObserver.records`): controller tick records, solver stats,
  telemetry time-series and registry roll-ups, one JSON object per line.
* **Chrome trace events** (:mod:`repro.obs.trace`): `chrome://tracing` /
  Perfetto-loadable JSON built from :class:`~repro.sim.tracing.TimelineTracer`
  intervals, controller knob counters and THROTTLE/BOOST markers.
* **Run manifests** (:mod:`repro.obs.manifest`): config, seeds, git
  revision and wall time written next to the results, so every figure run
  is replayable.

Wired into the CLI via ``--trace-out`` / ``--metrics-out`` and the
``REPRO_TRACE`` environment variable; see ``docs/observability.md``.
"""

from repro.obs.manifest import build_manifest, git_revision, write_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import TRACE_ENV, ObsConfig, RunObserver
from repro.obs.trace import ChromeTraceBuilder

__all__ = [
    "ChromeTraceBuilder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "RunObserver",
    "TRACE_ENV",
    "build_manifest",
    "git_revision",
    "write_manifest",
]
